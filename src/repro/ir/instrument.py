"""Instrumentation passes: clean IR -> protected IR.

Each pass rewrites user functions in place, inserting metadata
creation/propagation/check operations at the pointer events the IR
generator annotated:

* pointer loaded from memory   (``Load.ptr_result``)
* pointer stored to memory     (``Store.ptr_value``)
* user-level dereference       (``needs_check`` loads/stores)
* allocation / free call sites (``malloc``/``calloc``/``free``)
* calls with pointer arguments or results
* function entry / returns     (frame lock, canary, redzones)

The **container-shadow convention** is shared by all pointer-based
schemes: a pointer value stored at container address ``A`` keeps its
metadata in the shadow of ``A``; a pointer held in a register carries
its metadata in the shadow register file (hardware schemes) or in the
scheme's metadata registers (software schemes, rematerialised from the
pointer's *root container* before every use). ``root`` tracking below
is the per-block dataflow that makes that possible — it is the IR-level
equivalent of the SRF in-pipeline propagation of Section 3.2.

Static objects (named locals, globals) receive only spatial checks on
direct access — their frame/image is provably live at that point, which
mirrors the CETS dominator-based temporal-check elision — but escaping
pointers to them are bound with the frame (or global) key/lock, so
use-after-return is caught exactly as the paper describes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import HwstConfig
from repro.errors import IRError
from repro.minic.types import LONG, PointerType, VOID
from repro.ir.ir import (
    AddrGlobal, AddrLocal, AvxVchk, AvxVld, AvxVst, BasicBlock, BinOp,
    Br, Call, Conv, Function, GetParam, GlobalData, HwBndrs, HwBndrt,
    HwLbds, HwMetaGpr, HwSbd, HwTchk, IConst, IRInstr, Jmp, Load, Module,
    MpxBndcl, MpxBndcu, MpxBndldx, MpxBndstx, Ret, Store, TrapIf, UnOp,
)

# Runtime functions whose buffer arguments get wrapper range checks
# (the SBCETS "function wrapper" story for library calls):
# name -> list of (ptr_arg_index, length_arg_index)
WRAPPED_RANGE_FNS: Dict[str, List[Tuple[int, int]]] = {
    "memcpy": [(0, 2), (1, 2)],
    "memset": [(0, 2)],
    "memcmp": [(0, 2), (1, 2)],
    "strncpy": [(0, 2)],
}

ALLOC_FNS = ("malloc", "calloc")


class _PassBase:
    """Shared walking/rewriting machinery."""

    temporal = True          # scheme tracks key/lock metadata
    protects = True          # scheme instruments derefs at all
    # Whether repro.analyze.elide may delete this pass's proven-redundant
    # check ops without changing what the scheme detects. Only True for
    # passes whose checks are whole-object spatial + key/lock temporal
    # (matching the analysis's proof obligations).
    elidable = False

    def __init__(self, module: Module, fn: Function, config: HwstConfig):
        self.module = module
        self.fn = fn
        self.config = config
        self.out: List[IRInstr] = []
        self.root: Dict[int, int] = {}
        self._scratch_n = 0
        self.uses_frame_lock = False
        # Check-group tagging for --elide-checks: while expanding the
        # check for one guarded access, every emitted op is stamped
        # with the access it guards and which half it implements.
        self.tag_checks = bool(config.elide_checks) and self.elidable
        self._current_check: Optional[IRInstr] = None
        self._current_part = "shared"

    # -- small helpers ---------------------------------------------------

    def vreg(self, ctype=None) -> int:
        return self.fn.new_vreg(ctype)

    def emit(self, ins: IRInstr):
        if self._current_check is not None:
            ins._check_for = self._current_check
            ins._check_part = self._current_part
        self.out.append(ins)

    @contextmanager
    def check_part(self, part: str):
        """Mark ops emitted inside as one half of the current check."""
        prev = self._current_part
        self._current_part = part
        try:
            yield
        finally:
            self._current_part = prev

    def const(self, value: int) -> int:
        dst = self.vreg(LONG)
        self.emit(IConst(dst, value))
        return dst

    def call(self, name: str, args: List[int],
             returns: bool = False) -> Optional[int]:
        dst = self.vreg(LONG) if returns else None
        self.emit(Call(dst, name, list(args)))
        return dst

    def fresh_scratch(self) -> str:
        """Hidden 8-byte local whose *shadow* parks metadata."""
        self._scratch_n += 1
        name = f"__meta.{self._scratch_n}"
        self.fn.add_local(name, LONG)
        return name

    def addr_of_local(self, name: str) -> int:
        dst = self.vreg(PointerType(VOID))
        self.emit(AddrLocal(dst, name))
        return dst

    def addr_of_global(self, name: str) -> int:
        dst = self.vreg(PointerType(VOID))
        self.emit(AddrGlobal(dst, name))
        return dst

    def load_global(self, name: str) -> int:
        addr = self.addr_of_global(name)
        dst = self.vreg(LONG)
        self.emit(Load(dst, addr, 8, True))
        return dst

    def prov(self, v: int):
        return self.fn.prov.get(v)

    def prov_kind(self, v: int) -> str:
        prov = self.prov(v)
        return prov[0] if prov else "none"

    def object_size(self, prov) -> int:
        kind, name = prov
        if kind == "local":
            return self.fn.locals[name].size
        data = self.module.globals.get(name)
        if data is None:
            raise IRError(f"unknown global {name!r} in provenance")
        return data.size

    def static_bounds(self, prov) -> Tuple[int, int]:
        """Materialise (base, bound) vregs for a local/global object."""
        kind, name = prov
        base = (self.addr_of_local(name) if kind == "local"
                else self.addr_of_global(name))
        size_v = self.const(self.object_size(prov))
        bound = self.vreg(PointerType(VOID))
        self.emit(BinOp(bound, "add", base, size_v))
        return base, bound

    def frame_keylock(self) -> Tuple[int, int]:
        key = self.vreg(LONG)
        self.emit(Load(key, self.addr_of_local("__frame_key"), 8, True))
        lock = self.vreg(LONG)
        self.emit(Load(lock, self.addr_of_local("__frame_lock"), 8, True))
        return key, lock

    def global_keylock(self) -> Tuple[int, int]:
        return self.load_global("__global_key"), \
            self.load_global("__global_lock")

    def keylock_for(self, prov) -> Tuple[int, int]:
        if prov[0] == "local":
            if not self.uses_frame_lock:
                # No frame lock allocated (shouldn't happen when a local
                # object escapes, because having objects sets the flag).
                return self.const(0), self.const(0)
            return self.frame_keylock()
        return self.global_keylock()

    def masked_heap_metadata(self, p: int, size_v: int):
        """Bind-site arithmetic handling malloc returning NULL.

        Returns (bound, key, lock) vregs, all forced to zero when the
        allocation failed so a NULL pointer keeps null metadata.
        """
        lock = self.call("__lock_alloc", [], returns=True)
        key = self.vreg(LONG)
        self.emit(Load(key, lock, 8, True))
        zero = self.const(0)
        nonzero = self.vreg(LONG)
        self.emit(BinOp(nonzero, "ne", p, zero))
        mask = self.vreg(LONG)
        self.emit(UnOp(mask, "neg", nonzero))   # 0 or all-ones
        raw_bound = self.vreg(LONG)
        self.emit(BinOp(raw_bound, "add", p, size_v))
        bound = self.vreg(LONG)
        self.emit(BinOp(bound, "and", raw_bound, mask))
        key_m = self.vreg(LONG)
        self.emit(BinOp(key_m, "and", key, mask))
        lock_m = self.vreg(LONG)
        self.emit(BinOp(lock_m, "and", lock, mask))
        return bound, key_m, lock_m

    def inline_spatial(self, addr: int, size_v: int, base: int,
                       bound: int):
        """Inline -O0 spatial check: 2 compares + 2 trap branches."""
        low = self.vreg(LONG)
        self.emit(BinOp(low, "ult", addr, base))
        self.emit(TrapIf(low, "spatial"))
        end = self.vreg(LONG)
        self.emit(BinOp(end, "add", addr, size_v))
        high = self.vreg(LONG)
        self.emit(BinOp(high, "ugt", end, bound))
        self.emit(TrapIf(high, "spatial"))

    def inline_key_check(self, key: int, lock: int):
        """Inline temporal check: null-lock trap, then key compare.

        The TrapIf on the null lock dominates the key load, so the load
        through ``lock`` is safe when execution reaches it."""
        null_lock = self.vreg(LONG)
        zero = self.const(0)
        self.emit(BinOp(null_lock, "eq", lock, zero))
        self.emit(TrapIf(null_lock, "temporal"))
        stored = self.vreg(LONG)
        self.emit(Load(stored, lock, 8, True))
        mismatch = self.vreg(LONG)
        self.emit(BinOp(mismatch, "ne", stored, key))
        self.emit(TrapIf(mismatch, "temporal"))

    def clamped_last_byte(self, addr: int, length: int) -> int:
        """addr + max(length-1, 0) without branching."""
        one = self.const(1)
        m1 = self.vreg(LONG)
        self.emit(BinOp(m1, "sub", length, one))
        sign = self.vreg(LONG)
        self.emit(BinOp(sign, "ashr", m1, self.const(63)))
        notsign = self.vreg(LONG)
        self.emit(UnOp(notsign, "not", sign))
        clamped = self.vreg(LONG)
        self.emit(BinOp(clamped, "and", m1, notsign))
        last = self.vreg(PointerType(VOID))
        self.emit(BinOp(last, "add", addr, clamped))
        return last

    # -- the walk ------------------------------------------------------------

    def run(self):
        self.setup_function()
        nparams = len(self.fn.param_names)
        param_section = 3 * nparams
        for block_index, block in enumerate(self.fn.blocks):
            self.root = {}
            self.out = []
            pending_prologue = block_index == 0
            for index, ins in enumerate(block.instrs):
                if pending_prologue and index >= param_section:
                    self.emit_prologue()
                    pending_prologue = False
                self.visit(ins, in_param_section=(
                    block_index == 0 and index < param_section))
            block.instrs = self.out
        self.out = []

    def setup_function(self):
        """Hook: adjust frame (hidden locals) before rewriting."""
        has_objects = any(slot.is_object for slot in
                          self.fn.locals.values())
        self.uses_frame_lock = self.temporal and has_objects
        if self.uses_frame_lock:
            self.fn.add_local("__frame_lock", LONG)
            self.fn.add_local("__frame_key", LONG)

    def emit_prologue(self):
        if self.uses_frame_lock:
            lock = self.call("__lock_alloc", [], returns=True)
            self.emit(Store(self.addr_of_local("__frame_lock"), lock, 8))
            key = self.vreg(LONG)
            self.emit(Load(key, lock, 8, True))
            self.emit(Store(self.addr_of_local("__frame_key"), key, 8))

    def emit_epilogue(self):
        if self.uses_frame_lock:
            lock = self.vreg(LONG)
            self.emit(Load(lock, self.addr_of_local("__frame_lock"),
                           8, True))
            self.call("__lock_free", [lock])

    def _dispatch_check(self, ins: IRInstr):
        if not self.tag_checks:
            self.on_check(ins)
            return
        self._current_check = ins
        self._current_part = "shared"
        try:
            self.on_check(ins)
        finally:
            self._current_check = None
            self._current_part = "shared"

    def visit(self, ins: IRInstr, in_param_section: bool = False):
        if isinstance(ins, Load):
            if ins.needs_check:
                self._dispatch_check(ins)
            self.emit(ins)
            if ins.ptr_result:
                self.root[ins.dst] = ins.addr
                self.on_ptr_loaded(ins)
                if getattr(ins, "_hoist_temporal", False):
                    self.on_hoisted(ins)
            return
        if isinstance(ins, Store):
            if ins.needs_check:
                self._dispatch_check(ins)
            self.emit(ins)
            if ins.ptr_value:
                if self.prov_kind(ins.src) == "param":
                    self.on_param_store(ins)
                else:
                    self.on_ptr_store(ins)
            return
        if isinstance(ins, BinOp):
            self.emit(ins)
            if self.prov(ins.dst) is not None:
                root = self.root.get(ins.a)
                if root is None:
                    root = self.root.get(ins.b)
                if root is not None:
                    self.root[ins.dst] = root
            return
        if isinstance(ins, Call):
            self.on_call(ins)
            return
        if isinstance(ins, Ret):
            self.on_ret(ins)
            self.emit_epilogue()
            self.emit(ins)
            return
        self.emit(ins)

    # -- hooks (defaults do nothing) -------------------------------------

    def on_check(self, ins):
        pass

    def on_ptr_loaded(self, ins: Load):
        pass

    def on_hoisted(self, ins: Load):
        """A ``hoist.N`` preheader load (loop-invariant temporal check
        moved out of the loop): emit the scheme's temporal check for
        the loaded pointer, untagged so elision never drops it."""

    def on_ptr_store(self, ins: Store):
        pass

    def on_param_store(self, ins: Store):
        self.on_ptr_store(ins)

    def on_call(self, ins: Call):
        self.emit(ins)

    def on_ret(self, ins: Ret):
        pass


# ===========================================================================
# HWST128 (Sections 3.2-3.5)
# ===========================================================================

class HwstPass(_PassBase):
    """Full HWST128: SRF + compression + fused checks + tchk/keybuffer."""

    use_tchk = True
    elidable = True

    # -- events ------------------------------------------------------------

    def on_ptr_loaded(self, ins: Load):
        # Through-memory propagation: shadow -> SRF (lbdls/lbdus).
        self.emit(HwLbds(ins.dst, ins.addr, which="both"))

    def _bind_static(self, ptr: int, prov):
        base, bound = self.static_bounds(prov)
        self.emit(HwBndrs(ptr, base, bound))
        key, lock = self.keylock_for(prov)
        self.emit(HwBndrt(ptr, key, lock))

    def on_check(self, ins):
        addr = ins.addr
        kind = self.prov_kind(addr)
        if kind in ("local", "global"):
            # Static object: bind its metadata and run the full check
            # (spatial fused, temporal via tchk / the software method).
            prov = self.prov(addr)
            with self.check_part("spatial"):
                base, bound = self.static_bounds(prov)
                self.emit(HwBndrs(addr, base, bound))
            with self.check_part("temporal"):
                key, lock = self.keylock_for(prov)
                self.emit(HwBndrt(addr, key, lock))
            ins.checked = True
            with self.check_part("temporal"):
                if self.use_tchk:
                    self.emit(HwTchk(addr))
                else:
                    self.inline_key_check(key, lock)
            return
        ins.checked = True
        if kind == "loaded":
            with self.check_part("temporal"):
                self._temporal_check(addr)
        # kind == "call": freshly returned pointer cannot be stale;
        # null/none: SRF is invalid -> the fused check traps.

    def on_hoisted(self, ins: Load):
        self._temporal_check(ins.dst)

    def _temporal_check(self, addr: int):
        if self.use_tchk:
            self.emit(HwTchk(addr))
            return
        # hwst128 variant: "software method to load the key" (Sec. 5.1):
        # decompress key/lock into GPRs, load the lock_location with a
        # plain load, compare inline.
        container = self.root.get(addr)
        if container is None:
            return
        key = self.vreg(LONG)
        self.emit(HwMetaGpr(key, container, "key"))
        lock = self.vreg(LONG)
        self.emit(HwMetaGpr(lock, container, "lock"))
        self.inline_key_check(key, lock)

    def on_ptr_store(self, ins: Store):
        kind = self.prov_kind(ins.src)
        if kind in ("local", "global"):
            self._bind_static(ins.src, self.prov(ins.src))
        # loaded/call/param: SRF already valid via propagation;
        # null/none: invalid SRF stores zero metadata (correct).
        self.emit(HwSbd(ins.addr, ins.src, which="both"))

    def on_call(self, ins: Call):
        if ins.name in ALLOC_FNS:
            self._alloc_site(ins)
            return
        if ins.name == "free":
            self._free_site(ins)
            return
        self._wrapper_checks(ins)
        # Arguments whose metadata is static must enter the SRF before
        # the call so the callee's sbd stores real metadata.
        for position in ins.ptr_args:
            arg = ins.args[position]
            if self.prov_kind(arg) in ("local", "global"):
                self._bind_static(arg, self.prov(arg))
        self.emit(ins)

    def _alloc_site(self, ins: Call):
        self.emit(ins)
        p = ins.dst
        if p is None:
            return
        if ins.name == "calloc":
            size_v = self.vreg(LONG)
            self.emit(BinOp(size_v, "mul", ins.args[0], ins.args[1]))
        else:
            size_v = ins.args[0]
        bound, key, lock = self.masked_heap_metadata(p, size_v)
        self.emit(HwBndrs(p, p, bound))
        self.emit(HwBndrt(p, key, lock))

    def _free_site(self, ins: Call):
        p = ins.args[0]
        container = self.root.get(p)
        if container is not None:
            base = self.vreg(LONG)
            self.emit(HwMetaGpr(base, container, "base"))
            key = self.vreg(LONG)
            self.emit(HwMetaGpr(key, container, "key"))
            lock = self.vreg(LONG)
            self.emit(HwMetaGpr(lock, container, "lock"))
            self.call("__hwst_free_check", [p, base, key, lock])
            self.call("__lock_free", [lock])
        self.emit(ins)

    def _wrapper_checks(self, ins: Call):
        """Range checks for wrapped library calls (checked byte probes
        at both ends of the range, using the fused-check loads)."""
        ranges = WRAPPED_RANGE_FNS.get(ins.name)
        if not ranges:
            return
        for ptr_index, len_index in ranges:
            ptr = ins.args[ptr_index]
            if self.prov_kind(ptr) in ("local", "global"):
                base, bound = self.static_bounds(self.prov(ptr))
                self.emit(HwBndrs(ptr, base, bound))
            length = ins.args[len_index]
            probe1 = self.vreg(LONG)
            self.emit(Load(probe1, ptr, 1, False, checked=True))
            last = self.clamped_last_byte(ptr, length)
            probe2 = self.vreg(LONG)
            self.emit(Load(probe2, last, 1, False, checked=True))

    def on_ret(self, ins: Ret):
        if ins.ptr_value and ins.value is not None:
            if self.prov_kind(ins.value) in ("local", "global"):
                # Escaping pointer to a stack/global object: bind with
                # the frame key so use-after-return is caught.
                self._bind_static(ins.value, self.prov(ins.value))


class HwstNoTchkPass(HwstPass):
    """HWST128 without the tchk instruction (Fig. 4 middle bars)."""

    use_tchk = False


# ===========================================================================
# SoftboundCETS (software)
# ===========================================================================

class SbcetsPass(_PassBase):
    """SBCETS: trie metadata, runtime-call checks, shadow stack."""

    elidable = True
    mload = "__sb_mload"
    mstore = "__sb_mstore"
    setmeta = "__sb_setmeta"
    check = "__sb_check"
    spatial = "__sb_spatial"
    free_check = "__sb_free_check"
    ss_push = "__sb_ss_push"
    ss_pop = "__sb_ss_pop"
    ss_pushret = "__sb_ss_pushret"
    ss_popret = "__sb_ss_popret"

    def materialize(self, v: int):
        """Bring v's metadata into the scheme's metadata registers."""
        kind = self.prov_kind(v)
        if kind in ("loaded", "call", "param"):
            container = self.root.get(v)
            if container is not None:
                self.call(self.mload, [container])
                return
            kind = "none"
        if kind in ("local", "global"):
            base, bound = self.static_bounds(self.prov(v))
            key, lock = self.keylock_for(self.prov(v))
            self.call(self.setmeta, [base, bound, key, lock])
            return
        zero = self.const(0)
        self.call(self.setmeta, [zero, zero, zero, zero])

    # metadata register globals (scheme runtime)
    g_base = "__sb_mbase"
    g_bound = "__sb_mbound"
    g_key = "__sb_mkey"
    g_lock = "__sb_mlock"

    def on_check(self, ins):
        """Inline -O0 check (compare + trap branches), as SBCETS emits;
        metadata *table* operations stay runtime calls."""
        addr = ins.addr
        kind = self.prov_kind(addr)
        with self.check_part("spatial"):
            size_v = self.const(ins.size)
        if kind in ("local", "global"):
            with self.check_part("spatial"):
                base, bound = self.static_bounds(self.prov(addr))
                self.inline_spatial(addr, size_v, base, bound)
            with self.check_part("temporal"):
                key, lock = self.keylock_for(self.prov(addr))
                self.inline_key_check(key, lock)
            return
        self.materialize(addr)
        with self.check_part("spatial"):
            base = self.load_global(self.g_base)
            bound = self.load_global(self.g_bound)
            self.inline_spatial(addr, size_v, base, bound)
        with self.check_part("temporal"):
            key = self.load_global(self.g_key)
            lock = self.load_global(self.g_lock)
            self.inline_key_check(key, lock)

    def on_hoisted(self, ins: Load):
        self.materialize(ins.dst)
        key = self.load_global(self.g_key)
        lock = self.load_global(self.g_lock)
        self.inline_key_check(key, lock)

    def on_ptr_store(self, ins: Store):
        self.materialize(ins.src)
        self.call(self.mstore, [ins.addr])

    def on_param_store(self, ins: Store):
        prov = self.prov(ins.src)
        index = self.fn.param_names.index(prov[1])
        self.call(self.ss_pop, [self.const(index)])
        self.call(self.mstore, [ins.addr])
        # later uses load from the slot -> "loaded" provenance

    def on_call(self, ins: Call):
        if ins.name in ALLOC_FNS:
            self._alloc_site(ins)
            return
        if ins.name == "free":
            self.materialize(ins.args[0])
            self.call(self.free_check, [ins.args[0]])
            self.emit(ins)
            return
        self._wrapper_checks(ins)
        for position in ins.ptr_args:
            self.materialize(ins.args[position])
            self.call(self.ss_push, [self.const(position)])
        self.emit(ins)
        if ins.ptr_result and ins.dst is not None:
            self.call(self.ss_popret, [])
            scratch = self.addr_of_local(self.fresh_scratch())
            self.call(self.mstore, [scratch])
            self.root[ins.dst] = scratch

    def _alloc_site(self, ins: Call):
        self.emit(ins)
        p = ins.dst
        if p is None:
            return
        if ins.name == "calloc":
            size_v = self.vreg(LONG)
            self.emit(BinOp(size_v, "mul", ins.args[0], ins.args[1]))
        else:
            size_v = ins.args[0]
        bound, key, lock = self.masked_heap_metadata(p, size_v)
        self.call(self.setmeta, [p, bound, key, lock])
        scratch = self.addr_of_local(self.fresh_scratch())
        self.call(self.mstore, [scratch])
        self.root[p] = scratch

    def _wrapper_checks(self, ins: Call):
        ranges = WRAPPED_RANGE_FNS.get(ins.name)
        if not ranges:
            return
        for ptr_index, len_index in ranges:
            ptr = ins.args[ptr_index]
            kind = self.prov_kind(ptr)
            if kind in ("local", "global"):
                base, bound = self.static_bounds(self.prov(ptr))
                self.call(self.spatial,
                          [ptr, ins.args[len_index], base, bound])
            else:
                self.materialize(ptr)
                self.call(self.check, [ptr, ins.args[len_index]])

    def on_ret(self, ins: Ret):
        if ins.ptr_value and ins.value is not None:
            self.materialize(ins.value)
            self.call(self.ss_pushret, [])


# ===========================================================================
# BOGO (MPX + bound nullification on free) — spatial + partial temporal
# ===========================================================================

class BogoPass(_PassBase):
    temporal = False

    def on_ptr_loaded(self, ins: Load):
        self.emit(MpxBndldx(ins.dst, ins.addr))

    def on_check(self, ins):
        addr = ins.addr
        kind = self.prov_kind(addr)
        if kind in ("local", "global"):
            base, bound = self.static_bounds(self.prov(addr))
            self.emit(HwBndrs(addr, base, bound))
        self.emit(MpxBndcl(addr, addr))
        size_v = self.const(ins.size - 1)
        last = self.vreg(PointerType(VOID))
        self.emit(BinOp(last, "add", addr, size_v))
        self.emit(MpxBndcu(addr, last))

    def on_ptr_store(self, ins: Store):
        if self.prov_kind(ins.src) in ("local", "global"):
            base, bound = self.static_bounds(self.prov(ins.src))
            self.emit(HwBndrs(ins.src, base, bound))
        self.emit(MpxBndstx(ins.addr, ins.src))
        self.call("__bogo_reg", [ins.addr])

    def on_call(self, ins: Call):
        if ins.name in ALLOC_FNS:
            self._alloc_site(ins)
            return
        if ins.name == "free":
            ins.name = "__bogo_free"   # scan + nullify + free
            self.emit(ins)
            return
        self._wrapper_checks(ins)
        for position in ins.ptr_args:
            arg = ins.args[position]
            if self.prov_kind(arg) in ("local", "global"):
                base, bound = self.static_bounds(self.prov(arg))
                self.emit(HwBndrs(arg, base, bound))
        self.emit(ins)

    def _alloc_site(self, ins: Call):
        self.emit(ins)
        p = ins.dst
        if p is None:
            return
        if ins.name == "calloc":
            size_v = self.vreg(LONG)
            self.emit(BinOp(size_v, "mul", ins.args[0], ins.args[1]))
        else:
            size_v = ins.args[0]
        zero = self.const(0)
        nonzero = self.vreg(LONG)
        self.emit(BinOp(nonzero, "ne", p, zero))
        mask = self.vreg(LONG)
        self.emit(UnOp(mask, "neg", nonzero))
        raw_bound = self.vreg(LONG)
        self.emit(BinOp(raw_bound, "add", p, size_v))
        bound = self.vreg(LONG)
        self.emit(BinOp(bound, "and", raw_bound, mask))
        self.emit(HwBndrs(p, p, bound))

    def _wrapper_checks(self, ins: Call):
        ranges = WRAPPED_RANGE_FNS.get(ins.name)
        if not ranges:
            return
        for ptr_index, len_index in ranges:
            ptr = ins.args[ptr_index]
            if self.prov_kind(ptr) in ("local", "global"):
                base, bound = self.static_bounds(self.prov(ptr))
                self.emit(HwBndrs(ptr, base, bound))
            self.emit(MpxBndcl(ptr, ptr))
            last = self.clamped_last_byte(ptr, ins.args[len_index])
            self.emit(MpxBndcu(ptr, last))


# ===========================================================================
# WatchdogLite
# ===========================================================================

class WdlNarrowPass(SbcetsPass):
    """WDL narrow: scalar metadata ops over a direct (linear,
    uncompressed) shadow — same structure as SBCETS but without the
    trie walk in the runtime helpers."""

    # Elision is only validated against the hwst/sbcets trap semantics;
    # keep the comparator baselines un-elided so overhead numbers stay
    # directly comparable with the paper's.
    elidable = False

    g_base = "__wm_base"
    g_bound = "__wm_bound"
    g_key = "__wm_key"
    g_lock = "__wm_lock"

    mload = "__wdl_mload"
    mstore = "__wdl_mstore"
    setmeta = "__wdl_setmeta"
    check = "__wdl_check"
    spatial = "__wdl_spatial"
    free_check = "__wdl_free_check"
    ss_push = "__wdl_ss_push"
    ss_pop = "__wdl_ss_pop"
    ss_pushret = "__wdl_ss_pushret"
    ss_popret = "__wdl_ss_popret"


class WdlWidePass(_PassBase):
    """WDL wide: 256-bit vector metadata moves + fused vector check."""

    def shadow_addr_of(self, container: int) -> int:
        shifted = self.vreg(LONG)
        self.emit(BinOp(shifted, "shl", container, self.const(2)))
        out = self.vreg(LONG)
        self.emit(BinOp(out, "add", shifted,
                        self.const(self.config.shadow_offset)))
        return out

    def write_wide_metadata(self, container: int, base: int, bound: int,
                            key: int, lock: int):
        shadow = self.shadow_addr_of(container)
        self.emit(Store(shadow, base, 8))
        for offset, value in ((8, bound), (16, key), (24, lock)):
            at = self.vreg(LONG)
            self.emit(BinOp(at, "add", shadow, self.const(offset)))
            self.emit(Store(at, value, 8))

    def materialize_wide(self, v: int) -> Optional[int]:
        """Ensure v's wide SRF entry is valid; returns scratch container."""
        kind = self.prov_kind(v)
        if kind in ("loaded", "call", "param"):
            return self.root.get(v)
        scratch = self.addr_of_local(self.fresh_scratch())
        if kind in ("local", "global"):
            base, bound = self.static_bounds(self.prov(v))
            key, lock = self.keylock_for(self.prov(v))
        else:
            base = bound = key = lock = self.const(0)
        self.write_wide_metadata(scratch, base, bound, key, lock)
        self.emit(AvxVld(v, scratch))
        return scratch

    def on_ptr_loaded(self, ins: Load):
        self.emit(AvxVld(ins.dst, ins.addr))

    def on_check(self, ins):
        addr = ins.addr
        kind = self.prov_kind(addr)
        if kind not in ("loaded", "call", "param"):
            self.materialize_wide(addr)
        self.emit(AvxVchk(addr, addr))

    def on_ptr_store(self, ins: Store):
        kind = self.prov_kind(ins.src)
        if kind in ("loaded", "call", "param"):
            self.emit(AvxVst(ins.addr, ins.src))
            return
        if kind in ("local", "global"):
            base, bound = self.static_bounds(self.prov(ins.src))
            key, lock = self.keylock_for(self.prov(ins.src))
        else:
            base = bound = key = lock = self.const(0)
        self.write_wide_metadata(ins.addr, base, bound, key, lock)

    def on_call(self, ins: Call):
        if ins.name in ALLOC_FNS:
            self._alloc_site(ins)
            return
        if ins.name == "free":
            p = ins.args[0]
            container = self.root.get(p) or self.materialize_wide(p)
            if container is not None:
                self.call("__wdl_free_check_at", [p, container])
            self.emit(ins)
            return
        self._wrapper_checks(ins)
        for position in ins.ptr_args:
            arg = ins.args[position]
            if self.prov_kind(arg) in ("local", "global", "null", "none"):
                self.materialize_wide(arg)
        self.emit(ins)
        if ins.ptr_result and ins.dst is not None:
            # wide SRF propagated back through a0; park it for roots
            scratch = self.addr_of_local(self.fresh_scratch())
            self.emit(AvxVst(scratch, ins.dst))
            self.root[ins.dst] = scratch

    def _alloc_site(self, ins: Call):
        self.emit(ins)
        p = ins.dst
        if p is None:
            return
        if ins.name == "calloc":
            size_v = self.vreg(LONG)
            self.emit(BinOp(size_v, "mul", ins.args[0], ins.args[1]))
        else:
            size_v = ins.args[0]
        bound, key, lock = self.masked_heap_metadata(p, size_v)
        scratch = self.addr_of_local(self.fresh_scratch())
        self.write_wide_metadata(scratch, p, bound, key, lock)
        self.emit(AvxVld(p, scratch))
        self.root[p] = scratch

    def _wrapper_checks(self, ins: Call):
        ranges = WRAPPED_RANGE_FNS.get(ins.name)
        if not ranges:
            return
        for ptr_index, len_index in ranges:
            ptr = ins.args[ptr_index]
            self.materialize_wide(ptr)
            self.emit(AvxVchk(ptr, ptr))
            last = self.clamped_last_byte(ptr, ins.args[len_index])
            self.emit(AvxVchk(ptr, last))


# ===========================================================================
# AddressSanitizer
# ===========================================================================

ASAN_REDZONE = 16


class AsanPass(_PassBase):
    temporal = False

    def setup_function(self):
        super().setup_function()
        # Interleave redzone objects around every stack object.
        old = list(self.fn.locals.items())
        self.fn.locals.clear()
        self._redzones: List[str] = []
        self._objects: List[str] = []
        rz_n = 0
        pending_leading = True
        for name, slot in old:
            if slot.is_object:
                if pending_leading:
                    rz = f"__rz.{rz_n}"
                    rz_n += 1
                    self.fn.locals[rz] = _redzone_slot(rz)
                    self._redzones.append(rz)
                    pending_leading = False
                self.fn.locals[name] = slot
                self._objects.append(name)
                rz = f"__rz.{rz_n}"
                rz_n += 1
                self.fn.locals[rz] = _redzone_slot(rz)
                self._redzones.append(rz)
            else:
                self.fn.locals[name] = slot

    def emit_prologue(self):
        for rz in self._redzones:
            addr = self.addr_of_local(rz)
            self.call("__asan_poison",
                      [addr, self.const(ASAN_REDZONE), self.const(0xF1)])
        for name in self._objects:
            addr = self.addr_of_local(name)
            self.call("__asan_unpoison",
                      [addr, self.const(self.fn.locals[name].size)])
        if self.fn.name == "main":
            for rz_name in self.module.meta.get("asan_global_rz", ()):
                addr = self.addr_of_global(rz_name)
                self.call("__asan_poison",
                          [addr, self.const(ASAN_REDZONE),
                           self.const(0xF9)])
            for gname, gsize in self.module.meta.get("asan_global_tail",
                                                     ()):
                addr = self.addr_of_global(gname)
                self.call("__asan_unpoison", [addr, self.const(gsize)])

    def emit_epilogue(self):
        for rz in self._redzones:
            addr = self.addr_of_local(rz)
            self.call("__asan_poison",
                      [addr, self.const(ASAN_REDZONE), self.const(0)])
        for name in self._objects:
            addr = self.addr_of_local(name)
            size = (self.fn.locals[name].size + 7) & ~7
            self.call("__asan_poison", [addr, self.const(size),
                                        self.const(0)])

    def on_check(self, ins):
        self.call("__asan_check", [ins.addr, self.const(ins.size)])

    def on_call(self, ins: Call):
        rename = {"malloc": "__asan_malloc", "calloc": "__asan_calloc",
                  "free": "__asan_free"}
        if ins.name in rename:
            ins.name = rename[ins.name]
        ranges = WRAPPED_RANGE_FNS.get(ins.name)
        if ranges:
            for ptr_index, len_index in ranges:
                self.call("__asan_check_range",
                          [ins.args[ptr_index], ins.args[len_index]])
        self.emit(ins)


def _redzone_slot(name: str):
    from repro.ir.ir import LocalSlot

    return LocalSlot(name=name, ctype=LONG, size=ASAN_REDZONE, align=8,
                     is_object=True)


# ===========================================================================
# GCC stack protector
# ===========================================================================

class GccPass(_PassBase):
    temporal = False
    protects = False

    def setup_function(self):
        has_arrays = any(slot.is_object for slot in self.fn.locals.values())
        self._protected = has_arrays
        self.uses_frame_lock = False
        if has_arrays:
            # __canary is placed adjacent to the saved registers by the
            # frame layout; arrays sit directly below it.
            old = list(self.fn.locals.items())
            self.fn.locals.clear()
            self.fn.add_local("__canary", LONG)
            for name, slot in old:
                self.fn.locals[name] = slot

    def emit_prologue(self):
        if self._protected:
            guard = self.load_global("__stack_chk_guard")
            self.emit(Store(self.addr_of_local("__canary"), guard, 8))

    def emit_epilogue(self):
        if self._protected:
            value = self.vreg(LONG)
            self.emit(Load(value, self.addr_of_local("__canary"), 8, True))
            self.call("__canary_check", [value])


# ===========================================================================
# driver
# ===========================================================================

PASSES = {
    "sbcets": SbcetsPass,
    "hwst128": HwstNoTchkPass,
    "hwst128_tchk": HwstPass,
    "bogo": BogoPass,
    "wdl_narrow": WdlNarrowPass,
    "wdl_wide": WdlWidePass,
    "asan": AsanPass,
    "gcc": GccPass,
}


def instrument_module(module: Module, pass_name: str,
                      config: Optional[HwstConfig] = None):
    """Apply the named instrumentation pass to every user function."""
    pass_cls = PASSES.get(pass_name)
    if pass_cls is None:
        raise IRError(f"unknown instrumentation pass {pass_name!r}")
    config = config or HwstConfig()
    if pass_name == "asan":
        _asan_global_redzones(module)
    for fn in module.functions.values():
        pass_cls(module, fn, config).run()
    module.meta["instrumented"] = pass_name


def _asan_global_redzones(module: Module):
    """Interleave 16-byte redzone globals and record poison work."""
    old = list(module.globals.items())
    module.globals.clear()
    rz_names = []
    tails = []
    for index, (name, data) in enumerate(old):
        module.globals[name] = data
        rz = GlobalData(name=f"__grz.{index}", size=ASAN_REDZONE,
                        align=8, data=b"")
        module.globals[rz.name] = rz
        rz_names.append(rz.name)
        if data.size % 8:
            tails.append((name, data.size))
    module.meta["asan_global_rz"] = tuple(rz_names)
    module.meta["asan_global_tail"] = tuple(tails)
