"""repro.faultinject: seeded fault injection with a differential oracle.

Does the protection stack *fail safe*? This package perturbs a running
:class:`~repro.sim.machine.Machine` (metadata bit-flips, codec
corruption, keybuffer aliasing/staleness) or the linked program
(dropped/duplicated check ops), re-runs the workload, and compares the
outcome against a golden uninjected run. Every injection lands in one
of five scoreboard classes: ``detected`` / ``masked`` /
``silent_corruption`` / ``crash`` / ``hang``.

Entry points: :func:`run_campaign` (library),
``repro faultcampaign`` (CLI). See ``docs/robustness.md``.
"""

from repro.faultinject.faults import (
    ALL_KINDS, FAMILIES, FaultSpec, LINK_KINDS, RUNTIME_KINDS,
    RuntimeInjector, apply_link_fault, kinds_for,
)
from repro.faultinject.oracle import (
    CLASSES, CRASH, DETECTED, HANG, MASKED, SILENT_CORRUPTION,
    RunProfile, classify, golden_run, profile_run,
)
from repro.faultinject.targets import DEFAULT_TARGETS, TARGETS
from repro.faultinject.campaign import (
    CampaignReport, InjectionCell, REPORT_SCHEMA, plan_campaign,
    run_campaign,
)

__all__ = [
    "ALL_KINDS", "FAMILIES", "FaultSpec", "LINK_KINDS", "RUNTIME_KINDS",
    "RuntimeInjector", "apply_link_fault", "kinds_for",
    "CLASSES", "CRASH", "DETECTED", "HANG", "MASKED",
    "SILENT_CORRUPTION", "RunProfile", "classify", "golden_run",
    "profile_run",
    "DEFAULT_TARGETS", "TARGETS",
    "CampaignReport", "InjectionCell", "REPORT_SCHEMA", "plan_campaign",
    "run_campaign",
]
