"""Fault models: seeded perturbations of a running machine or program.

Each fault *kind* models one way the HWST128 protection stack can be
undermined in silicon or by a toolchain bug:

==================  =======================================================
kind                what breaks
==================  =======================================================
``srf_bitflip``     a particle flips one bit of a live SRF entry (the
                    compressed lower or upper metadata word)
``shadow_bitflip``  one bit of a resident shadow-memory word flips at rest
``codec_corrupt``   the (de)compression datapath XORs one bit into the next
                    compressed word it decodes (spatial or temporal half)
``kb_alias``        a keybuffer entry's cached key is corrupted — the TCU
                    now trusts a wrong translation
``kb_stale``        the lock word behind a resident keybuffer entry is
                    cleared *without* the snoop seeing it — the classic
                    stale-TLB bug the clear-on-free snoop exists to prevent
``check_drop``      a check instruction is lost at link time (``tchk``
                    becomes a nop; a fused checked access becomes its
                    unchecked twin)
``check_dup``       a spurious check appears on a plain access at link time
==================  =======================================================

Runtime kinds arm a one-shot hook on :attr:`Machine.fault_hook` that
fires at the seeded trigger instruction; link kinds mutate the
``Program`` in place before the run (see
:func:`repro.codegen.link.mutate_check_ops`). Everything a fault does
is a pure function of its :class:`FaultSpec`, so a campaign is
replayable from ``(seed, n)`` alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.link import mutate_check_ops

__all__ = ["FaultSpec", "FAMILIES", "ALL_KINDS", "RUNTIME_KINDS",
           "LINK_KINDS", "RuntimeInjector", "apply_link_fault",
           "kinds_for"]

#: family name -> the fault kinds it expands to (``--faults metadata``).
FAMILIES = {
    "metadata": ("srf_bitflip", "shadow_bitflip", "codec_corrupt"),
    "keybuffer": ("kb_alias", "kb_stale"),
    "checks": ("check_drop", "check_dup"),
}

RUNTIME_KINDS = ("srf_bitflip", "shadow_bitflip", "codec_corrupt",
                 "kb_alias", "kb_stale")
LINK_KINDS = ("check_drop", "check_dup")
ALL_KINDS = RUNTIME_KINDS + LINK_KINDS

_FAMILY_OF = {kind: family
              for family, kinds in FAMILIES.items() for kind in kinds}


def kinds_for(families) -> list:
    """Expand family names to fault kinds (raises on unknown family)."""
    kinds = []
    for family in families:
        expansion = FAMILIES.get(family)
        if expansion is None:
            raise ValueError(
                f"unknown fault family {family!r}; known: "
                f"{sorted(FAMILIES)}")
        kinds.extend(expansion)
    return kinds


@dataclass(frozen=True)
class FaultSpec:
    """One injection, fully determined by four small integers.

    ``trigger`` is the instret at which a runtime fault fires (link
    faults ignore it); ``bit`` picks which bit to flip; ``select``
    picks *which* structure entry / instruction site, reduced modulo
    whatever population exists at fire time.
    """

    kind: str
    trigger: int = 0
    bit: int = 0
    select: int = 0

    def __post_init__(self):
        if self.kind not in ALL_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {ALL_KINDS}")

    @property
    def family(self) -> str:
        return _FAMILY_OF[self.kind]

    @property
    def is_link_fault(self) -> bool:
        return self.kind in LINK_KINDS

    def brief(self) -> str:
        return (f"{self.kind}@{self.trigger} "
                f"bit={self.bit} select={self.select}")


class _CorruptingCompressor:
    """Proxy around :class:`MetadataCompressor` that XORs one bit into
    the next compressed word it is asked to decode (the one-shot
    ``codec_corrupt`` datapath fault). Everything else delegates."""

    def __init__(self, inner, bit: int, temporal: bool):
        self._inner = inner
        self._bit = bit % 64
        self._temporal = temporal
        self._pending = True

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def decompress_spatial(self, lower):
        if self._pending and not self._temporal:
            self._pending = False
            lower ^= 1 << self._bit
        return self._inner.decompress_spatial(lower)

    def decompress_temporal(self, upper):
        if self._pending and self._temporal:
            self._pending = False
            upper ^= 1 << self._bit
        return self._inner.decompress_temporal(upper)


def _flip_srf(machine, spec: FaultSpec) -> str:
    """Flip one bit of a live SRF entry (bit < 64: lower/spatial word,
    else upper/temporal word). Falls back to any register when no
    entry holds valid metadata — the flip then lands in dead state."""
    live = [r for r in range(1, 32)
            if machine.srf[r][2] or machine.srf[r][3]]
    if live:
        reg = live[spec.select % len(live)]
    else:
        reg = 1 + spec.select % 31
    lower, upper, lvalid, uvalid = machine.srf[reg]
    bit = spec.bit % 128
    if bit < 64:
        lower ^= 1 << bit
    else:
        upper ^= 1 << (bit - 64)
    machine.srf[reg] = (lower, upper, lvalid, uvalid)
    word = "lower" if bit < 64 else "upper"
    return (f"flipped SRF[{reg}] {word} bit {bit % 64}"
            f" (live={bool(live)})")


def _flip_shadow(machine, spec: FaultSpec) -> str:
    """Flip one bit of a resident (nonzero) shadow-memory word."""
    layout = machine.program.layout
    words = machine.memory.nonzero_u64_addrs(layout.shadow_offset,
                                             layout.shadow_top)
    if not words:
        return "no resident shadow words; fault landed nowhere"
    addr = words[spec.select % len(words)]
    bit = spec.bit % 64
    value = machine.memory.load_u64(addr)
    machine.memory.store_u64(addr, value ^ (1 << bit))
    return f"flipped shadow word {addr:#x} bit {bit}"


def _corrupt_codec(machine, spec: FaultSpec) -> str:
    """Interpose the corrupting proxy on the machine's compressor."""
    temporal = bool(spec.select % 2)
    machine.compressor = _CorruptingCompressor(machine.compressor,
                                               spec.bit, temporal)
    half = "temporal" if temporal else "spatial"
    return f"armed codec corruption: next {half} decompress, " \
           f"bit {spec.bit % 64}"


def _alias_keybuffer(machine, spec: FaultSpec) -> str:
    """Corrupt the cached key of a resident keybuffer entry."""
    locks = machine.keybuffer.locks()
    if not locks:
        return "keybuffer empty; fault landed nowhere"
    lock = locks[spec.select % len(locks)]
    key = machine.keybuffer.peek(lock)
    machine.keybuffer.poison(lock, key ^ (1 << (spec.bit % 64)))
    return f"aliased keybuffer entry for lock {lock:#x} " \
           f"(key bit {spec.bit % 64})"


def _stale_keybuffer(machine, spec: FaultSpec) -> str:
    """Clear the lock word behind a resident keybuffer entry without
    the clear-on-free snoop seeing it: the buffered key is now stale
    relative to memory (a freed allocation the TCU still trusts)."""
    locks = machine.keybuffer.locks()
    if not locks:
        return "keybuffer empty; fault landed nowhere"
    lock = locks[spec.select % len(locks)]
    machine.memory.store_u64(lock, 0)  # bypasses _snoop_lock_store
    return f"cleared lock word {lock:#x} behind the keybuffer"


_RUNTIME_PERTURB = {
    "srf_bitflip": _flip_srf,
    "shadow_bitflip": _flip_shadow,
    "codec_corrupt": _corrupt_codec,
    "kb_alias": _alias_keybuffer,
    "kb_stale": _stale_keybuffer,
}


class RuntimeInjector:
    """One-shot fault hook: perturb the machine once at the trigger.

    Install on :attr:`Machine.fault_hook`; the machine calls it before
    every dispatch. ``note`` records what the perturbation actually did
    (which register/word/lock it hit), "" until fired.
    """

    def __init__(self, spec: FaultSpec):
        if spec.kind not in _RUNTIME_PERTURB:
            raise ValueError(f"{spec.kind!r} is not a runtime fault")
        self.spec = spec
        self.fired = False
        self.note = ""

    def __call__(self, machine):
        if self.fired or machine.instret < self.spec.trigger:
            return
        self.fired = True
        self.note = _RUNTIME_PERTURB[self.spec.kind](machine, self.spec)


def apply_link_fault(program, spec: FaultSpec) -> str:
    """Mutate one check op of ``program`` in place (see
    :func:`repro.codegen.link.mutate_check_ops`). Returns the mutation
    description, "" when the program has no eligible site."""
    if not spec.is_link_fault:
        raise ValueError(f"{spec.kind!r} is not a link-time fault")
    return mutate_check_ops(program, spec.kind, spec.select)
