"""Differential oracle: golden run vs injected run -> verdict.

The oracle runs the *uninjected* program once per (target, scheme) and
freezes everything observable about it in a :class:`RunProfile`:
status, exit code, stdout, a digest of the final heap image, and the
uniform trap classification. Every injected run produces the same
profile, and :func:`classify` reduces the pair to one of five verdicts:

``detected``
    the injected run ended in a reported memory-safety violation
    (spatial/temporal) that the golden run did not exhibit identically
    — the protection stack caught the fault.
``masked``
    the injected run is observably identical to the golden run — the
    fault landed in dead state (an invalid SRF entry, a check that
    never fires again) or was architecturally absorbed.
``silent_corruption``
    the runs diverge but no check fired — wrong output, wrong exit
    code, a different trap, or a different final heap image. The worst
    verdict: the fault escaped the protection stack.
``hang``
    the injected run blew its step budget (or the wallclock watchdog
    fired in the worker) when the golden run did not.
``crash``
    the harness itself failed — a Python exception escaped the cell or
    the worker died. Always a bug in the fault models, never a valid
    campaign outcome (the acceptance gate requires 0).

Verdicts are a pure function of the two profiles, so same-seed
campaigns produce byte-identical scoreboards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import HwstConfig
from repro.sim.machine import Machine, STATUS_LIMIT, STATUS_SPATIAL, \
    STATUS_TEMPORAL

__all__ = ["RunProfile", "classify", "golden_run", "profile_run",
           "DETECTED", "MASKED", "SILENT_CORRUPTION", "CRASH", "HANG",
           "CLASSES"]

DETECTED = "detected"
MASKED = "masked"
SILENT_CORRUPTION = "silent_corruption"
CRASH = "crash"
HANG = "hang"

#: Scoreboard buckets, in report order.
CLASSES = (DETECTED, MASKED, SILENT_CORRUPTION, CRASH, HANG)


@dataclass(frozen=True)
class RunProfile:
    """Everything the oracle compares between two runs of one program."""

    status: str
    exit_code: int
    output: bytes
    heap_digest: str
    trap_class: str
    trap_pc: Optional[int]
    instret: int

    def matches(self, other: "RunProfile") -> bool:
        """Observably identical (instret intentionally *excluded*: a
        masked fault may cost a few extra retired instructions without
        changing any architectural observable)."""
        return (self.status == other.status
                and self.exit_code == other.exit_code
                and self.output == other.output
                and self.heap_digest == other.heap_digest
                and self.trap_class == other.trap_class
                and self.trap_pc == other.trap_pc)

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "exit_code": self.exit_code,
            "output": self.output.decode("utf-8", errors="replace"),
            "heap_digest": self.heap_digest,
            "trap_class": self.trap_class,
            "trap_pc": self.trap_pc,
            "instret": self.instret,
        }


def profile_run(machine: Machine, result) -> RunProfile:
    """Freeze the observable outcome of a finished run.

    The heap digest covers data segment + heap (globals included):
    everything a program computes that is not stdout lands there.
    """
    layout = machine.program.layout
    digest = machine.memory.hash_range(layout.data_base, layout.heap_top)
    return RunProfile(
        status=result.status,
        exit_code=result.exit_code,
        output=result.output,
        heap_digest=digest,
        trap_class=result.trap_class,
        trap_pc=result.trap_pc,
        instret=result.instret,
    )


def golden_run(source: str, scheme: str,
               config: Optional[HwstConfig] = None,
               max_instructions: int = 50_000_000,
               cache=None, engine: str = "ref") -> RunProfile:
    """Compile + run ``source`` uninjected and profile the outcome.

    Untimed (``timing=None``) — the oracle compares architectural
    state, and injected runs use the same machine construction so the
    comparison is apples-to-apples. ``engine`` selects the execution
    core; the campaign's opt-in lockstep check re-runs each golden on
    the fast engine and demands an identical profile.
    """
    from repro.harness.compile_cache import process_cache
    from repro.sim import make_machine

    config = config or HwstConfig()
    cache = cache if cache is not None else process_cache()
    program = cache.compile(source, scheme, config)
    machine = make_machine(engine, config=config, timing=None)
    result = machine.run(program, max_instructions=max_instructions)
    return profile_run(machine, result)


def classify(golden: RunProfile, injected: RunProfile) -> str:
    """Reduce (golden, injected) to one scoreboard verdict.

    Never returns ``crash`` — that verdict is minted by the campaign
    layer for harness failures (error/worker_died envelopes), which by
    definition never produce an injected profile.
    """
    if injected.status == STATUS_LIMIT and golden.status != STATUS_LIMIT:
        return HANG
    if injected.matches(golden):
        return MASKED
    if injected.status in (STATUS_SPATIAL, STATUS_TEMPORAL):
        return DETECTED
    return SILENT_CORRUPTION
