"""Campaign target programs: small, fast, deterministic mini-C kernels.

Four targets cover the quadrants the oracle needs:

* ``vecsum``   — benign, array-heavy: exercises fused spatial checks
  and shadow metadata stores; golden run exits 0.
* ``chase``    — benign, linked-list build/walk/free: exercises the
  temporal check path, the keybuffer and the clear-on-free snoop;
  golden run exits 0.
* ``overflow`` — one-past-the-end heap store: the golden run under a
  protecting scheme already traps spatially (faults here probe whether
  an injection can *suppress* detection).
* ``uaf``      — use-after-free load: golden run traps temporally.

Each is a few thousand retired instructions, so a 200-cell campaign
stays interactive even at ``jobs=1``.
"""

from __future__ import annotations

__all__ = ["TARGETS", "DEFAULT_TARGETS"]

_VECSUM = r"""
int main(void) {
    long *a = (long*)malloc(64 * 8);
    long i;
    long s = 0;
    for (i = 0; i < 64; i = i + 1) { a[i] = i * 3; }
    for (i = 0; i < 64; i = i + 1) { s = s + a[i]; }
    free(a);
    print_int(s);
    return s == 6048 ? 0 : 1;
}
"""

_CHASE = r"""
typedef struct Node Node;
struct Node { long value; Node *next; };

int main(void) {
    Node *head = 0;
    long i;
    for (i = 0; i < 24; i = i + 1) {
        Node *n = (Node*)malloc(sizeof(Node));
        n->value = i;
        n->next = head;
        head = n;
    }
    long s = 0;
    Node *p = head;
    while (p) {
        s = s + p->value;
        p = p->next;
    }
    while (head) {
        Node *dead = head;
        head = head->next;
        free(dead);
    }
    print_int(s);
    return s == 276 ? 0 : 1;
}
"""

_OVERFLOW = r"""
int main(void) {
    long *a = (long*)malloc(8 * 8);
    long i;
    for (i = 0; i <= 8; i = i + 1) { a[i] = i; }
    free(a);
    return 0;
}
"""

_UAF = r"""
int main(void) {
    long *p = (long*)malloc(4 * 8);
    p[0] = 11;
    p[1] = 22;
    free(p);
    return p[0] + p[1] == 33 ? 0 : 1;
}
"""

#: name -> mini-C source. Insertion order = campaign round-robin order.
TARGETS = {
    "vecsum": _VECSUM,
    "chase": _CHASE,
    "overflow": _OVERFLOW,
    "uaf": _UAF,
}

DEFAULT_TARGETS = tuple(TARGETS)
