"""Seeded fault-injection campaigns over the sweep executor.

:func:`run_campaign` is the whole pipeline:

1. **Golden runs.** Each target is compiled + run uninjected in the
   parent process; its :class:`RunProfile` freezes the expected
   observable outcome and sizes the per-injection step budget.
2. **Plan.** ``random.Random(seed)`` draws ``n`` :class:`FaultSpec`\\ s
   (kind, trigger instret, bit, select) round-robin over the targets —
   the plan is a pure function of ``(seed, n, families, targets)``.
3. **Execute.** Each injection is an :class:`InjectionCell`, a generic
   picklable cell the :class:`~repro.harness.parallel.SweepExecutor`
   fans across workers (grouped by target for compile-cache affinity).
   Cells run untimed with a deterministic step budget (4x the golden
   instret + slack) and the executor's wallclock watchdog as a
   nondeterministic backstop.
4. **Classify.** The worker classifies its own run against the golden
   profile (:func:`~repro.faultinject.oracle.classify`); the campaign
   layer only adds the envelope verdicts — ``hang`` for watchdog
   firings, ``crash`` for error/worker-death envelopes.
5. **Report.** The scoreboard and the per-injection records stream
   into a ``repro.faultinject/v1`` dict that contains *no* timestamps,
   durations or job counts — same seed, same JSON, byte for byte,
   regardless of parallelism. ``fault.*`` counters land on the
   executor's metrics registry.

A campaign is **interruptible**: pass ``stop`` (a zero-argument
callable, e.g. a flag set by a SIGTERM handler) and cells run in
bounded chunks with the flag checked at each chunk boundary. An
interrupted campaign still returns a *valid* report over the completed
prefix, marked ``"interrupted": true`` + ``"completed": N`` —
uninterrupted reports carry neither key, so their bytes are unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import HwstConfig
from repro.harness.compile_cache import process_cache
from repro.harness.parallel import (
    CellResult, STATUS_HANG, run_cells,
)
from repro.faultinject.faults import (
    FaultSpec, LINK_KINDS, RuntimeInjector, apply_link_fault, kinds_for,
)
from repro.faultinject.oracle import (
    CLASSES, CRASH, HANG, RunProfile, classify, golden_run, profile_run,
)
from repro.faultinject.targets import DEFAULT_TARGETS, TARGETS

__all__ = ["InjectionCell", "CampaignReport", "plan_campaign",
           "run_campaign", "REPORT_SCHEMA"]

REPORT_SCHEMA = "repro.faultinject/v1"

#: Step-budget slack on top of 4x the golden instret: generous enough
#: that a detoured-but-terminating run finishes, tight enough that a
#: genuinely wedged run is caught quickly.
_STEP_SLACK = 50_000

#: Cells per executor submission when a ``stop`` flag is wired in —
#: the granularity at which an interrupt takes effect. Kept a multiple
#: of the default target count so chunks retain target grouping.
_STOP_CHUNK = 16


@dataclass(frozen=True)
class InjectionCell:
    """One injection: golden profile + fault spec, picklable.

    A *generic* sweep cell — the executor calls :meth:`execute` in the
    worker (see ``_execute_cell``); ``tag``/``scheme``/``workload``/
    ``group_key``/``wallclock_budget`` feed its envelope machinery.
    """

    index: int
    target: str
    source: str
    scheme: str
    fault: FaultSpec
    golden: RunProfile
    max_instructions: int
    config: Optional[HwstConfig] = None
    wallclock_budget: Optional[float] = None
    workload: Optional[str] = None  # envelope field; targets aren't
    #                                 registered workloads

    @property
    def tag(self) -> str:
        return f"{self.target}/{self.fault.kind}/{self.index}"

    @property
    def group_key(self) -> str:
        # One worker sees all injections of a target: its program
        # compiles once per (target, scheme) per worker.
        return self.target

    def execute(self) -> CellResult:
        """Compile (cached), inject, run, classify. Runs in the worker."""
        from repro.sim.machine import Machine

        config = self.config or HwstConfig()
        program = process_cache().compile(self.source, self.scheme,
                                          config)
        note = ""
        injector = None
        if self.fault.kind in LINK_KINDS:
            # The cache hands back a fresh object graph — mutating the
            # program cannot leak into other cells.
            note = apply_link_fault(program, self.fault)
        machine = Machine(config=config, timing=None)
        if self.fault.kind not in LINK_KINDS:
            injector = RuntimeInjector(self.fault)
            machine.fault_hook = injector
        result = machine.run(program,
                             max_instructions=self.max_instructions)
        injected = profile_run(machine, result)
        if injector is not None:
            note = injector.note if injector.fired else \
                "trigger past end of run; fault never fired"
        return CellResult(
            tag=self.tag, workload=None, scheme=self.scheme,
            ok=result.ok, status=result.status,
            exit_code=result.exit_code, detail=result.detail,
            instret=result.instret,
            trap_class=result.trap_class, trap_pc=result.trap_pc,
            extra={
                "classification": classify(self.golden, injected),
                "target": self.target,
                "fault": {
                    "kind": self.fault.kind,
                    "family": self.fault.family,
                    "trigger": self.fault.trigger,
                    "bit": self.fault.bit,
                    "select": self.fault.select,
                },
                "note": note,
                "profile": injected.to_dict(),
            })


def _verdict_of(result: CellResult) -> str:
    """Scoreboard verdict of one envelope (worker verdict, or the
    envelope-level hang/crash classes)."""
    verdict = result.extra.get("classification", "")
    if verdict:
        return verdict
    if result.status == STATUS_HANG:
        return HANG
    return CRASH  # status="error" / "worker_died": harness failure


@dataclass
class CampaignReport:
    """Aggregated campaign outcome + the deterministic JSON document."""

    scheme: str
    seed: int
    n: int
    families: List[str]
    targets: List[str]
    goldens: Dict[str, RunProfile]
    scoreboard: Dict[str, int]
    by_kind: Dict[str, Dict[str, int]]
    injections: List[dict] = field(default_factory=list)
    #: True when a ``stop`` flag cut the campaign short; the report
    #: then covers only the completed prefix (``len(injections)``).
    interrupted: bool = False

    @property
    def clean(self) -> bool:
        """No harness failures and nothing wedged — the CI gate."""
        return self.scoreboard[CRASH] == 0 and self.scoreboard[HANG] == 0

    def to_dict(self) -> dict:
        """The ``repro.faultinject/v1`` document.

        Deliberately free of timestamps, wall-times and job counts:
        same seed -> byte-identical JSON at any parallelism. The
        ``interrupted``/``completed`` keys appear *only* on a truncated
        report, so completed campaigns keep their exact bytes.
        """
        doc = {
            "schema": REPORT_SCHEMA,
            "scheme": self.scheme,
            "seed": self.seed,
            "n": self.n,
            "families": list(self.families),
            "targets": list(self.targets),
            "goldens": {name: profile.to_dict()
                        for name, profile in self.goldens.items()},
            "scoreboard": dict(self.scoreboard),
            "by_kind": {kind: dict(row)
                        for kind, row in self.by_kind.items()},
            "injections": list(self.injections),
        }
        if self.interrupted:
            doc["interrupted"] = True
            doc["completed"] = len(self.injections)
        return doc

    def table(self) -> str:
        """Human-readable scoreboard."""
        lines = [
            f"fault campaign: scheme={self.scheme} n={self.n} "
            f"seed={self.seed} families={','.join(self.families)}",
            f"{'kind':<16}" + "".join(f"{cls:>20}" for cls in CLASSES),
        ]
        for kind in sorted(self.by_kind):
            row = self.by_kind[kind]
            lines.append(f"{kind:<16}"
                         + "".join(f"{row[cls]:>20}" for cls in CLASSES))
        lines.append(f"{'total':<16}"
                     + "".join(f"{self.scoreboard[cls]:>20}"
                               for cls in CLASSES))
        return "\n".join(lines)


def plan_campaign(n: int, seed: int, kinds: Sequence[str],
                  targets: Sequence[str],
                  goldens: Dict[str, RunProfile]) -> List[tuple]:
    """Draw the injection plan: ``n`` (target, FaultSpec) pairs.

    Pure function of its arguments — uses a private
    ``random.Random(seed)``, never the global generator.
    """
    rng = random.Random(seed)
    plan = []
    for index in range(n):
        target = targets[index % len(targets)]
        kind = kinds[rng.randrange(len(kinds))]
        golden = goldens[target]
        trigger = rng.randrange(1, max(2, golden.instret))
        fault = FaultSpec(kind=kind, trigger=trigger,
                          bit=rng.randrange(128),
                          select=rng.randrange(1 << 16))
        plan.append((target, fault))
    return plan


def run_campaign(scheme: str = "hwst128",
                 families: Sequence[str] = ("metadata", "keybuffer",
                                            "checks"),
                 n: int = 200, seed: int = 0,
                 targets: Optional[Sequence[str]] = None,
                 config: Optional[HwstConfig] = None,
                 executor=None, jobs: int = 1,
                 wallclock_budget: Optional[float] = 60.0,
                 registry=None, heartbeat=None,
                 engine_lockstep: bool = False,
                 stop=None) -> CampaignReport:
    """Run a seeded fault-injection campaign; see the module docstring.

    ``executor`` (a :class:`SweepExecutor`) is reused when given —
    its ``fault.*`` counters and merged obs snapshot accumulate there;
    otherwise a transient executor with ``jobs`` workers runs the
    cells and ``registry`` (optional) receives the counters.
    ``heartbeat`` (a :class:`repro.obs.heartbeat.Heartbeat`) receives
    rate-limited progress ticks as injection groups complete —
    stderr/telemetry only; the ``repro.faultinject/v1`` report stays
    byte-identical with or without it.

    ``engine_lockstep`` (opt-in, default off) re-runs every golden
    profile on the fast translation-cached engine before the campaign
    starts and raises :class:`ReproError` on any observable mismatch
    (including instret). It never changes the report bytes — it either
    passes silently or aborts loudly.

    ``stop`` (optional zero-argument callable) makes the campaign
    interruptible: cells run in chunks of ``_STOP_CHUNK`` and the flag
    is polled at every chunk boundary; once it returns True the report
    is finalised over the completed prefix with ``interrupted=True``.
    Without ``stop`` all cells go to the executor in one submission,
    exactly as before.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1: {n}")
    kinds = kinds_for(families)
    target_names = list(targets if targets is not None else
                        DEFAULT_TARGETS)
    for name in target_names:
        if name not in TARGETS:
            raise ValueError(f"unknown target {name!r}; known: "
                             f"{sorted(TARGETS)}")
    config = config or HwstConfig()

    goldens = {name: golden_run(TARGETS[name], scheme, config)
               for name in target_names}
    if engine_lockstep:
        from repro.errors import ReproError

        for name in target_names:
            fast = golden_run(TARGETS[name], scheme, config,
                              engine="fast")
            ref = goldens[name]
            if not (ref.matches(fast) and ref.instret == fast.instret):
                raise ReproError(
                    f"engine lockstep failed on golden {name!r}/"
                    f"{scheme}: ref {ref.status}/exit={ref.exit_code}/"
                    f"instret={ref.instret} vs fast {fast.status}/"
                    f"exit={fast.exit_code}/instret={fast.instret}")

    plan = plan_campaign(n, seed, kinds, target_names, goldens)
    cells = [
        InjectionCell(
            index=index, target=target, source=TARGETS[target],
            scheme=scheme, fault=fault, golden=goldens[target],
            max_instructions=goldens[target].instret * 4 + _STEP_SLACK,
            config=config, wallclock_budget=wallclock_budget)
        for index, (target, fault) in enumerate(plan)
    ]
    interrupted = False
    if stop is None:
        progress = None
        if heartbeat is not None:
            def progress(done, _total):
                heartbeat.tick(done, phase="inject")
        results = run_cells(cells, executor=executor, jobs=jobs,
                            progress=progress)
    else:
        results = []
        for start in range(0, len(cells), _STOP_CHUNK):
            if stop():
                interrupted = True
                break
            progress = None
            if heartbeat is not None:
                def progress(done, _total, _base=start):
                    heartbeat.tick(_base + done, phase="inject")
            results.extend(run_cells(
                cells[start:start + _STOP_CHUNK],
                executor=executor, jobs=jobs, progress=progress))

    scoreboard = {cls: 0 for cls in CLASSES}
    by_kind = {kind: {cls: 0 for cls in CLASSES} for kind in kinds}
    injections = []
    for cell, result in zip(cells, results):
        verdict = _verdict_of(result)
        scoreboard[verdict] += 1
        by_kind[cell.fault.kind][verdict] += 1
        record = {
            "index": cell.index,
            "target": cell.target,
            "kind": cell.fault.kind,
            "family": cell.fault.family,
            "trigger": cell.fault.trigger,
            "bit": cell.fault.bit,
            "select": cell.fault.select,
            "class": verdict,
            "status": result.status,
            "note": result.extra.get("note", ""),
        }
        if result.trap_class:
            record["trap_class"] = result.trap_class
            record["trap_pc"] = result.trap_pc
        injections.append(record)

    reg = executor.registry if executor is not None else registry
    if reg is not None:
        fault_scope = reg.scope("fault")
        fault_scope.counter("injected").inc(len(results))
        for cls in CLASSES:
            fault_scope.counter(cls).inc(scoreboard[cls])

    return CampaignReport(
        scheme=scheme, seed=seed, n=n,
        families=list(families), targets=target_names,
        goldens=goldens, scoreboard=scoreboard, by_kind=by_kind,
        injections=injections, interrupted=interrupted)
