"""Small bit-manipulation helpers used across the ISA and metadata code.

Everything works on Python ints; `u64` values are canonically kept in
``[0, 2**64)`` and `s64` in ``[-2**63, 2**63)``.
"""

from __future__ import annotations

MASK8 = 0xFF
MASK16 = 0xFFFF
MASK32 = 0xFFFF_FFFF
MASK64 = 0xFFFF_FFFF_FFFF_FFFF

SIGN32 = 0x8000_0000
SIGN64 = 0x8000_0000_0000_0000


def to_u64(value: int) -> int:
    """Truncate an arbitrary int to its unsigned 64-bit representation."""
    return value & MASK64


def to_s64(value: int) -> int:
    """Interpret the low 64 bits of ``value`` as a signed integer."""
    value &= MASK64
    return value - (1 << 64) if value & SIGN64 else value


def to_u32(value: int) -> int:
    """Truncate an arbitrary int to its unsigned 32-bit representation."""
    return value & MASK32


def to_s32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    value &= MASK32
    return value - (1 << 32) if value & SIGN32 else value


def sext(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` bits of ``value`` to a Python int."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def zext(value: int, bits: int) -> int:
    """Zero-extend (truncate) ``value`` to ``bits`` bits."""
    return value & ((1 << bits) - 1)


def fits_signed(value: int, bits: int) -> bool:
    """True when ``value`` is representable as a signed ``bits``-bit int."""
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo <= value <= hi

def fits_unsigned(value: int, bits: int) -> bool:
    """True when ``value`` is representable as an unsigned ``bits``-bit int."""
    return 0 <= value < (1 << bits)


def bit_length_for(value: int) -> int:
    """Number of bits needed to represent ``value`` (at least 1)."""
    if value < 0:
        raise ValueError(f"bit_length_for expects a non-negative value, got {value}")
    return max(1, value.bit_length())


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment`` (a power of two)."""
    if alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    if alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return value & ~(alignment - 1)


def extract(value: int, lo: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``lo``."""
    return (value >> lo) & ((1 << width) - 1)


def deposit(value: int, lo: int, width: int, field: int) -> int:
    """Return ``value`` with ``width`` bits at ``lo`` replaced by ``field``."""
    mask = ((1 << width) - 1) << lo
    return (value & ~mask) | ((field << lo) & mask)
