"""Bottom-up function summaries for the interprocedural analysis.

A :class:`FunctionSummary` describes one function's externally visible
memory behaviour in terms of its **own parameters**:

* ``derefs`` — byte windows the function reads/writes through each
  pointer parameter, with **affine symbolic bounds** over the integer
  parameters (``fn(p, n)`` accessing ``p[0..8n)`` keeps the ``n``);
* ``writes`` — pointer parameters written through;
* ``frees_must`` / ``frees_may`` — parameters whose region is freed
  on every path / on some path;
* ``escapes`` — parameters whose pointer value is stored somewhere
  that outlives the call (a global, the heap, or an unknown callee);
* ``writes_globals`` / ``havocs`` / ``frees_unknown`` — coarse bits:
  the function may write module globals, may write through pointers
  we cannot identify, or may free regions we cannot identify
  (transitively including calls to unknown code);
* ``ret`` — what the return value is (a parameter passthrough with a
  symbolic offset, a fresh allocation with a symbolic size, null, a
  global, an int range, or unknown).

Summaries are computed bottom-up over the call-graph SCC condensation
(:mod:`repro.analyze.callgraph`); members of a cyclic component are
iterated to a local fixpoint starting from the optimistic empty
summary and fall back to :func:`conservative_summary` if the cap is
hit. The symbolic walker reuses the generic dataflow engine with a
small affine domain (:class:`SymItv` over :data:`SymBound` bounds of
shape ``scale·param + const``).

The module also defines :class:`FnContext` — the *top-down* dual: the
meet over all call sites of the facts the callers establish about a
callee's parameters (int ranges, available bytes behind pointer
arguments, nullness, and the ``checked-on-entry`` liveness bit that
powers cross-call temporal-check elision). Contexts are collected by
``MemSafety`` during its report pass and joined by the interproc
driver; this module only provides the representation and the join.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.analyze.cfg import CFG
from repro.analyze.dataflow import (EdgeStates, ForwardAnalysis,
                                    run_forward)
from repro.analyze.domain import INF, NEG_INF, Interval
from repro.ir.instrument import ALLOC_FNS, WRAPPED_RANGE_FNS
from repro.ir.ir import (AddrGlobal, AddrLocal, BinOp, Br, Call, Conv,
                         Function, GetParam, IConst, Jmp, Load, Module,
                         Ret, Store, UnOp)

__all__ = ["SymBound", "SymItv", "Deref", "RetSummary",
           "FunctionSummary", "ParamCtx", "FnContext",
           "compute_summaries", "conservative_summary",
           "PURE_FNS", "WRITE_THROUGH_ARG0", "KNOWN_RUNTIME"]

# Runtime helpers that neither write user memory nor free anything.
PURE_FNS = frozenset({"print_char", "print_str", "print_int",
                      "print_hex", "rand_seed", "rand_next",
                      "strlen", "strcmp", "strncmp", "memcmp",
                      "__alloc_size"})
# Runtime helpers that write through their first pointer argument.
WRITE_THROUGH_ARG0 = frozenset({"memcpy", "memset", "strncpy",
                                "strcpy", "strcat"})
KNOWN_RUNTIME = (PURE_FNS | WRITE_THROUGH_ARG0 | set(ALLOC_FNS)
                 | {"free"})


# ---------------------------------------------------------------------------
# Affine symbolic bounds: scale·param + const  (param None => plain const)
# ---------------------------------------------------------------------------

SymBound = Tuple[Optional[str], int, float]


def sb_const(c) -> SymBound:
    return (None, 0, c)


def sb_of(param: str) -> SymBound:
    return (param, 1, 0)


def sb_inf(side: int) -> SymBound:
    return (None, 0, INF if side > 0 else NEG_INF)


def sb_is_inf(b: SymBound) -> bool:
    return b[0] is None and b[2] in (INF, NEG_INF)


def sb_add(a: SymBound, b: SymBound, side: int) -> SymBound:
    """a + b; incomparable symbolic mixes collapse to ±inf by
    ``side`` (-1 for a lower bound, +1 for an upper bound)."""
    if a[2] in (INF, NEG_INF) or b[2] in (INF, NEG_INF):
        return sb_inf(side)
    if a[0] is None:
        return (b[0], b[1], a[2] + b[2])
    if b[0] is None:
        return (a[0], a[1], a[2] + b[2])
    if a[0] == b[0]:
        scale = a[1] + b[1]
        if scale == 0:
            return sb_const(a[2] + b[2])
        return (a[0], scale, a[2] + b[2])
    return sb_inf(side)


def sb_mul_const(b: SymBound, k: int) -> SymBound:
    if k == 0:
        return sb_const(0)
    if b[0] is None:
        return sb_const(b[2] * k)
    return (b[0], b[1] * k, b[2] * k)


def _sb_pick(a: SymBound, b: SymBound, side: int,
             widen: bool = False) -> SymBound:
    """Join two bounds for the given side (-1: keep the smaller lower
    bound, +1: keep the larger upper bound); incomparable shapes
    collapse to ±inf."""
    if a == b:
        return a
    if (a[0], a[1]) == (b[0], b[1]):
        if widen and a[0] is None:
            # Const bounds get the same threshold widening Interval
            # uses, so loop counters stay inside C-width limits.
            grown = Interval(a[2], a[2]).widen(Interval(b[2], b[2]))
            c = grown.lo if side < 0 else grown.hi
        else:
            c = min(a[2], b[2]) if side < 0 else max(a[2], b[2])
        return (a[0], a[1], c)
    # One side already infinite in the right direction absorbs.
    if sb_is_inf(a) and ((side < 0) == (a[2] == NEG_INF)):
        return a
    if sb_is_inf(b) and ((side < 0) == (b[2] == NEG_INF)):
        return b
    return sb_inf(side)


def sb_eval(b: SymBound, binding: Dict[str, Interval],
            side: int) -> float:
    """Concretize a bound under ``param -> Interval``; unresolvable
    parameters give ±inf by side."""
    p, s, c = b
    if p is None:
        return c
    rng = binding.get(p)
    if rng is None or rng.is_top or c in (INF, NEG_INF):
        return INF if side > 0 else NEG_INF
    scaled = rng.mul(Interval.const(s)).add(Interval.const(int(c)))
    return scaled.lo if side < 0 else scaled.hi


@dataclass(frozen=True)
class SymItv:
    """Closed symbolic interval [lo, hi]."""

    lo: SymBound = sb_inf(-1)
    hi: SymBound = sb_inf(+1)

    @staticmethod
    def const(v) -> "SymItv":
        return SymItv(sb_const(v), sb_const(v))

    @staticmethod
    def of_param(p: str) -> "SymItv":
        return SymItv(sb_of(p), sb_of(p))

    @staticmethod
    def top() -> "SymItv":
        return SymItv()

    @property
    def is_top(self) -> bool:
        return sb_is_inf(self.lo) and sb_is_inf(self.hi)

    def add(self, other: "SymItv") -> "SymItv":
        return SymItv(sb_add(self.lo, other.lo, -1),
                      sb_add(self.hi, other.hi, +1))

    def add_const(self, c) -> "SymItv":
        return self.add(SymItv.const(c))

    def mul_const(self, k: int) -> "SymItv":
        lo, hi = sb_mul_const(self.lo, k), sb_mul_const(self.hi, k)
        return SymItv(lo, hi) if k >= 0 else SymItv(hi, lo)

    def join(self, other: "SymItv") -> "SymItv":
        return SymItv(_sb_pick(self.lo, other.lo, -1),
                      _sb_pick(self.hi, other.hi, +1))

    def widen(self, newer: "SymItv") -> "SymItv":
        return SymItv(_sb_pick(self.lo, newer.lo, -1, widen=True),
                      _sb_pick(self.hi, newer.hi, +1, widen=True))

    def eval(self, binding: Dict[str, Interval]) -> Interval:
        return Interval(sb_eval(self.lo, binding, -1),
                        sb_eval(self.hi, binding, +1))

    def subst(self, binding: Dict[str, "SymItv"]) -> "SymItv":
        """Rewrite bounds over a callee's params into the caller's
        namespace given ``callee param -> caller SymItv``."""
        return SymItv(_sb_subst(self.lo, binding, -1),
                      _sb_subst(self.hi, binding, +1))

    def __repr__(self) -> str:
        return f"[{_sb_fmt(self.lo)},{_sb_fmt(self.hi)}]"


def _sb_subst(b: SymBound, binding: Dict[str, "SymItv"],
              side: int) -> SymBound:
    p, s, c = b
    if p is None:
        return b
    itv = binding.get(p)
    if itv is None:
        return sb_inf(side)
    inner = itv.lo if (side < 0) == (s >= 0) else itv.hi
    out = sb_mul_const(inner, s)
    return sb_add(out, sb_const(c), side)


def _sb_fmt(b: SymBound) -> str:
    p, s, c = b
    if p is None:
        if c == INF:
            return "+inf"
        if c == NEG_INF:
            return "-inf"
        return str(int(c))
    head = p if s == 1 else f"{s}*{p}"
    if c == 0:
        return head
    return f"{head}{'+' if c > 0 else ''}{int(c)}"


# ---------------------------------------------------------------------------
# Summary representation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Deref:
    """One byte window [itv.lo, itv.hi) accessed through a pointer
    parameter, relative to the incoming pointer."""

    itv: SymItv
    write: bool
    definite: bool   # executes on every path to a return

    def join(self, other: "Deref") -> "Deref":
        return Deref(self.itv.join(other.itv),
                     self.write or other.write,
                     self.definite and other.definite)


@dataclass(frozen=True)
class RetSummary:
    kind: str = "unknown"   # none|int|param|fresh|null|local|global|unknown
    param: Optional[str] = None   # param name or global name
    off: SymItv = field(default_factory=SymItv.top)
    itv: SymItv = field(default_factory=SymItv.top)  # int value / fresh size
    nullable: bool = True
    # "fresh" only: False when the function also frees heap regions of
    # its own, so the returned allocation may already be dead.
    fresh_live: bool = True


_MAX_DEREFS = 8


@dataclass(frozen=True)
class FunctionSummary:
    name: str
    params: Tuple[str, ...] = ()
    derefs: Tuple[Tuple[str, Deref], ...] = ()
    writes: frozenset = frozenset()
    frees_must: frozenset = frozenset()
    frees_may: frozenset = frozenset()
    escapes: frozenset = frozenset()
    writes_globals: bool = False
    havocs: bool = False
    frees_unknown: bool = False
    ret: RetSummary = field(default_factory=RetSummary)

    @property
    def frees_anything(self) -> bool:
        return bool(self.frees_may) or self.frees_unknown

    def derefs_of(self, param: str) -> List[Deref]:
        return [d for p, d in self.derefs if p == param]


def conservative_summary(name: str,
                         params: Tuple[str, ...]) -> FunctionSummary:
    """Worst-case summary: behaves like a call into unknown code."""
    return FunctionSummary(name=name, params=params,
                           escapes=frozenset(params),
                           writes=frozenset(params),
                           frees_may=frozenset(params),
                           writes_globals=True, havocs=True,
                           frees_unknown=True)


# Built-in summaries for the runtime helpers, keyed "$<argindex>".
def _rt(name, derefs=(), writes=()):
    return FunctionSummary(
        name=name, params=tuple(sorted({p for p, _ in derefs})),
        derefs=tuple(derefs), writes=frozenset(writes))


def _window(param, lo, hi, write, definite=True):
    return (param, Deref(SymItv(lo, hi), write, definite))


_N = sb_of("$2")
RUNTIME_SUMMARIES: Dict[str, FunctionSummary] = {
    "memcpy": _rt("memcpy",
                  derefs=(_window("$0", sb_const(0), _N, True),
                          _window("$1", sb_const(0), _N, False)),
                  writes=("$0",)),
    "memset": _rt("memset",
                  derefs=(_window("$0", sb_const(0), _N, True),),
                  writes=("$0",)),
    "memcmp": _rt("memcmp",
                  derefs=(_window("$0", sb_const(0), _N, False,
                                  definite=False),
                          _window("$1", sb_const(0), _N, False,
                                  definite=False))),
    "strncpy": _rt("strncpy",
                   derefs=(_window("$0", sb_const(0), _N, True),
                           _window("$1", sb_const(0), _N, False,
                                   definite=False)),
                   writes=("$0",)),
    "strncmp": _rt("strncmp",
                   derefs=(_window("$0", sb_const(0), _N, False,
                                   definite=False),
                           _window("$1", sb_const(0), _N, False,
                                   definite=False))),
    "strcpy": _rt("strcpy",
                  derefs=(_window("$0", sb_const(0), sb_inf(+1),
                                  True, definite=False),
                          _window("$1", sb_const(0), sb_inf(+1),
                                  False, definite=False)),
                  writes=("$0",)),
    "strcat": _rt("strcat",
                  derefs=(_window("$0", sb_const(0), sb_inf(+1),
                                  True, definite=False),
                          _window("$1", sb_const(0), sb_inf(+1),
                                  False, definite=False)),
                  writes=("$0",)),
    "strlen": _rt("strlen",
                  derefs=(_window("$0", sb_const(0), sb_inf(+1),
                                  False, definite=False),)),
    "strcmp": _rt("strcmp",
                  derefs=(_window("$0", sb_const(0), sb_inf(+1),
                                  False, definite=False),
                          _window("$1", sb_const(0), sb_inf(+1),
                                  False, definite=False))),
}
for _p in ("print_char", "print_int", "print_hex", "rand_seed",
           "rand_next", "__alloc_size"):
    RUNTIME_SUMMARIES[_p] = FunctionSummary(name=_p)
RUNTIME_SUMMARIES["print_str"] = _rt(
    "print_str", derefs=(_window("$0", sb_const(0), sb_inf(+1),
                                 False, definite=False),))


# ---------------------------------------------------------------------------
# Top-down contexts
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ParamCtx:
    """What every call site guarantees about one parameter."""

    rng: Interval = field(default_factory=Interval.top)  # int params
    avail: float = 0        # min bytes from the pointer to region end
    nullness: str = "maybe"
    live: bool = False      # checked-on-entry: region live / checked
                            # at every call site

    def join(self, other: "ParamCtx") -> "ParamCtx":
        nullness = self.nullness if self.nullness == other.nullness \
            else "maybe"
        return ParamCtx(self.rng.join(other.rng),
                        min(self.avail, other.avail),
                        nullness, self.live and other.live)


@dataclass(frozen=True)
class FnContext:
    """Join over all call sites; absence of a context means Top."""

    params: Tuple[Tuple[str, ParamCtx], ...] = ()

    def get(self, name: str) -> Optional[ParamCtx]:
        for p, ctx in self.params:
            if p == name:
                return ctx
        return None

    def join(self, other: "FnContext") -> "FnContext":
        out = []
        mine = dict(self.params)
        for p, ctx in other.params:
            cur = mine.get(p)
            out.append((p, ctx if cur is None else cur.join(ctx)))
        return FnContext(tuple(out))


# ---------------------------------------------------------------------------
# The symbolic walker
# ---------------------------------------------------------------------------

_PTR_UNKNOWN = ("unknown",)
_PTR_NULL = ("null",)

_CMP_OPS = frozenset({"eq", "ne", "slt", "sle", "sgt", "sge",
                      "ult", "ule", "ugt", "uge"})
_CMP_NEG = {"eq": "ne", "ne": "eq", "slt": "sge", "sge": "slt",
            "sle": "sgt", "sgt": "sle", "ult": "uge", "uge": "ult",
            "ule": "ugt", "ugt": "ule"}
_CMP_SWAP = {"eq": "eq", "ne": "ne", "slt": "sgt", "sgt": "slt",
             "sle": "sge", "sge": "sle", "ult": "ugt", "ugt": "ult",
             "ule": "uge", "uge": "ule"}


@dataclass(frozen=True)
class SymVal:
    """Block-local symbolic value: int interval, pointer base+offset,
    uninitialized, or top."""

    kind: str = "top"            # int|ptr|uninit|top
    itv: SymItv = field(default_factory=SymItv.top)
    base: tuple = _PTR_UNKNOWN
    off: SymItv = field(default_factory=SymItv.top)
    origin: Optional[str] = None
    pred: Optional[tuple] = None

    @staticmethod
    def top() -> "SymVal":
        return SymVal()

    @staticmethod
    def uninit() -> "SymVal":
        return SymVal(kind="uninit")

    @staticmethod
    def int_itv(itv: SymItv, pred=None) -> "SymVal":
        return SymVal(kind="int", itv=itv, pred=pred)

    @staticmethod
    def ptr(base, off: SymItv) -> "SymVal":
        return SymVal(kind="ptr", base=base, off=off)

    @property
    def is_int(self) -> bool:
        return self.kind == "int"

    @property
    def is_ptr(self) -> bool:
        return self.kind == "ptr"

    def join(self, other: "SymVal") -> "SymVal":
        if self == other:
            return self
        origin = self.origin if self.origin == other.origin else None
        if self.kind == "uninit" and other.kind == "uninit":
            return SymVal.uninit()
        if self.is_int and other.is_int:
            return SymVal(kind="int", itv=self.itv.join(other.itv),
                          origin=origin)
        if self.is_ptr and other.is_ptr:
            if self.base == _PTR_NULL:
                return replace(other, origin=origin)
            if other.base == _PTR_NULL:
                return replace(self, origin=origin)
            if self.base == other.base:
                return SymVal(kind="ptr", base=self.base,
                              off=self.off.join(other.off),
                              origin=origin)
            return SymVal(kind="ptr", base=_PTR_UNKNOWN,
                          off=SymItv.top(), origin=origin)
        return SymVal.top()

    def widen(self, newer: "SymVal") -> "SymVal":
        if self.is_int and newer.is_int:
            return SymVal(kind="int", itv=self.itv.widen(newer.itv),
                          origin=self.origin
                          if self.origin == newer.origin else None)
        if self.is_ptr and newer.is_ptr and self.base == newer.base:
            return SymVal(kind="ptr", base=self.base,
                          off=self.off.widen(newer.off),
                          origin=self.origin
                          if self.origin == newer.origin else None)
        return self.join(newer)


class _SummaryWalk(ForwardAnalysis):
    """Dataflow client for one function's symbolic walk. State is
    ``slot key -> SymVal`` (same keying as MemSafety)."""

    def __init__(self, module: Module, fn: Function,
                 summaries: Dict[str, FunctionSummary]):
        from repro.minic.types import PointerType

        self.module = module
        self.fn = fn
        self.summaries = summaries
        self._ptr_param = {
            p: isinstance(fn.locals[p].ctype, PointerType)
            for p in fn.param_names if p in fn.locals}
        # effect accumulators, filled by the collect pass
        self.derefs: List[Tuple[str, Deref]] = []
        self.writes: set = set()
        self.free_events: List[Tuple[str, str, bool]] = []
        self.escapes: set = set()
        self.writes_globals = False
        self.havocs = False
        self.frees_unknown = False
        self.rets: List[SymVal] = []
        self.heap_sizes: Dict[tuple, SymItv] = {}
        self.freed_own = False
        self._collect = False
        self._cur_label = ""
        self._definite = lambda label: False

    # -- lattice -----------------------------------------------------------

    def initial_state(self, cfg: CFG):
        state: Dict[str, SymVal] = {}
        for name in self.fn.locals:
            state["l:" + name] = SymVal.uninit()
        for name in self.module.globals:
            state["g:" + name] = SymVal.top()
        return state

    def copy(self, state):
        return dict(state)

    def join(self, a, b):
        out = {}
        for key in a.keys() | b.keys():
            va, vb = a.get(key), b.get(key)
            out[key] = va.join(vb) if va is not None and \
                vb is not None else SymVal.top()
        return out

    def widen(self, old, new):
        out = {}
        for key in old.keys() | new.keys():
            va, vb = old.get(key), new.get(key)
            out[key] = va.widen(vb) if va is not None and \
                vb is not None else SymVal.top()
        return out

    # -- transfer ----------------------------------------------------------

    def transfer(self, cfg: CFG, label: str, state):
        return self._walk(cfg.blocks[label], state)

    def _walk(self, blk, state):
        env: Dict[int, SymVal] = {}

        def aval(v: Optional[int]) -> SymVal:
            if v is None:
                return SymVal.top()
            return env.get(v, SymVal.top())

        out = state
        for idx, ins in enumerate(blk.instrs):
            if isinstance(ins, IConst):
                if self.fn.prov.get(ins.dst) == ("null", None):
                    env[ins.dst] = SymVal.ptr(_PTR_NULL,
                                              SymItv.const(0))
                else:
                    env[ins.dst] = SymVal.int_itv(
                        SymItv.const(ins.value))
            elif isinstance(ins, AddrLocal):
                env[ins.dst] = SymVal.ptr(("local", ins.name),
                                          SymItv.const(0))
            elif isinstance(ins, AddrGlobal):
                env[ins.dst] = SymVal.ptr(("global", ins.name),
                                          SymItv.const(0))
            elif isinstance(ins, GetParam):
                pname = self.fn.param_names[ins.index] \
                    if ins.index < len(self.fn.param_names) else None
                if pname is None:
                    env[ins.dst] = SymVal.top()
                elif self._ptr_param.get(pname):
                    env[ins.dst] = SymVal.ptr(("param", pname),
                                              SymItv.const(0))
                else:
                    env[ins.dst] = SymVal.int_itv(
                        SymItv.of_param(pname))
            elif isinstance(ins, Conv):
                a = aval(ins.a)
                env[ins.dst] = a if a.is_ptr or a.is_int \
                    else SymVal.top()
            elif isinstance(ins, UnOp):
                env[ins.dst] = self._unop(ins.op, aval(ins.a))
            elif isinstance(ins, BinOp):
                env[ins.dst] = self._binop(ins.op, aval(ins.a),
                                           aval(ins.b))
            elif isinstance(ins, Load):
                env[ins.dst] = self._load(ins, aval(ins.addr), out)
            elif isinstance(ins, Store):
                out = self._store(ins, aval(ins.addr),
                                  aval(ins.src), out, blk.label)
            elif isinstance(ins, Call):
                out = self._call(ins, blk.label, idx, env, out)
            elif isinstance(ins, Ret):
                if self._collect:
                    self.rets.append(aval(ins.value)
                                     if ins.value is not None
                                     else SymVal(kind="int"))
                return out
            elif isinstance(ins, Br):
                return self._branch(ins, aval(ins.cond), out)
            elif isinstance(ins, Jmp):
                return out
            else:
                for d in ins.defs():
                    env[d] = SymVal.top()
        return out

    def _unop(self, op: str, a: SymVal) -> SymVal:
        if op == "lognot" and a.pred is not None:
            pop, pl, pr = a.pred
            return SymVal.int_itv(SymItv(sb_const(0), sb_const(1)),
                                  pred=(_CMP_NEG[pop], pl, pr))
        return SymVal(kind="int") if op in ("neg", "not", "lognot") \
            else SymVal.top()

    def _binop(self, op: str, a: SymVal, b: SymVal) -> SymVal:
        if op in _CMP_OPS:
            verdict = None
            if a.is_int and b.is_int:
                ra = a.itv.eval({})
                rb = b.itv.eval({})
                if not ra.is_top and not rb.is_top:
                    verdict = ra.definitely(op, rb)
            itv = SymItv(sb_const(0), sb_const(1)) if verdict is None \
                else SymItv.const(1 if verdict else 0)
            return SymVal.int_itv(itv, pred=(op, a, b))
        if op == "add":
            if a.is_ptr and b.is_int:
                return replace(a, off=a.off.add(b.itv), pred=None)
            if b.is_ptr and a.is_int:
                return replace(b, off=b.off.add(a.itv), pred=None)
            if a.is_int and b.is_int:
                return SymVal.int_itv(a.itv.add(b.itv))
        elif op == "sub":
            if a.is_ptr and b.is_int:
                return replace(a, off=a.off.add(b.itv.mul_const(-1)),
                               pred=None)
            if a.is_int and b.is_int:
                return SymVal.int_itv(
                    a.itv.add(b.itv.mul_const(-1)))
            return SymVal(kind="int")
        elif op in ("mul", "shl"):
            if a.is_int and b.is_int:
                for x, y in ((a, b), (b, a)):
                    const = y.itv.eval({})
                    if const.is_const and op == "mul":
                        return SymVal.int_itv(
                            x.itv.mul_const(int(const.lo)))
                    if const.is_const and op == "shl" and \
                            0 <= const.lo <= 48:
                        return SymVal.int_itv(
                            x.itv.mul_const(1 << int(const.lo)))
                    if op == "shl":
                        break
                return SymVal(kind="int")
        elif op in ("and", "or", "xor", "sdiv", "udiv", "srem",
                    "urem", "lshr", "ashr"):
            return SymVal(kind="int")
        return SymVal.top()

    def _slot_key(self, base) -> Optional[str]:
        if base[0] == "local":
            return "l:" + base[1]
        if base[0] == "global":
            return "g:" + base[1]
        return None

    def _scalar_slot(self, base, size: int) -> Optional[str]:
        key = self._slot_key(base)
        if key is None:
            return None
        if base[0] == "local":
            obj = self.fn.locals.get(base[1])
            return key if obj is not None and obj.size == size \
                else None
        data = self.module.globals.get(base[1])
        return key if data is not None and data.size == size else None

    def _load(self, ins: Load, addr: SymVal, state) -> SymVal:
        if self._collect and ins.needs_check and addr.is_ptr and \
                addr.base[0] == "param":
            self._record_deref(addr.base[1],
                               addr.off.add(SymItv(
                                   sb_const(0), sb_const(ins.size))),
                               write=False, label=self._cur_label)
        if addr.is_ptr and addr.off == SymItv.const(0):
            key = self._scalar_slot(addr.base, ins.size)
            if key is not None and key in state:
                value = replace(state[key], origin=key)
                if ins.ptr_result and not value.is_ptr and \
                        value.kind != "uninit":
                    itv = value.itv.eval({}) if value.is_int else None
                    if itv is not None and itv == Interval.const(0):
                        return SymVal.ptr(_PTR_NULL, SymItv.const(0))
                    return SymVal(kind="ptr", origin=value.origin)
                return value
        return SymVal(kind="ptr") if ins.ptr_result else SymVal.top()

    def _store(self, ins: Store, addr: SymVal, src: SymVal, state,
               label: str):
        if self._collect and ins.needs_check and addr.is_ptr and \
                addr.base[0] == "param":
            self._record_deref(addr.base[1],
                               addr.off.add(SymItv(
                                   sb_const(0), sb_const(ins.size))),
                               write=True, label=label)
        if self._collect and src.is_ptr and src.base[0] == "param" \
                and addr.is_ptr and addr.base[0] in ("global",
                                                     "unknown",
                                                     "param", "heap"):
            # parameter value stored somewhere that outlives the call
            self.escapes.add(src.base[1])
        if addr.is_ptr and addr.base[0] in ("local", "global"):
            if self._collect and addr.base[0] == "global":
                self.writes_globals = True
            key = self._slot_key(addr.base)
            new = dict(state)
            exact = self._scalar_slot(addr.base, ins.size)
            if exact is not None and addr.off == SymItv.const(0):
                new[exact] = replace(src, origin=None)
            elif key is not None:
                new[key] = SymVal.top()
            return new
        if addr.is_ptr and addr.base[0] in ("param", "heap"):
            if self._collect and addr.base[0] == "param":
                self.writes.add(addr.base[1])
            return state
        if self._collect:
            self.havocs = True
        return self._havoc(state)

    def _havoc(self, state):
        new = dict(state)
        for key in new:
            if key.startswith("g:"):
                new[key] = SymVal.top()
            else:
                slot = self.fn.locals.get(key[2:])
                if slot is not None and slot.is_object:
                    new[key] = SymVal.top()
        return new

    def _call(self, ins: Call, label: str, idx: int, env, state):
        name = ins.name

        def aval(v):
            return env.get(v, SymVal.top()) if v is not None \
                else SymVal.top()

        if name in ALLOC_FNS:
            site = (label, idx)
            if name == "calloc":
                a0, a1 = aval(ins.args[0]), aval(ins.args[1])
                c1 = a1.itv.eval({}) if a1.is_int else Interval.top()
                size = a0.itv.mul_const(int(c1.lo)) \
                    if a0.is_int and c1.is_const else SymItv.top()
            else:
                a0 = aval(ins.args[0])
                size = a0.itv if a0.is_int else SymItv.top()
            self.heap_sizes[site] = size
            if ins.dst is not None:
                env[ins.dst] = SymVal.ptr(("heap", site),
                                          SymItv.const(0))
            return state
        if name == "free":
            p = aval(ins.args[0]) if ins.args else SymVal.top()
            if self._collect:
                if p.is_ptr and p.base[0] == "param":
                    self.free_events.append(
                        (label, p.base[1], self._definite(label)))
                elif p.is_ptr and p.base[0] == "heap":
                    self.freed_own = True
                elif not (p.is_ptr and p.base[0] in ("local",
                                                     "global",
                                                     "null")):
                    self.frees_unknown = True
            return state

        summary = self.summaries.get(name)
        if summary is None and name in RUNTIME_SUMMARIES:
            summary = RUNTIME_SUMMARIES[name]
        if summary is None and name in self.module.functions:
            # SCC sibling not yet summarized: optimistic empty.
            summary = FunctionSummary(name=name)
        if summary is None:
            # Truly unknown external code.
            if self._collect:
                self.havocs = True
                self.frees_unknown = True
                self.writes_globals = True
                for v in ins.args:
                    p = aval(v)
                    if p.is_ptr and p.base[0] == "param":
                        self.escapes.add(p.base[1])
                        self.writes.add(p.base[1])
            if ins.dst is not None:
                env[ins.dst] = SymVal(kind="ptr") if ins.ptr_result \
                    else SymVal.top()
            return self._havoc(state)

        argvals = [aval(v) for v in ins.args]
        bind = self._bindings(summary, argvals)
        if self._collect:
            self._compose(summary, argvals, bind, label)
        if ins.dst is not None:
            env[ins.dst] = self._ret_value(summary, bind, label, idx,
                                           ins.ptr_result)
        new = state
        if summary.havocs:
            new = self._havoc(new)
        else:
            if summary.writes_globals:
                new = dict(new)
                for key in new:
                    if key.startswith("g:"):
                        new[key] = SymVal.top()
            for p in summary.writes:
                av = bind.get(p)
                if isinstance(av, SymVal) and av.is_ptr and \
                        av.base[0] in ("local", "global"):
                    key = self._slot_key(av.base)
                    if key is not None:
                        if new is state:
                            new = dict(new)
                        new[key] = SymVal.top()
        return new

    @staticmethod
    def _param_key(summary: FunctionSummary, i: int) -> str:
        if i < len(summary.params):
            return summary.params[i]
        return f"${i}"

    def _bindings(self, summary, argvals) -> Dict[str, SymVal]:
        bind: Dict[str, SymVal] = {}
        for i, av in enumerate(argvals):
            bind[self._param_key(summary, i)] = av
            bind[f"${i}"] = av
        return bind

    def _compose(self, summary, argvals, bind, label):
        """Fold a callee's summarized effects into ours."""
        sym_bind = {p: v.itv for p, v in bind.items() if v.is_int}
        for p, rec in summary.derefs:
            av = bind.get(p)
            if av is None or not av.is_ptr:
                continue
            window = rec.itv.subst(sym_bind)
            definite = rec.definite and self._definite(label)
            if av.base[0] == "param":
                self._record_deref(av.base[1], av.off.add(window),
                                   write=rec.write, label=label,
                                   definite=definite)
            if rec.write and av.base[0] == "param":
                self.writes.add(av.base[1])
        for p in summary.writes:
            av = bind.get(p)
            if av is not None and av.is_ptr and \
                    av.base[0] == "param":
                self.writes.add(av.base[1])
        for kind, names in (("must", summary.frees_must),
                            ("may", summary.frees_may)):
            for p in names:
                av = bind.get(p)
                if av is None:
                    continue
                if av.is_ptr and av.base[0] == "param":
                    definite = kind == "must" and \
                        self._definite(label)
                    self.free_events.append(
                        (label, av.base[1], definite))
                elif av.is_ptr and av.base[0] == "heap":
                    self.freed_own = True
                elif not (av.is_ptr and av.base[0] in ("local",
                                                       "global",
                                                       "null")):
                    self.frees_unknown = True
        for p in summary.escapes:
            av = bind.get(p)
            if av is not None and av.is_ptr and \
                    av.base[0] == "param":
                self.escapes.add(av.base[1])
        self.writes_globals |= summary.writes_globals
        self.havocs |= summary.havocs
        self.frees_unknown |= summary.frees_unknown
        if summary.ret.kind == "fresh" and not summary.ret.fresh_live:
            # The callee hands us a possibly-dead allocation; if we in
            # turn return it, our own callers must not trust it.
            self.freed_own = True

    def _ret_value(self, summary, bind, label, idx,
                   ptr_result) -> SymVal:
        ret = summary.ret
        if ret.kind == "int":
            return SymVal.int_itv(ret.itv.subst(
                {p: v.itv for p, v in bind.items() if v.is_int}))
        if ret.kind == "param":
            av = bind.get(ret.param)
            if av is not None and av.is_ptr:
                sym_bind = {p: v.itv for p, v in bind.items()
                            if v.is_int}
                return replace(av, off=av.off.add(
                    ret.off.subst(sym_bind)), origin=None, pred=None)
        if ret.kind == "fresh":
            sym_bind = {p: v.itv for p, v in bind.items()
                        if v.is_int}
            site = ("ret", label, idx)
            self.heap_sizes[site] = ret.itv.subst(sym_bind)
            return SymVal.ptr(("heap", site), SymItv.const(0))
        if ret.kind == "null":
            return SymVal.ptr(_PTR_NULL, SymItv.const(0))
        if ret.kind == "global":
            sym_bind = {p: v.itv for p, v in bind.items()
                        if v.is_int}
            return SymVal.ptr(("global", ret.param),
                              ret.off.subst(sym_bind))
        return SymVal(kind="ptr") if ptr_result else SymVal.top()

    def _record_deref(self, param: str, window: SymItv, write: bool,
                      label: str, definite: Optional[bool] = None):
        if definite is None:
            definite = self._definite(label)
        rec = Deref(window, write, definite)
        self.derefs.append((param, rec))

    # -- branches ----------------------------------------------------------

    def _branch(self, ins: Br, cond: SymVal, state):
        then_state = state
        else_state = dict(state)
        crng = cond.itv.eval({}) if cond.is_int else None
        if crng is not None and crng.is_const:
            if crng.lo == 0:
                then_state = None
            else:
                else_state = None
        pred = cond.pred
        if pred is not None:
            op, la, lb = pred
            if then_state is not None:
                then_state = self._apply_pred(then_state, op, la, lb)
            if else_state is not None:
                else_state = self._apply_pred(else_state,
                                              _CMP_NEG[op], la, lb)
        if ins.then_label == ins.else_label:
            if then_state is None:
                return else_state
            if else_state is None:
                return then_state
            return self.join(then_state, else_state)
        return EdgeStates({ins.then_label: then_state,
                           ins.else_label: else_state})

    def _apply_pred(self, state, op, la, lb):
        new = state
        for side, other, sop in ((la, lb, op),
                                 (lb, la, _CMP_SWAP[op])):
            key = side.origin
            if key is None or not side.is_int or not other.is_int:
                continue
            cur = new.get(key)
            if cur is None or not cur.is_int or cur.itv != side.itv:
                continue
            refined = _sym_refine(cur.itv, sop, other.itv)
            if refined != cur.itv:
                if new is state:
                    new = dict(state)
                new[key] = SymVal.int_itv(refined)
        return new

    # -- driver ------------------------------------------------------------

    def summarize(self) -> FunctionSummary:
        result = run_forward(self, self.fn)
        cfg = result.cfg
        ret_blocks = [blk.label for blk in self.fn.blocks
                      if blk.label in cfg.reachable and
                      any(isinstance(i, Ret) for i in blk.instrs)]
        dom_cache: Dict[str, bool] = {}

        def definite(label: str) -> bool:
            hit = dom_cache.get(label)
            if hit is None:
                hit = bool(ret_blocks) and all(
                    cfg.dominates(label, rb) for rb in ret_blocks)
                dom_cache[label] = hit
            return hit

        self._definite = definite
        self._collect = True
        try:
            for label, in_state in result.block_in.items():
                self._cur_label = label
                self._walk(cfg.blocks[label], dict(in_state))
        finally:
            self._collect = False
        return self._build_summary()

    def _build_summary(self) -> FunctionSummary:
        # Collapse deref records per param, bounded for determinism.
        grouped: Dict[Tuple[str, bool, bool], Deref] = {}
        order: List[Tuple[str, bool, bool]] = []
        for p, rec in self.derefs:
            key = (p, rec.write, rec.definite)
            cur = grouped.get(key)
            if cur is None:
                grouped[key] = rec
                order.append(key)
            else:
                grouped[key] = cur.join(rec)
        derefs = tuple((key[0], grouped[key])
                       for key in order[:_MAX_DEREFS])

        frees_must = frozenset(p for _, p, definite
                               in self.free_events if definite)
        frees_may = frozenset(p for _, p, _ in self.free_events)

        ret = RetSummary(kind="none")
        for rv in self.rets:
            ret = _join_ret(ret, self._ret_of(rv))

        return FunctionSummary(
            name=self.fn.name,
            params=tuple(self.fn.param_names),
            derefs=derefs,
            writes=frozenset(self.writes),
            frees_must=frees_must,
            frees_may=frees_may,
            escapes=frozenset(self.escapes),
            writes_globals=self.writes_globals,
            havocs=self.havocs,
            frees_unknown=self.frees_unknown,
            ret=ret)

    def _ret_of(self, rv: SymVal) -> RetSummary:
        if rv.is_int:
            return RetSummary(kind="int", itv=rv.itv,
                              nullable=True)
        if rv.is_ptr:
            base = rv.base
            if base == _PTR_NULL:
                return RetSummary(kind="null")
            if base[0] == "param":
                return RetSummary(kind="param", param=base[1],
                                  off=rv.off, nullable=False)
            if base[0] == "heap":
                # The allocator can return NULL, and the callee may
                # have freed its own allocation — callers must treat
                # the region as maybe-null and only maybe-live when
                # the callee frees anything.
                size = self.heap_sizes.get(base[1], SymItv.top())
                return RetSummary(kind="fresh", itv=size,
                                  nullable=True,
                                  fresh_live=not self.freed_own)
            if base[0] == "local":
                return RetSummary(kind="local", param=base[1])
            if base[0] == "global":
                return RetSummary(kind="global", param=base[1],
                                  off=rv.off, nullable=False)
        return RetSummary(kind="unknown")


def _join_ret(a: RetSummary, b: RetSummary) -> RetSummary:
    if a.kind == "none":
        return b
    if b.kind == "none":
        return a
    if a.kind == "null" and b.kind in ("param", "fresh", "global"):
        return replace(b, nullable=True)
    if b.kind == "null" and a.kind in ("param", "fresh", "global"):
        return replace(a, nullable=True)
    if a.kind != b.kind:
        return RetSummary(kind="unknown")
    if a.kind == "int":
        return RetSummary(kind="int", itv=a.itv.join(b.itv))
    if a.kind == "param" and a.param == b.param:
        return RetSummary(kind="param", param=a.param,
                          off=a.off.join(b.off),
                          nullable=a.nullable or b.nullable)
    if a.kind == "fresh":
        return RetSummary(kind="fresh", itv=a.itv.join(b.itv),
                          nullable=a.nullable or b.nullable,
                          fresh_live=a.fresh_live and b.fresh_live)
    if a.kind == "global" and a.param == b.param:
        return RetSummary(kind="global", param=a.param,
                          off=a.off.join(b.off),
                          nullable=a.nullable or b.nullable)
    if a == b:
        return a
    return RetSummary(kind="unknown")


def _sym_refine(itv: SymItv, op: str, other: SymItv) -> SymItv:
    """Value of ``itv`` assuming ``itv op other`` holds (refinement is
    free to keep either the old or the new bound — both are sound
    over-approximations of the intersection; we prefer the symbolic
    one, which is what turns ``i < n`` into ``p[0..n)``)."""
    if op in ("slt", "ult"):
        return SymItv(itv.lo, _prefer(sb_add(other.hi, sb_const(-1),
                                             +1), itv.hi))
    if op in ("sle", "ule"):
        return SymItv(itv.lo, _prefer(other.hi, itv.hi))
    if op in ("sgt", "ugt"):
        return SymItv(_prefer(sb_add(other.lo, sb_const(1), -1),
                              itv.lo), itv.hi)
    if op in ("sge", "uge"):
        return SymItv(_prefer(other.lo, itv.lo), itv.hi)
    if op == "eq":
        return SymItv(_prefer(other.lo, itv.lo),
                      _prefer(other.hi, itv.hi))
    return itv


def _prefer(new: SymBound, old: SymBound) -> SymBound:
    """Pick the more informative of two sound bounds: anything beats
    ±inf; a symbolic bound beats a const (that is the size-relation
    the summaries exist to capture)."""
    if sb_is_inf(new):
        return old
    if sb_is_inf(old):
        return new
    if new[0] is not None and old[0] is None:
        return new
    if old[0] is not None and new[0] is None:
        return old
    return new


# ---------------------------------------------------------------------------
# Bottom-up fixpoint over SCCs
# ---------------------------------------------------------------------------

_SCC_CAP = 4


def compute_summaries(module: Module, callgraph
                      ) -> Tuple[Dict[str, FunctionSummary], int]:
    """Summaries for every in-module function, bottom-up; returns
    ``(summaries, total SCC fixpoint iterations)``."""
    summaries: Dict[str, FunctionSummary] = {}
    iterations = 0
    for comp in callgraph.sccs():
        cyclic = len(comp) > 1 or \
            comp[0] in callgraph.callees[comp[0]]
        if not cyclic:
            name = comp[0]
            walk = _SummaryWalk(module, module.functions[name],
                                summaries)
            summaries[name] = walk.summarize()
            iterations += 1
            continue
        # Optimistic iteration within the cycle.
        stable = False
        for _ in range(_SCC_CAP):
            iterations += 1
            changed = False
            for name in comp:
                walk = _SummaryWalk(module, module.functions[name],
                                    summaries)
                new = walk.summarize()
                if summaries.get(name) != new:
                    summaries[name] = new
                    changed = True
            if not changed:
                stable = True
                break
        if not stable:
            for name in comp:
                fn = module.functions[name]
                summaries[name] = conservative_summary(
                    name, tuple(fn.param_names))
    return summaries, iterations
