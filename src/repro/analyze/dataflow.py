"""Generic forward dataflow engine over :class:`repro.analyze.cfg.CFG`.

Clients subclass :class:`ForwardAnalysis` and provide the lattice
operations (``initial_state``/``join``/``copy``) plus a per-block
``transfer``. The engine runs a worklist to a fixpoint in reverse
postorder, keeping **per-edge** out states: ``transfer`` may return a
single state (same on every out-edge) or an :class:`EdgeStates` map,
which is what lets the memory-safety client refine facts along
branch edges (``p != 0`` on the then-edge, etc.). Mapping an edge to
``None`` marks it infeasible (bottom) and the join skips it.

Termination on infinite-height domains (intervals) comes from the
optional ``widen`` hook: after a block has been reprocessed
``widen_after`` times, its joined input is widened against the
previous input. After the fixpoint, ``narrow_passes`` descending
sweeps in RPO re-run the transfer without widening to claw back
precision lost to widening (safe: transfer is monotone, and we only
replace states computed from already-sound inputs).
"""

from __future__ import annotations

from typing import Any, Dict, Generic, List, Optional, Tuple, TypeVar

from repro.analyze.cfg import CFG
from repro.ir.ir import Function

S = TypeVar("S")

__all__ = ["EdgeStates", "ForwardAnalysis", "ReachingDefinitions",
           "run_forward"]


class EdgeStates:
    """Explicit per-successor transfer result.

    ``transfer`` wraps ``{succ_label: state_or_None}`` in this class so
    the engine can tell an edge map from a client whose *state* happens
    to be a plain dict (e.g. ReachingDefinitions)."""

    __slots__ = ("by_succ",)

    def __init__(self, by_succ: Dict[str, Any]):
        self.by_succ = by_succ


class ForwardAnalysis(Generic[S]):
    """Base class for forward dataflow clients."""

    #: start widening a block's input after this many reprocessings
    widen_after: int = 3
    #: descending sweeps after the ascending fixpoint
    narrow_passes: int = 2

    # -- lattice -----------------------------------------------------------

    def initial_state(self, cfg: CFG) -> S:
        """State on entry to the entry block."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        """Least upper bound of two states."""
        raise NotImplementedError

    def copy(self, state: S) -> S:
        """A transfer-safe copy of ``state`` (may be ``state`` itself
        for immutable representations)."""
        return state

    def widen(self, old: S, new: S) -> S:
        """Widening; default is plain join (fine for finite domains)."""
        return self.join(old, new)

    # -- transfer ----------------------------------------------------------

    def transfer(self, cfg: CFG, label: str, state: S):
        """Abstractly execute block ``label`` from input ``state``.

        Return either one out-state (applied to every successor) or an
        :class:`EdgeStates` wrapping ``{succ_label: state_or_None}``;
        ``None`` marks the edge infeasible.
        """
        raise NotImplementedError


class DataflowResult(Generic[S]):
    """Fixpoint: input state per reachable block + per-edge outs."""

    def __init__(self, cfg: CFG, block_in: Dict[str, S],
                 edge_out: Dict[Tuple[str, str], Optional[S]],
                 iterations: int):
        self.cfg = cfg
        self.block_in = block_in
        self.edge_out = edge_out
        self.iterations = iterations

    def in_state(self, label: str) -> Optional[S]:
        return self.block_in.get(label)


def _out_edges(analysis: ForwardAnalysis, cfg: CFG, label: str,
               state: Any) -> Dict[Tuple[str, str], Any]:
    """Normalize a transfer result to per-edge states."""
    result = analysis.transfer(cfg, label, analysis.copy(state))
    succs = cfg.succs.get(label, ())
    if isinstance(result, EdgeStates):
        return {(label, succ): result.by_succ.get(succ)
                for succ in succs}
    return {(label, succ): result for succ in succs}


def run_forward(analysis: ForwardAnalysis, fn_or_cfg) -> DataflowResult:
    """Run ``analysis`` to a fixpoint over ``fn_or_cfg``."""
    cfg = fn_or_cfg if isinstance(fn_or_cfg, CFG) else CFG(fn_or_cfg)
    if not cfg.entry:
        return DataflowResult(cfg, {}, {}, 0)

    block_in: Dict[str, Any] = {cfg.entry: analysis.initial_state(cfg)}
    edge_out: Dict[Tuple[str, str], Any] = {}
    visits: Dict[str, int] = {}
    iterations = 0

    worklist: List[str] = [cfg.entry]
    queued = {cfg.entry}
    while worklist:
        # RPO-ordered worklist: pop the earliest block queued.
        worklist.sort(key=lambda lb: cfg.rpo_index.get(lb, 1 << 30))
        label = worklist.pop(0)
        queued.discard(label)
        iterations += 1

        if label != cfg.entry:
            joined: Any = None
            for pred in cfg.preds.get(label, ()):
                st = edge_out.get((pred, label))
                if st is None:
                    continue
                joined = analysis.copy(st) if joined is None \
                    else analysis.join(joined, st)
            if joined is None:
                continue  # no feasible in-edge yet
            visits[label] = visits.get(label, 0) + 1
            if visits[label] > analysis.widen_after and \
                    label in block_in:
                joined = analysis.widen(block_in[label], joined)
            if label in block_in and \
                    analysis.states_equal(block_in[label], joined):
                continue
            block_in[label] = joined

        outs = _out_edges(analysis, cfg, label, block_in[label])
        for (src, succ), st in outs.items():
            prev = edge_out.get((src, succ), "__unset__")
            if prev != "__unset__" and _edge_equal(analysis, prev, st):
                continue
            edge_out[(src, succ)] = st
            if succ not in queued and succ in cfg.blocks:
                worklist.append(succ)
                queued.add(succ)

        if iterations > 64 * max(1, len(cfg.blocks)) * \
                (analysis.widen_after + 2):
            break  # safety valve; widening should prevent this

    # Descending (narrowing) sweeps: recompute joins without widening.
    for _ in range(analysis.narrow_passes):
        changed = False
        for label in cfg.rpo:
            if label != cfg.entry:
                joined = None
                for pred in cfg.preds.get(label, ()):
                    st = edge_out.get((pred, label))
                    if st is None:
                        continue
                    joined = analysis.copy(st) if joined is None \
                        else analysis.join(joined, st)
                if joined is None:
                    continue
                if not analysis.states_equal(
                        block_in.get(label), joined):
                    block_in[label] = joined
                    changed = True
            outs = _out_edges(analysis, cfg, label, block_in[label])
            for key, st in outs.items():
                if not _edge_equal(analysis, edge_out.get(key), st):
                    edge_out[key] = st
                    changed = True
        if not changed:
            break

    return DataflowResult(cfg, block_in, edge_out, iterations)


def _edge_equal(analysis: ForwardAnalysis, a, b) -> bool:
    if a is None or b is None:
        return a is b
    return analysis.states_equal(a, b)


# states_equal lives on the class so clients may override it; default
# uses ==, which every state representation here supports.
def _states_equal(self, a, b) -> bool:
    if a is None or b is None:
        return a is b
    return a == b


ForwardAnalysis.states_equal = _states_equal  # type: ignore[attr-defined]


class ReachingDefinitions(ForwardAnalysis):
    """Classic reaching definitions over stack slots.

    A definition is ``(block_label, instr_index)`` of a ``Store`` whose
    address is an ``AddrLocal`` computed in the same block (the
    block-local single-def IR makes this the common shape irgen emits).
    State maps slot name -> frozenset of definition sites. Used to
    exercise the engine in tests; the memory-safety client has its own
    richer domain.
    """

    def __init__(self, fn: Function):
        from repro.ir.ir import AddrLocal, Store

        self.fn = fn
        # slot defs per block, precomputed
        self._defs: Dict[str, List[Tuple[str, int]]] = {}
        for blk in fn.blocks:
            addr_slot: Dict[str, str] = {}
            for idx, ins in enumerate(blk.instrs):
                if isinstance(ins, AddrLocal):
                    addr_slot[ins.dst] = ins.name
                elif isinstance(ins, Store) and \
                        ins.addr in addr_slot:
                    self._defs.setdefault(blk.label, []).append(
                        (addr_slot[ins.addr], idx))

    def initial_state(self, cfg: CFG):
        return {}

    def copy(self, state):
        return dict(state)

    def join(self, a, b):
        out = dict(a)
        for slot, sites in b.items():
            out[slot] = out.get(slot, frozenset()) | sites
        return out

    def transfer(self, cfg: CFG, label: str, state):
        for slot, idx in self._defs.get(label, ()):
            state[slot] = frozenset({(label, idx)})
        return state
