"""repro.analyze: forward-dataflow framework over the IR + clients.

Layers:

* :mod:`repro.analyze.cfg` — CFG, reverse postorder, dominators
* :mod:`repro.analyze.dataflow` — generic forward engine (per-edge
  states, widening/narrowing), ReachingDefinitions example client
* :mod:`repro.analyze.domain` — Interval + AVal abstract values
* :mod:`repro.analyze.memsafety` — the memory-safety transfer
* :mod:`repro.analyze.linter` — static linter (`repro analyze`)
* :mod:`repro.analyze.elide` — redundant-check elimination
  (`--elide-checks`)
"""

from repro.analyze.cfg import CFG
from repro.analyze.dataflow import (ForwardAnalysis,
                                    ReachingDefinitions, run_forward)
from repro.analyze.domain import AVal, Interval
from repro.analyze.elide import ElisionStats, elide_module
from repro.analyze.linter import (AnalysisReport, Finding,
                                  analyze_module, analyze_source)
from repro.analyze.memsafety import (MemSafety, analyze_function,
                                     compute_may_free)

__all__ = [
    "CFG", "ForwardAnalysis", "ReachingDefinitions", "run_forward",
    "AVal", "Interval", "ElisionStats", "elide_module",
    "AnalysisReport", "Finding", "analyze_module", "analyze_source",
    "MemSafety", "analyze_function", "compute_may_free",
]
