"""Abstract domain for the memory-safety analysis.

Two pieces:

* :class:`Interval` — integer ranges with ``±inf`` sentinels, the
  usual arithmetic/lattice operations, and widening. All IR integer
  arithmetic is width-limited; any operation whose concrete result
  could wrap its width goes to Top rather than modeling modular
  arithmetic (sound, loses precision exactly where the program might
  overflow — which is where we must not elide checks anyway).

* :class:`AVal` — the abstract value of one vreg or stack slot:
  an integer range, a pointer (region + byte-offset interval +
  nullness), an uninitialized slot, or Top. Pointers carry their
  allocation *region*: ``("local", name)`` / ``("global", name)`` /
  ``("heap", site_key)``, or ``None`` for pointers of unknown
  provenance (loaded from memory, returned by unmodeled calls).
  Compare results additionally carry a predicate (op + operand
  abstract values) so branch transfer can refine along edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

INF = float("inf")
NEG_INF = float("-inf")

__all__ = ["Interval", "AVal", "INF", "NEG_INF",
           "LIVE", "FREED", "MAYBE_FREED", "HeapRegion"]


def _is_int(x) -> bool:
    return x != INF and x != NEG_INF


# Widening thresholds: C type-range limits, nearest-first.
_WIDEN_LOS = (0, -(1 << 7), -(1 << 15), -(1 << 31), -(1 << 63))
_WIDEN_HIS = (0, (1 << 7) - 1, (1 << 15) - 1, (1 << 31) - 1,
              (1 << 63) - 1)


@dataclass(frozen=True)
class Interval:
    """Closed integer interval [lo, hi]; lo/hi may be ±inf."""

    lo: float = NEG_INF
    hi: float = INF

    # -- constructors ------------------------------------------------------

    @staticmethod
    def const(v: int) -> "Interval":
        return Interval(v, v)

    @staticmethod
    def top() -> "Interval":
        return Interval(NEG_INF, INF)

    @staticmethod
    def range(lo, hi) -> "Interval":
        return Interval(lo, hi)

    # -- queries -----------------------------------------------------------

    @property
    def is_top(self) -> bool:
        return self.lo == NEG_INF and self.hi == INF

    @property
    def is_const(self) -> bool:
        return _is_int(self.lo) and self.lo == self.hi

    def contains(self, v: int) -> bool:
        return self.lo <= v <= self.hi

    def definitely(self, op: str, other: "Interval") -> Optional[bool]:
        """Evaluate ``self op other`` if it holds for *all* pairs;
        return None when the answer depends on the concrete values."""
        if op == "eq":
            if self.hi < other.lo or other.hi < self.lo:
                return False
            if self.is_const and other.is_const and \
                    self.lo == other.lo:
                return True
            return None
        if op == "ne":
            inv = self.definitely("eq", other)
            return None if inv is None else not inv
        if op in ("slt", "ult"):
            if self.hi < other.lo:
                return True
            if self.lo >= other.hi:
                return False
            return None
        if op in ("sle", "ule"):
            if self.hi <= other.lo:
                return True
            if self.lo > other.hi:
                return False
            return None
        if op in ("sgt", "ugt"):
            return other.definitely("slt", self)
        if op in ("sge", "uge"):
            return other.definitely("sle", self)
        return None

    # -- lattice -----------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> Optional["Interval"]:
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def widen(self, newer: "Interval") -> "Interval":
        """Threshold widening: an unstable bound jumps to the nearest
        C-width limit rather than straight to infinity.  This keeps a
        loop counter reloaded through a 4-byte slot inside the int
        range (``clamp_width`` would otherwise wrap ``[0,+inf]`` to the
        full signed range, destroying the in-bounds proof)."""
        lo, hi = self.lo, self.hi
        if newer.lo < lo:
            lo = next((t for t in _WIDEN_LOS if t <= newer.lo), NEG_INF)
        if newer.hi > hi:
            hi = next((t for t in _WIDEN_HIS if t >= newer.hi), INF)
        return Interval(lo, hi)

    # -- arithmetic --------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def neg(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def mul(self, other: "Interval") -> "Interval":
        if self.is_top or other.is_top:
            return Interval.top()
        prods = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                if (a in (INF, NEG_INF) and b == 0) or \
                        (b in (INF, NEG_INF) and a == 0):
                    prods.append(0)
                else:
                    prods.append(a * b)
        return Interval(min(prods), max(prods))

    def shl(self, other: "Interval") -> "Interval":
        if other.is_const and _is_int(other.lo) and \
                0 <= other.lo <= 48:
            return self.mul(Interval.const(1 << int(other.lo)))
        return Interval.top()

    def and_mask(self, other: "Interval") -> "Interval":
        # x & mask with both non-negative is bounded by min(hi, hi).
        if self.lo >= 0 and other.lo >= 0:
            hi = min(self.hi, other.hi)
            return Interval(0, hi)
        return Interval.top()

    def clamp_width(self, width: int, signed: bool) -> "Interval":
        """Result of truncating/extending to ``width`` bits. If the
        interval already fits the target range it is unchanged;
        otherwise the result is the full target range (no wraparound
        modeling)."""
        if width <= 0 or width >= 64:
            return self
        if signed:
            lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        else:
            lo, hi = 0, (1 << width) - 1
        if self.lo >= lo and self.hi <= hi:
            return self
        return Interval(lo, hi)

    def __repr__(self) -> str:
        def fmt(x):
            if x == INF:
                return "+inf"
            if x == NEG_INF:
                return "-inf"
            return str(int(x))
        return f"[{fmt(self.lo)},{fmt(self.hi)}]"


# Heap-region status values.
LIVE = "live"
FREED = "freed"
MAYBE_FREED = "maybe_freed"


@dataclass(frozen=True)
class HeapRegion:
    """One abstract allocation site."""

    size: Interval = field(default_factory=Interval.top)
    status: str = LIVE

    def join(self, other: "HeapRegion") -> "HeapRegion":
        status = self.status if self.status == other.status \
            else MAYBE_FREED
        return HeapRegion(self.size.join(other.size), status)


@dataclass(frozen=True)
class AVal:
    """Abstract value: int range, pointer, uninitialized, or Top.

    ``kind``:
      * ``"int"``    — integer with range ``rng``
      * ``"ptr"``    — pointer into ``region`` at byte ``offset``;
                       ``region is None`` means unknown provenance
      * ``"uninit"`` — never written (slot values only)
      * ``"top"``    — anything
    ``nullness`` (pointers): "null" / "nonnull" / "maybe".
    ``origin``: stack-slot name this value was loaded from, if any —
    the hook branch refinement uses to write facts back to the slot.
    ``pred``: for int results of compares, (op, lhs AVal, rhs AVal).
    ``sub``: optional sub-object window ``(rel, size)`` — the pointer
    sits ``rel`` bytes past the start of a ``size``-byte struct field.
    Object-granularity bounds cannot see intra-object overflows; this
    window lets the linter flag them even though the runtime schemes
    (by design, and per the paper's threat model) will not trap.
    """

    kind: str = "top"
    rng: Interval = field(default_factory=Interval.top)
    region: Optional[Tuple[str, object]] = None
    offset: Interval = field(default_factory=Interval.top)
    nullness: str = "maybe"
    origin: Optional[str] = None
    pred: Optional[tuple] = None
    sub: Optional[Tuple[Interval, int]] = None

    # -- constructors ------------------------------------------------------

    @staticmethod
    def top() -> "AVal":
        return AVal()

    @staticmethod
    def uninit() -> "AVal":
        return AVal(kind="uninit")

    @staticmethod
    def int_const(v: int) -> "AVal":
        return AVal(kind="int", rng=Interval.const(v))

    @staticmethod
    def int_range(rng: Interval) -> "AVal":
        return AVal(kind="int", rng=rng)

    @staticmethod
    def ptr(region, offset: Interval, nullness: str = "nonnull",
            origin: Optional[str] = None) -> "AVal":
        return AVal(kind="ptr", region=region, offset=offset,
                    nullness=nullness, origin=origin)

    @staticmethod
    def null() -> "AVal":
        return AVal(kind="ptr", region=None,
                    offset=Interval.const(0), nullness="null")

    @staticmethod
    def unknown_ptr(origin: Optional[str] = None) -> "AVal":
        return AVal(kind="ptr", region=None, offset=Interval.top(),
                    nullness="maybe", origin=origin)

    # -- queries -----------------------------------------------------------

    @property
    def is_ptr(self) -> bool:
        return self.kind == "ptr"

    @property
    def is_int(self) -> bool:
        return self.kind == "int"

    # -- pointer arithmetic ------------------------------------------------

    def shift(self, delta: Interval) -> "AVal":
        """Pointer moved by ``delta`` bytes: the object offset and any
        sub-object window move together."""
        sub = None
        if self.sub is not None:
            sub = (self.sub[0].add(delta), self.sub[1])
        return replace(self, offset=self.offset.add(delta),
                       pred=None, sub=sub)

    # -- lattice -----------------------------------------------------------

    def join(self, other: "AVal") -> "AVal":
        if self == other:
            return self
        if self.kind == "uninit" and other.kind == "uninit":
            return AVal.uninit()
        if self.kind == "int" and other.kind == "int":
            return AVal(kind="int", rng=self.rng.join(other.rng),
                        origin=self._join_origin(other))
        if self.kind == "ptr" and other.kind == "ptr":
            # null joins into another pointer as nullness="maybe"
            # while keeping the other side's region/offset — this is
            # what makes `p = cond ? buf : 0` still elidable after an
            # `if (p)` refinement.
            if self.nullness == "null" and other.region is not None:
                return replace(other, nullness=_join_null(
                    self.nullness, other.nullness),
                    origin=self._join_origin(other))
            if other.nullness == "null" and self.region is not None:
                return replace(self, nullness=_join_null(
                    self.nullness, other.nullness),
                    origin=self._join_origin(other))
            region = self.region if self.region == other.region \
                else None
            offset = self.offset.join(other.offset) \
                if region is not None else Interval.top()
            return AVal(kind="ptr", region=region, offset=offset,
                        nullness=_join_null(self.nullness,
                                            other.nullness),
                        origin=self._join_origin(other),
                        sub=_join_sub(self.sub, other.sub,
                                      Interval.join))
        return AVal.top()

    def _join_origin(self, other: "AVal") -> Optional[str]:
        return self.origin if self.origin == other.origin else None

    def widen(self, newer: "AVal") -> "AVal":
        if self.kind == "int" and newer.kind == "int":
            return AVal(kind="int", rng=self.rng.widen(newer.rng),
                        origin=self._join_origin(newer))
        if self.kind == "ptr" and newer.kind == "ptr" and \
                self.region == newer.region:
            return AVal(kind="ptr", region=self.region,
                        offset=self.offset.widen(newer.offset),
                        nullness=_join_null(self.nullness,
                                            newer.nullness),
                        origin=self._join_origin(newer),
                        sub=_join_sub(self.sub, newer.sub,
                                      Interval.widen))
        return self.join(newer)

    def __repr__(self) -> str:
        if self.kind == "int":
            return f"int{self.rng!r}"
        if self.kind == "ptr":
            reg = "?" if self.region is None else \
                f"{self.region[0]}:{self.region[1]}"
            return f"ptr({reg}+{self.offset!r},{self.nullness})"
        return self.kind


def _join_null(a: str, b: str) -> str:
    return a if a == b else "maybe"


def _join_sub(a, b, combine):
    """Join/widen two sub-object windows; kept only when both sides
    agree on the field size (else the window is meaningless)."""
    if a is None or b is None or a[1] != b[1]:
        return None
    return (combine(a[0], b[0]), a[1])
