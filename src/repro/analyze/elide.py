"""Redundant-check elimination over an instrumented module.

Runs *after* an elidable instrumentation pass. The instrumentation
tagged every op it emitted for a checked access with ``_check_for``
(the guarded Load/Store) and ``_check_part``:

* ``"spatial"``  — bounds materialisation + the fused-check binding
  (HwBndrs / inline compares); dropped when the access is proven
  in-bounds, together with clearing ``checked`` so the lowered access
  becomes a plain load/store.
* ``"temporal"`` — key/lock materialisation + HwBndrt + tchk (or the
  inline key compare); dropped when the region is statically live or
  an equivalent earlier check on the same unchanged pointer
  dominates this one.
* ``"shared"``   — metadata materialisation both halves rely on
  (e.g. SBCETS ``__sb_mload``); dropped only on full elision.

The analysis facts come from ``ins._ms_facts`` stamped by
:func:`repro.analyze.memsafety.analyze_function` on the
pre-instrumentation module — instrumentation re-emits the same
instruction objects, so the facts ride along.

Soundness is *scheme-relative*: a pass advertises ``elidable = True``
only when dropping a proven check cannot change what the scheme
detects (see docs/analysis.md for the argument, including why a
maybe-null heap pointer still allows temporal elision but never
spatial elision).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import HwstConfig
from repro.ir.instrument import PASSES
from repro.ir.ir import Load, Module, Store

__all__ = ["ElisionStats", "elide_module"]


@dataclass
class ElisionStats:
    """What the pass did, for compile.analyze.* counters."""

    checks_total: int = 0          # tagged check groups seen
    spatial_proven: int = 0        # accesses proven in-bounds
    temporal_proven: int = 0       # accesses with statically-live region
    temporal_dominated: int = 0    # covered by an earlier kept check
    checks_elided: int = 0         # groups fully removed
    spatial_elided: int = 0        # spatial half dropped (incl. full)
    temporal_elided: int = 0       # temporal half dropped (incl. full)
    ops_removed: int = 0           # IR instructions deleted
    by_function: Dict[str, int] = field(default_factory=dict)

    @property
    def checks_proven(self) -> int:
        """Accesses where at least one half was proven redundant."""
        return self.spatial_elided + self.temporal_elided \
            - self.checks_elided


def elide_module(module: Module,
                 config: Optional[HwstConfig] = None) -> ElisionStats:
    """Drop proven-redundant check ops from an instrumented module."""
    stats = ElisionStats()
    pass_name = module.meta.get("instrumented")
    pass_cls = PASSES.get(pass_name) if pass_name else None
    if pass_cls is None or not getattr(pass_cls, "elidable", False):
        return stats

    for fn in module.functions.values():
        removed = 0
        for blk in fn.blocks:
            decisions = _group_decisions(blk.instrs, stats)
            if not decisions:
                continue
            kept = []
            for ins in blk.instrs:
                target = getattr(ins, "_check_for", None)
                if target is not None:
                    drop_parts = decisions.get(id(target))
                    part = getattr(ins, "_check_part", "shared")
                    if drop_parts and part in drop_parts:
                        removed += 1
                        continue
                kept.append(ins)
            blk.instrs = kept
        if removed:
            stats.by_function[fn.name] = removed
        stats.ops_removed += removed
    return stats


def _group_decisions(instrs, stats: ElisionStats):
    """Per guarded access: which tagged parts to drop. Also flips the
    access's ``checked`` flag off when its spatial half goes away (a
    fused checked load with no bounds bound would trap)."""
    decisions = {}
    seen = set()
    for ins in instrs:
        target = getattr(ins, "_check_for", None)
        if target is None or id(target) in seen:
            continue
        seen.add(id(target))
        stats.checks_total += 1
        facts = getattr(target, "_ms_facts", None)
        if facts is None:
            continue
        spatial = facts.spatial_ok
        temporal_static = facts.temporal_ok
        temporal = temporal_static or facts.temporal_dom
        if facts.spatial_ok:
            stats.spatial_proven += 1
        if temporal_static:
            stats.temporal_proven += 1
        elif facts.temporal_dom:
            stats.temporal_dominated += 1
        if not spatial and not temporal:
            continue
        drop = set()
        if spatial:
            drop.add("spatial")
            stats.spatial_elided += 1
            if isinstance(target, (Load, Store)):
                target.checked = False
        if temporal:
            drop.add("temporal")
            stats.temporal_elided += 1
        if spatial and temporal:
            drop.add("shared")
            stats.checks_elided += 1
        decisions[id(target)] = drop
    return decisions
