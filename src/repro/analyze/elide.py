"""Redundant-check elimination over an instrumented module.

Runs *after* an elidable instrumentation pass. The instrumentation
tagged every op it emitted for a checked access with ``_check_for``
(the guarded Load/Store) and ``_check_part``:

* ``"spatial"``  — bounds materialisation + the fused-check binding
  (HwBndrs / inline compares); dropped when the access is proven
  in-bounds, together with clearing ``checked`` so the lowered access
  becomes a plain load/store.
* ``"temporal"`` — key/lock materialisation + HwBndrt + tchk (or the
  inline key compare); dropped when the region is statically live or
  an equivalent earlier check on the same unchanged pointer
  dominates this one.
* ``"shared"``   — metadata materialisation both halves rely on
  (e.g. SBCETS ``__sb_mload``); dropped only on full elision.

The analysis facts come from ``ins._ms_facts`` stamped by
:func:`repro.analyze.memsafety.analyze_function` on the
pre-instrumentation module — instrumentation re-emits the same
instruction objects, so the facts ride along.

Soundness is *scheme-relative*: a pass advertises ``elidable = True``
only when dropping a proven check cannot change what the scheme
detects (see docs/analysis.md for the argument, including why a
maybe-null heap pointer still allows temporal elision but never
spatial elision).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import HwstConfig
from repro.ir.instrument import PASSES
from repro.ir.ir import (AddrGlobal, AddrLocal, BasicBlock, Br, Call,
                         Jmp, Load, Module, Store)
from repro.minic.types import VOID, PointerType

__all__ = ["ElisionStats", "elide_module", "hoist_loop_checks"]


@dataclass
class ElisionStats:
    """What the pass did, for compile.analyze.* counters."""

    checks_total: int = 0          # tagged check groups seen
    spatial_proven: int = 0        # accesses proven in-bounds
    temporal_proven: int = 0       # accesses with statically-live region
    temporal_dominated: int = 0    # covered by an earlier kept check
    checks_elided: int = 0         # groups fully removed
    spatial_elided: int = 0        # spatial half dropped (incl. full)
    temporal_elided: int = 0       # temporal half dropped (incl. full)
    cross_call_elided: int = 0     # drops that leaned on call-site facts
    ops_removed: int = 0           # IR instructions deleted
    by_function: Dict[str, int] = field(default_factory=dict)

    @property
    def checks_proven(self) -> int:
        """Accesses where at least one half was proven redundant."""
        return self.spatial_elided + self.temporal_elided \
            - self.checks_elided


def elide_module(module: Module,
                 config: Optional[HwstConfig] = None) -> ElisionStats:
    """Drop proven-redundant check ops from an instrumented module."""
    stats = ElisionStats()
    pass_name = module.meta.get("instrumented")
    pass_cls = PASSES.get(pass_name) if pass_name else None
    if pass_cls is None or not getattr(pass_cls, "elidable", False):
        return stats

    for fn in module.functions.values():
        removed = 0
        for blk in fn.blocks:
            decisions = _group_decisions(blk.instrs, stats)
            if not decisions:
                continue
            kept = []
            for ins in blk.instrs:
                target = getattr(ins, "_check_for", None)
                if target is not None:
                    drop_parts = decisions.get(id(target))
                    part = getattr(ins, "_check_part", "shared")
                    if drop_parts and part in drop_parts:
                        removed += 1
                        continue
                kept.append(ins)
            blk.instrs = kept
        if removed:
            stats.by_function[fn.name] = removed
        stats.ops_removed += removed
    return stats


def _group_decisions(instrs, stats: ElisionStats):
    """Per guarded access: which tagged parts to drop. Also flips the
    access's ``checked`` flag off when its spatial half goes away (a
    fused checked load with no bounds bound would trap)."""
    decisions = {}
    seen = set()
    for ins in instrs:
        target = getattr(ins, "_check_for", None)
        if target is None or id(target) in seen:
            continue
        seen.add(id(target))
        stats.checks_total += 1
        facts = getattr(target, "_ms_facts", None)
        if facts is None:
            continue
        spatial = facts.spatial_ok
        temporal_static = facts.temporal_ok
        temporal = temporal_static or facts.temporal_dom
        if facts.spatial_ok:
            stats.spatial_proven += 1
        if temporal_static:
            stats.temporal_proven += 1
        elif facts.temporal_dom:
            stats.temporal_dominated += 1
        if not spatial and not temporal:
            continue
        drop = set()
        if spatial:
            drop.add("spatial")
            stats.spatial_elided += 1
            if isinstance(target, (Load, Store)):
                target.checked = False
        if temporal:
            drop.add("temporal")
            stats.temporal_elided += 1
        if spatial and temporal:
            drop.add("shared")
            stats.checks_elided += 1
        if drop and facts.cross_call:
            stats.cross_call_elided += 1
        decisions[id(target)] = drop
    return decisions


# ===========================================================================
# Loop-invariant temporal-check hoisting
# ===========================================================================
#
# Runs on the *pre-instrumentation* module, between analysis stamping
# and instrumentation. For a natural loop whose body provably executes
# at least once, whose body calls only pure helpers (so no free() can
# run), and where a checked access's pointer is reloaded from the same
# unclobbered slot every iteration, the per-iteration temporal check is
# the same check repeated: hoist one copy into a fresh preheader and
# mark the in-loop accesses ``temporal_dom`` so the eliminator drops
# their temporal half. Soundness argument in docs/analysis.md.

def hoist_loop_checks(module: Module, per_function: Dict) -> int:
    """Hoist loop-invariant temporal checks; returns checks hoisted.

    ``per_function`` is the interprocedural driver's output
    (:class:`repro.analyze.interproc.FunctionAnalysis` per name): the
    fixpoint edge states prove the trip count and the analysis
    instance re-runs block transfers for the proof.
    """
    hoisted = 0
    for fa in per_function.values():
        hoisted += _hoist_function(fa)
    return hoisted


def _hoist_function(fa) -> int:
    fn, result, ms = fa.fn, fa.result, fa.analysis
    cfg = result.cfg
    back = cfg.back_edges()
    if not back:
        return 0
    loops: Dict[str, List[str]] = {}
    for tail, head in back:
        loops.setdefault(head, []).append(tail)
    # Plan against the (immutable) fixpoint CFG first, mutate after.
    plans = []
    for head in sorted(loops):
        plan = _plan_loop(fn, cfg, result, ms, head, loops[head])
        if plan is not None:
            plans.append(plan)
    count = 0
    for n, (head, entry_preds, slots, candidates) in enumerate(plans):
        _apply_hoist(fn, cfg, f"hoist.{n}", head, entry_preds, slots)
        for facts in candidates:
            facts.temporal_dom = True
        count += len(slots)
    return count


def _plan_loop(fn, cfg, result, ms, head: str, tails: List[str]):
    if head == cfg.entry or head not in cfg.reachable:
        return None
    body = _natural_loop(cfg, head, tails)
    # Reducibility guard: a side entry into the body would make the
    # "preds of body are in the body" expansion above pull in blocks
    # outside the loop; require the head to dominate every body block.
    if any(not cfg.dominates(head, label) for label in body):
        return None
    # Canonical shape: the head ends in a two-way branch with exactly
    # one successor inside the loop, and every other block stays
    # inside — a single exit edge, through the head.
    term = cfg.blocks[head].instrs[-1]
    if not isinstance(term, Br) or term.then_label == term.else_label:
        return None
    exits = [s for s in cfg.succs[head] if s not in body]
    if len(exits) != 1:
        return None
    exit_succ = exits[0]
    for label in body:
        for succ in cfg.succs.get(label, ()):
            if succ not in body and not (label == head
                                         and succ == exit_succ):
                return None
    clobbered, param_store, unknown_store = _body_effects(fn, body, cfg)
    if unknown_store:
        return None
    candidates, slots = _loop_candidates(body, cfg, tails, clobbered,
                                         param_store)
    if not candidates:
        return None
    entry_preds = [p for p in cfg.preds.get(head, ())
                   if p not in body]
    if not entry_preds:
        return None
    if not _trip_at_least_once(cfg, result, ms, head, exit_succ,
                               entry_preds):
        return None
    return head, entry_preds, sorted(slots), candidates


def _natural_loop(cfg, head: str, tails: List[str]):
    body = {head}
    stack = [t for t in tails if t != head]
    while stack:
        label = stack.pop()
        if label in body:
            continue
        body.add(label)
        stack.extend(cfg.preds.get(label, ()))
    return body


def _body_effects(fn, body, cfg):
    """(clobbered slot keys, any param-region store?, any store whose
    target the analysis could not pin down?) over the loop body.

    Calls to anything non-pure disqualify outright (reported as an
    unknown store): free()/realloc could kill the checked region, and
    writing helpers could overwrite the pointer slot."""
    from repro.analyze.summaries import PURE_FNS

    clobbered = set()
    param_store = False
    for label in sorted(body):
        addr_slot: Dict[int, str] = {}
        for ins in cfg.blocks[label].instrs:
            if isinstance(ins, AddrLocal):
                addr_slot[ins.dst] = "l:" + ins.name
                continue
            if isinstance(ins, AddrGlobal):
                addr_slot[ins.dst] = "g:" + ins.name
                continue
            if isinstance(ins, Call):
                if ins.name not in PURE_FNS:
                    return clobbered, param_store, True
                continue
            if not isinstance(ins, Store):
                continue
            facts = getattr(ins, "_ms_facts", None)
            region = facts.target_region() if facts is not None \
                else None
            if region is None:
                # Unchecked stores (scalar locals, irgen temps) carry
                # no facts; resolve the block-local address vreg.
                slot = addr_slot.get(ins.addr)
                if slot is None:
                    prov = fn.prov.get(ins.addr)
                    if prov and prov[0] in ("local", "global"):
                        slot = prov[0][0] + ":" + str(prov[1])
                if slot is not None:
                    clobbered.add(slot)
                    continue
                return clobbered, param_store, True
            kind = region[0]
            if kind in ("local", "global"):
                clobbered.add(kind[0] + ":" + str(region[1]))
            elif kind == "heap" and _param_site(region[1]):
                # The analysis models a store through a parameter
                # region as clobbering any global (the caller may
                # alias one) but never this frame's locals.
                param_store = True
    return clobbered, param_store, False


def _param_site(site) -> bool:
    return isinstance(site, tuple) and len(site) == 2 \
        and site[0] == "param"


def _loop_candidates(body, cfg, tails, clobbered, param_store):
    """Checked accesses whose temporal half repeats an identical check
    every iteration: pointer reloaded from one unclobbered slot, in a
    block every iteration passes through (dominates the back edges) —
    a conditionally-executed access may never run at all, and hoisting
    its check could trap where the original program does not."""
    candidates = []
    slots = set()
    for label in sorted(body):
        if any(not cfg.dominates(label, tail) for tail in tails):
            continue
        for ins in cfg.blocks[label].instrs:
            if not isinstance(ins, (Load, Store)) \
                    or not ins.needs_check:
                continue
            facts = getattr(ins, "_ms_facts", None)
            if facts is None or facts.temporal_ok \
                    or facts.temporal_dom:
                continue
            slot = facts.origin_slot()
            if not isinstance(slot, str) or slot[:2] not in \
                    ("l:", "g:") or slot in clobbered:
                continue
            if param_store and slot.startswith("g:"):
                continue
            candidates.append(facts)
            slots.add(slot)
    return candidates, slots


def _trip_at_least_once(cfg, result, ms, head, exit_succ,
                        entry_preds) -> bool:
    """The loop body runs on every feasible path that reaches the
    head from outside: re-running the head's transfer from each entry
    edge's fixpoint state must prove the exit edge infeasible."""
    from repro.analyze.dataflow import EdgeStates

    feasible_entry = False
    for pred in entry_preds:
        state = result.edge_out.get((pred, head))
        if state is None:
            continue  # entry edge itself infeasible
        feasible_entry = True
        out = ms.transfer(cfg, head, ms.copy(state))
        exit_state = out.by_succ.get(exit_succ) \
            if isinstance(out, EdgeStates) else out
        if exit_state is not None:
            return False
    return feasible_entry


def _apply_hoist(fn, cfg, label: str, head: str, entry_preds, slots):
    """Insert the preheader block and retarget the entry edges."""
    instrs: List = []
    for slot in slots:
        addr = fn.new_vreg(PointerType(VOID))
        if slot.startswith("l:"):
            instrs.append(AddrLocal(addr, slot[2:]))
        else:
            instrs.append(AddrGlobal(addr, slot[2:]))
        dst = fn.new_vreg(PointerType(VOID))
        load = Load(dst, addr, 8, signed=False, ptr_result=True)
        load._hoist_temporal = True
        instrs.append(load)
        fn.prov[dst] = ("loaded", None)
    instrs.append(Jmp(head))
    index = next(i for i, blk in enumerate(fn.blocks)
                 if blk.label == head)
    fn.blocks.insert(index, BasicBlock(label, instrs))
    for pred in entry_preds:
        term = cfg.blocks[pred].instrs[-1]
        if isinstance(term, Jmp):
            if term.label == head:
                term.label = label
        elif isinstance(term, Br):
            if term.then_label == head:
                term.then_label = label
            if term.else_label == head:
                term.else_label = label
