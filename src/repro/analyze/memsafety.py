"""Interval/provenance dataflow for memory safety over the IR.

One :class:`MemSafety` instance analyzes one function. The state maps
stack slots (and module globals) to abstract values (:class:`AVal`),
tracks one :class:`HeapRegion` per allocation site, and carries the
set of slots whose pointer value has already passed a temporal check
on every path (``checked`` — the dominance fact behind temporal-check
elision). Virtual registers never cross blocks in this IR, so the
vreg environment is rebuilt inside each block transfer.

Soundness posture (documented in docs/analysis.md):

* ``spatial_ok`` on an access means: on every path, the address lies
  inside a known-size region at a non-negative offset, the access end
  stays at or below the region's *minimum* possible size, and the
  pointer is definitely non-null. Only then may an elision client
  drop the spatial check.
* ``temporal_ok`` means the region is a local/global (live for the
  whole function) or a heap site that is definitely not freed yet on
  every path. ``temporal_dom`` means a kept temporal check on the
  same slot's unchanged pointer value dominates this access.
* Error findings are emitted only for *must* or *reachable-must*
  facts (an interval that provably exceeds the region on some
  iteration, a definitely-null or definitely-freed pointer), so every
  error finding corresponds to a dynamically trapping execution.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, FrozenSet, Optional, Set, Tuple

from repro.analyze.cfg import CFG
from repro.analyze.dataflow import (EdgeStates, ForwardAnalysis,
                                    run_forward)
from repro.analyze.domain import (FREED, INF, LIVE, MAYBE_FREED, AVal,
                                  HeapRegion, Interval)
from repro.analyze.summaries import (KNOWN_RUNTIME, PURE_FNS,
                                     WRITE_THROUGH_ARG0, FnContext,
                                     FunctionSummary, ParamCtx)
from repro.core.config import HwstConfig
from repro.ir.instrument import ALLOC_FNS, WRAPPED_RANGE_FNS
from repro.ir.ir import (AddrGlobal, AddrLocal, BinOp, Br, Call, Conv,
                         Function, GetParam, IConst, Jmp, Load, Module,
                         Ret, Store, UnOp)

__all__ = ["MemSafety", "analyze_function", "compute_may_free",
           "AccessFacts", "PURE_FNS", "WRITE_THROUGH_ARG0",
           "KNOWN_RUNTIME"]

CMP_OPS = frozenset({"eq", "ne", "slt", "sle", "sgt", "sge",
                     "ult", "ule", "ugt", "uge"})
CMP_NEG = {"eq": "ne", "ne": "eq", "slt": "sge", "sge": "slt",
           "sle": "sgt", "sgt": "sle", "ult": "uge", "uge": "ult",
           "ule": "ugt", "ugt": "ule"}
CMP_SWAP = {"eq": "eq", "ne": "ne", "slt": "sgt", "sgt": "slt",
            "sle": "sge", "sge": "sle", "ult": "ugt", "ugt": "ult",
            "ule": "uge", "uge": "ule"}

# PURE_FNS / WRITE_THROUGH_ARG0 / KNOWN_RUNTIME now live in
# repro.analyze.summaries (re-exported above for compatibility).


def compute_may_free(module: Module) -> Set[str]:
    """Function names that may (transitively) release a heap region or
    call code we cannot see. Calls to these invalidate every heap
    status and the whole temporal-dominance set."""
    callees: Dict[str, Set[str]] = {}
    for name, fn in module.functions.items():
        calls: Set[str] = set()
        for blk in fn.blocks:
            for ins in blk.instrs:
                if isinstance(ins, Call):
                    calls.add(ins.name)
        callees[name] = calls
    may_free: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, calls in callees.items():
            if name in may_free:
                continue
            for callee in calls:
                if callee == "free" or callee in may_free or \
                        (callee not in callees and
                         callee not in KNOWN_RUNTIME):
                    may_free.add(name)
                    changed = True
                    break
    return may_free


class AccessFacts:
    """Per-access conclusions, stamped on the Load/Store instruction."""

    __slots__ = ("spatial_ok", "temporal_ok", "temporal_dom",
                 "cross_call", "origin", "target")

    _UNSET = "\0unset"

    def __init__(self):
        self.spatial_ok = True   # AND-accumulated over report visits
        self.temporal_ok = True
        self.temporal_dom = True
        # OR-accumulated: some proof leaned on a call-site context
        # (param region) — used to attribute cross-call elisions.
        self.cross_call = False
        # Slot the pointer was loaded from, when consistent across
        # every visit (None otherwise) — the loop-hoist transform key.
        self.origin = AccessFacts._UNSET
        # For stores: the region written through, when consistent
        # (None otherwise) — the loop-hoist clobber check.
        self.target = AccessFacts._UNSET

    def origin_slot(self):
        return None if self.origin is AccessFacts._UNSET \
            else self.origin

    def note_origin(self, origin):
        if self.origin is AccessFacts._UNSET:
            self.origin = origin
        elif self.origin != origin:
            self.origin = None

    def target_region(self):
        return None if self.target is AccessFacts._UNSET \
            else self.target

    def note_target(self, region):
        if self.target is AccessFacts._UNSET:
            self.target = region
        elif self.target != region:
            self.target = None

    def __repr__(self):
        return (f"AccessFacts(sp={self.spatial_ok}, "
                f"tp={self.temporal_ok}, dom={self.temporal_dom})")


class MState:
    """Slots + heap regions + temporally-checked slot set."""

    __slots__ = ("slots", "heap", "checked")

    def __init__(self, slots: Dict[str, AVal],
                 heap: Dict[tuple, HeapRegion],
                 checked: FrozenSet[str]):
        self.slots = slots
        self.heap = heap
        self.checked = checked

    def copy(self) -> "MState":
        return MState(dict(self.slots), dict(self.heap), self.checked)

    def __eq__(self, other):
        return (isinstance(other, MState)
                and self.slots == other.slots
                and self.heap == other.heap
                and self.checked == other.checked)

    def __repr__(self):
        return (f"MState(slots={self.slots}, heap={self.heap}, "
                f"checked={sorted(self.checked)})")


def _is_param_site(site) -> bool:
    """True for the abstract caller-provided region behind a pointer
    parameter (``("param", name)``; own allocation sites are
    ``(fn, label, idx)`` triples)."""
    return isinstance(site, tuple) and len(site) == 2 and \
        site[0] == "param"


def _strip(av: AVal) -> AVal:
    return replace(av, origin=None, pred=None)


def _same_value(a: AVal, b: AVal) -> bool:
    return _strip(a) == _strip(b)


# Recorder: (ins, kind, severity, message)
Recorder = Callable[[object, str, str, str], None]


class MemSafety(ForwardAnalysis):
    """The memory-safety dataflow client for one function."""

    def __init__(self, module: Module, fn: Function,
                 config: Optional[HwstConfig] = None,
                 may_free: Optional[Set[str]] = None,
                 summaries: Optional[Dict[str,
                                          FunctionSummary]] = None,
                 context: Optional[FnContext] = None):
        self.module = module
        self.fn = fn
        self.config = config or HwstConfig()
        self.summaries = summaries
        self.context = context
        # Parameter regions (and with them the interprocedural
        # machinery) switch on only when summaries are supplied; the
        # plain constructor keeps the strictly intraprocedural PR-2
        # behaviour.
        self.param_regions = summaries is not None
        self.may_free = may_free if may_free is not None \
            else (set() if summaries is not None
                  else compute_may_free(module))
        # Call-site context contributions, collected during the report
        # pass: (callee name, ((param, ParamCtx), ...)).
        self.callsites: list = []
        self.callsites_refined = 0
        self._record: Optional[Recorder] = None
        self._stamp = False

    def _param_site(self, name: str):
        return ("heap", ("param", name))

    def _ptr_params(self):
        from repro.minic.types import PointerType

        out = []
        for p in self.fn.param_names:
            slot = self.fn.locals.get(p)
            if slot is not None and \
                    isinstance(slot.ctype, PointerType):
                out.append(p)
        return out

    # -- lattice -----------------------------------------------------------

    def initial_state(self, cfg: CFG) -> MState:
        slots: Dict[str, AVal] = {}
        for name in self.fn.locals:
            slots["l:" + name] = AVal.uninit()
        for name, data in self.module.globals.items():
            slots["g:" + name] = self._global_initial(data)
        heap: Dict[tuple, HeapRegion] = {}
        if self.param_regions:
            # Each pointer parameter gets an abstract caller-provided
            # region. Size/liveness come from the call-site context
            # (the checked-on-entry lattice); without a context the
            # region has unknown size and maybe-freed status, which
            # still enables must-facts (UAF after the function's own
            # free, double-free) inside the callee.
            for pname in self._ptr_params():
                ctx = self.context.get(pname) if self.context \
                    else None
                avail = ctx.avail if ctx is not None else 0
                live = ctx.live if ctx is not None else False
                heap[self._param_site(pname)[1]] = HeapRegion(
                    Interval(max(avail, 0), INF),
                    LIVE if live else MAYBE_FREED)
        return MState(slots, heap, frozenset())

    def _global_initial(self, data) -> AVal:
        from repro.minic.types import PointerType

        if data.is_string or data.size > 8:
            return AVal.top()
        raw = bytes(data.data[:data.size]).ljust(max(data.size, 1),
                                                 b"\0")
        value = int.from_bytes(raw, "little", signed=True)
        if isinstance(data.ctype, PointerType):
            return AVal.null() if value == 0 else AVal.top()
        return AVal.int_const(value)

    def copy(self, state: MState) -> MState:
        return state.copy()

    def join(self, a: MState, b: MState) -> MState:
        slots = {}
        for key in a.slots.keys() | b.slots.keys():
            va, vb = a.slots.get(key), b.slots.get(key)
            slots[key] = va.join(vb) if va is not None and \
                vb is not None else AVal.top()
        heap = dict(a.heap)
        for site, region in b.heap.items():
            cur = heap.get(site)
            heap[site] = region if cur is None else cur.join(region)
        return MState(slots, heap, a.checked & b.checked)

    def widen(self, old: MState, new: MState) -> MState:
        slots = {}
        for key in old.slots.keys() | new.slots.keys():
            va, vb = old.slots.get(key), new.slots.get(key)
            slots[key] = va.widen(vb) if va is not None and \
                vb is not None else AVal.top()
        heap = dict(old.heap)
        for site, region in new.heap.items():
            cur = heap.get(site)
            if cur is None:
                heap[site] = region
            else:
                status = cur.status if cur.status == region.status \
                    else MAYBE_FREED
                heap[site] = HeapRegion(cur.size.widen(region.size),
                                        status)
        return MState(slots, heap, old.checked & new.checked)

    # -- transfer ----------------------------------------------------------

    def transfer(self, cfg: CFG, label: str, state: MState):
        return self._walk(cfg.blocks[label], state)

    def report(self, result, recorder: Recorder, stamp: bool = True):
        """Re-walk every feasibly-reachable block from its fixpoint
        in-state, recording findings and stamping AccessFacts."""
        self._record = recorder
        self._stamp = stamp
        try:
            for label, in_state in result.block_in.items():
                self._walk(result.cfg.blocks[label], in_state.copy())
        finally:
            self._record = None
            self._stamp = False

    # -- region plumbing ---------------------------------------------------

    def _slot_key(self, region) -> Optional[str]:
        if region is None:
            return None
        kind, name = region
        if kind == "local":
            return "l:" + str(name)
        if kind == "global":
            return "g:" + str(name)
        return None

    def _region_size(self, state: MState, region) -> Optional[Interval]:
        kind, name = region
        if kind == "local":
            slot = self.fn.locals.get(name)
            return Interval.const(slot.size) if slot else None
        if kind == "global":
            data = self.module.globals.get(name)
            return Interval.const(data.size) if data else None
        if kind == "heap":
            heap = state.heap.get(region[1])
            return heap.size if heap is not None else None
        return None

    def _scalar_slot(self, region, size: int) -> Optional[str]:
        """Slot key if the access reads/writes exactly one tracked
        slot (whole-slot, offset 0)."""
        key = self._slot_key(region)
        if key is None:
            return None
        kind, name = region
        obj_size = (self.fn.locals[name].size if kind == "local"
                    else self.module.globals[name].size)
        return key if obj_size == size else None

    # -- the block walk ----------------------------------------------------

    def _walk(self, blk, state: MState):
        env: Dict[int, AVal] = {}

        def aval(v: Optional[int]) -> AVal:
            if v is None:
                return AVal.top()
            return env.get(v, AVal.top())

        out = state
        for idx, ins in enumerate(blk.instrs):
            if isinstance(ins, IConst):
                if self.fn.prov.get(ins.dst) == ("null", None):
                    env[ins.dst] = AVal.null()
                else:
                    env[ins.dst] = AVal.int_const(ins.value)
            elif isinstance(ins, AddrLocal):
                env[ins.dst] = AVal.ptr(("local", ins.name),
                                        Interval.const(0))
            elif isinstance(ins, AddrGlobal):
                env[ins.dst] = AVal.ptr(("global", ins.name),
                                        Interval.const(0))
            elif isinstance(ins, GetParam):
                prov = self.fn.prov.get(ins.dst)
                pname = self.fn.param_names[ins.index] \
                    if ins.index < len(self.fn.param_names) else None
                if prov and self.param_regions and pname:
                    ctx = self.context.get(pname) if self.context \
                        else None
                    nullness = ctx.nullness if ctx is not None \
                        else "maybe"
                    env[ins.dst] = AVal.ptr(
                        self._param_site(pname), Interval.const(0),
                        nullness=nullness)
                elif prov:
                    env[ins.dst] = AVal.unknown_ptr()
                else:
                    ctx = self.context.get(pname) \
                        if self.context and pname else None
                    if ctx is not None and not ctx.rng.is_top:
                        env[ins.dst] = AVal.int_range(ctx.rng)
                    else:
                        env[ins.dst] = AVal.top()
            elif isinstance(ins, Conv):
                env[ins.dst] = self._conv(aval(ins.a), ins.width,
                                          ins.signed)
            elif isinstance(ins, UnOp):
                env[ins.dst] = self._unop(ins.op, aval(ins.a))
            elif isinstance(ins, BinOp):
                env[ins.dst] = self._binop(ins.op, aval(ins.a),
                                           aval(ins.b), ins.width,
                                           ins.signed)
            elif isinstance(ins, Load):
                env[ins.dst] = self._load(ins, aval(ins.addr), out)
            elif isinstance(ins, Store):
                out = self._store(ins, aval(ins.addr),
                                  aval(ins.src), out)
            elif isinstance(ins, Call):
                out = self._call(ins, blk.label, idx, env, out)
            elif isinstance(ins, Ret):
                if ins.ptr_value and ins.value is not None:
                    rv = aval(ins.value)
                    if rv.is_ptr and rv.region is not None and \
                            rv.region[0] == "local":
                        self._emit(ins, "scope-escape", "warning",
                                   f"returning pointer to local "
                                   f"object '{rv.region[1]}'")
                return out
            elif isinstance(ins, Br):
                return self._branch(ins, aval(ins.cond), out)
            elif isinstance(ins, Jmp):
                return out
            else:
                # Instrumentation / hardware ops: defs go to Top.
                for d in ins.defs():
                    env[d] = AVal.top()
            dst = getattr(ins, "dst", None)
            if dst is not None and dst in self.fn.subobj:
                # Member lowering marked this vreg as the start of a
                # struct-field window: anchor the sub-object bounds.
                val = env.get(dst)
                if val is not None and val.is_ptr and \
                        val.nullness != "null":
                    env[dst] = replace(
                        val, sub=(Interval.const(0),
                                  self.fn.subobj[dst]))
        return out

    # -- expression transfer -----------------------------------------------

    def _conv(self, av: AVal, width: int, signed: bool) -> AVal:
        if av.is_ptr and width >= 8:
            return av
        if av.is_int:
            return AVal.int_range(av.rng.clamp_width(8 * width,
                                                     signed))
        return AVal.top()

    def _unop(self, op: str, a: AVal) -> AVal:
        if op == "neg" and a.is_int:
            return AVal.int_range(a.rng.neg())
        if op == "lognot":
            if a.pred is not None:
                pop, pl, pr = a.pred
                flipped = (CMP_NEG[pop], pl, pr)
                rng = _flip_bool(a.rng)
                return AVal(kind="int", rng=rng, pred=flipped)
            if a.is_ptr:
                pred = ("eq", a, AVal.int_const(0))
                if a.nullness == "null":
                    return AVal(kind="int", rng=Interval.const(1),
                                pred=pred)
                if a.nullness == "nonnull":
                    return AVal(kind="int", rng=Interval.const(0),
                                pred=pred)
                return AVal(kind="int", rng=Interval(0, 1), pred=pred)
            if a.is_int:
                pred = ("eq", a, AVal.int_const(0))
                if a.rng.is_const:
                    return AVal(kind="int", rng=Interval.const(
                        0 if a.rng.lo != 0 else 1), pred=pred)
                if not a.rng.contains(0):
                    return AVal(kind="int", rng=Interval.const(0),
                                pred=pred)
                return AVal(kind="int", rng=Interval(0, 1), pred=pred)
        return AVal.top()

    def _binop(self, op: str, a: AVal, b: AVal, width: int,
               signed: bool) -> AVal:
        if op in CMP_OPS:
            return self._compare(op, a, b)
        if op == "add":
            if a.is_ptr and b.is_int:
                return a.shift(b.rng)
            if b.is_ptr and a.is_int:
                return b.shift(a.rng)
            if a.is_int and b.is_int:
                return self._int(a.rng.add(b.rng), width, signed)
        elif op == "sub":
            if a.is_ptr and b.is_int:
                return a.shift(b.rng.neg())
            if a.is_ptr and b.is_ptr:
                if a.region is not None and a.region == b.region:
                    return AVal.int_range(a.offset.sub(b.offset))
                return AVal(kind="int")
            if a.is_int and b.is_int:
                return self._int(a.rng.sub(b.rng), width, signed)
        elif op == "mul":
            if a.is_int and b.is_int:
                return self._int(a.rng.mul(b.rng), width, signed)
        elif op == "shl":
            if a.is_int and b.is_int:
                return self._int(a.rng.shl(b.rng), width, signed)
        elif op == "and":
            if a.is_int and b.is_int:
                return self._int(a.rng.and_mask(b.rng), width, signed)
        elif op in ("sdiv", "udiv"):
            if a.is_int and b.is_int and b.rng.is_const and \
                    b.rng.lo > 0:
                return self._int(_div_const(a.rng, int(b.rng.lo)),
                                 width, signed)
            return AVal(kind="int")
        elif op in ("srem", "urem"):
            if a.is_int and b.is_int and b.rng.is_const and \
                    b.rng.lo > 0 and a.rng.lo >= 0:
                d = int(b.rng.lo)
                hi = min(a.rng.hi, d - 1)
                return AVal.int_range(Interval(0, hi))
            return AVal(kind="int")
        elif op in ("or", "xor", "lshr", "ashr"):
            return AVal(kind="int")
        return AVal.top()

    def _int(self, rng: Interval, width: int, signed: bool) -> AVal:
        if width:
            rng = rng.clamp_width(8 * width, signed)
        return AVal.int_range(rng)

    def _compare(self, op: str, a: AVal, b: AVal) -> AVal:
        pred = (op, a, b)
        verdict: Optional[bool] = None
        if a.is_int and b.is_int:
            verdict = a.rng.definitely(op, b.rng)
        elif a.is_ptr and b.is_ptr:
            if _is_nullish(b) and op in ("eq", "ne"):
                verdict = self._null_verdict(op, a)
            elif _is_nullish(a) and op in ("eq", "ne"):
                verdict = self._null_verdict(op, b)
            elif a.region is not None and a.region == b.region and \
                    a.nullness == "nonnull" and \
                    b.nullness == "nonnull":
                verdict = a.offset.definitely(op, b.offset)
        elif a.is_ptr and b.is_int and b.rng == Interval.const(0) \
                and op in ("eq", "ne"):
            verdict = self._null_verdict(op, a)
        elif b.is_ptr and a.is_int and a.rng == Interval.const(0) \
                and op in ("eq", "ne"):
            verdict = self._null_verdict(op, b)
        if verdict is None:
            return AVal(kind="int", rng=Interval(0, 1), pred=pred)
        return AVal(kind="int",
                    rng=Interval.const(1 if verdict else 0),
                    pred=pred)

    @staticmethod
    def _null_verdict(op: str, p: AVal) -> Optional[bool]:
        if p.nullness == "null":
            return op == "eq"
        if p.nullness == "nonnull":
            return op == "ne"
        return None

    # -- memory transfer ---------------------------------------------------

    def _load(self, ins: Load, addr: AVal, state: MState) -> AVal:
        if ins.needs_check:
            self._classify(ins, addr, Interval.const(ins.size),
                           state, is_store=False)
        value: Optional[AVal] = None
        if addr.is_ptr and addr.offset == Interval.const(0):
            key = self._scalar_slot(addr.region, ins.size) \
                if addr.region is not None else None
            if key is not None and key in state.slots:
                value = replace(state.slots[key], origin=key)
        if value is None:
            value = AVal.unknown_ptr() if ins.ptr_result \
                else AVal.top()
        elif ins.ptr_result and not value.is_ptr and \
                value.kind != "uninit":
            if value.is_int and value.rng == Interval.const(0):
                # `long *p = 0;` stores a plain integer zero; reading
                # it back as a pointer is a definite NULL.
                value = replace(AVal.null(), origin=value.origin)
            else:
                value = replace(AVal.unknown_ptr(),
                                origin=value.origin)
        return value

    def _store(self, ins: Store, addr: AVal, src: AVal,
               state: MState) -> MState:
        if ins.needs_check:
            self._classify(ins, addr, Interval.const(ins.size),
                           state, is_store=True)
        if addr.is_ptr and addr.region is not None:
            key = self._slot_key(addr.region)
            if key is not None:
                new = state.copy()
                exact = self._scalar_slot(addr.region, ins.size)
                if exact is not None and \
                        addr.offset == Interval.const(0):
                    new.slots[exact] = replace(src, origin=None)
                else:
                    new.slots[key] = AVal.top()
                new.checked = new.checked - {key}
                return new
            if addr.region[0] == "heap" and \
                    _is_param_site(addr.region[1]):
                # Caller memory may alias any module global (but not
                # this frame's locals: they did not exist when the
                # caller formed the argument pointer).
                return self._havoc_globals(state)
            return state  # heap store: element values untracked
        # Store through an unknown pointer: it may legally target any
        # address-taken object or global (the access's own check stays,
        # so it cannot stray outside *some* valid object).
        return self._havoc_objects(state)

    def _havoc_objects(self, state: MState) -> MState:
        new = state.copy()
        dropped = set()
        for key in new.slots:
            if key.startswith("g:"):
                new.slots[key] = AVal.top()
                dropped.add(key)
            else:
                slot = self.fn.locals.get(key[2:])
                if slot is not None and slot.is_object:
                    new.slots[key] = AVal.top()
                    dropped.add(key)
        new.checked = new.checked - dropped
        return new

    def _havoc_globals(self, state: MState) -> MState:
        new = state.copy()
        dropped = set()
        for key in new.slots:
            if key.startswith("g:"):
                new.slots[key] = AVal.top()
                dropped.add(key)
        new.checked = new.checked - dropped
        return new

    def _degrade_param_siblings(self, new: MState, site):
        """A param region was freed: any other param region may alias
        it (two caller arguments can point into one object), so their
        liveness and every param-aimed dominance fact degrade."""
        for osite, oreg in list(new.heap.items()):
            if osite != site and _is_param_site(osite) and \
                    oreg.status == LIVE:
                new.heap[osite] = HeapRegion(oreg.size, MAYBE_FREED)
        new.checked = frozenset(
            s for s in new.checked
            if not self._aims_param(new, s))

    def _aims_param(self, state: MState, skey: str) -> bool:
        av = state.slots.get(skey)
        return (av is not None and av.is_ptr
                and av.region is not None
                and av.region[0] == "heap"
                and _is_param_site(av.region[1]))

    # -- calls -------------------------------------------------------------

    def _call(self, ins: Call, label: str, idx: int,
              env: Dict[int, AVal], state: MState) -> MState:
        name = ins.name

        def aval(v):
            return env.get(v, AVal.top()) if v is not None \
                else AVal.top()

        if name in ALLOC_FNS:
            return self._alloc(ins, label, idx, env, state)
        if name == "free":
            return self._free(ins, aval(ins.args[0]), state)

        if self.summaries is not None and \
                name in self.module.functions:
            summary = self.summaries.get(name)
            if summary is not None:
                return self._apply_summary(ins, summary, label, idx,
                                           env, state)

        ranges = WRAPPED_RANGE_FNS.get(name)
        if ranges:
            for ptr_index, len_index in ranges:
                self._classify(ins, aval(ins.args[ptr_index]),
                               aval(ins.args[len_index]).rng
                               if aval(ins.args[len_index]).is_int
                               else Interval.top(),
                               state, is_store=(ptr_index == 0),
                               wrapper=name)

        if ins.dst is not None:
            env[ins.dst] = AVal.unknown_ptr() if ins.ptr_result \
                else AVal.top()

        if name in PURE_FNS:
            return state
        if name in WRITE_THROUGH_ARG0:
            dst = aval(ins.args[0]) if ins.args else AVal.top()
            if dst.is_ptr and dst.region is not None:
                key = self._slot_key(dst.region)
                if key is not None:
                    new = state.copy()
                    new.slots[key] = AVal.top()
                    new.checked = new.checked - {key}
                    return new
                return state
            return self._havoc_objects(state)

        # User-defined or unknown function.
        new = self._havoc_objects(state)
        if name in self.may_free or name not in \
                self.module.functions:
            heap = {site: HeapRegion(r.size,
                                     FREED if r.status == FREED
                                     else MAYBE_FREED)
                    for site, r in new.heap.items()}
            new = MState(new.slots, heap, frozenset())
        return new

    # -- summary application -----------------------------------------------

    def _apply_summary(self, ins: Call, s: FunctionSummary,
                       label: str, idx: int, env: Dict[int, AVal],
                       state: MState) -> MState:
        """Transfer for a call to a summarized in-module function:
        targeted effects instead of the wholesale havoc, plus (during
        the report pass) call-site findings and context collection."""
        bind: Dict[str, AVal] = {}
        binding: Dict[str, Interval] = {}
        for i, v in enumerate(ins.args):
            av = env.get(v, AVal.top()) if v is not None \
                else AVal.top()
            key = s.params[i] if i < len(s.params) else f"${i}"
            bind[key] = av
            if av.is_int:
                binding[key] = av.rng

        if self._record is not None:
            self._callsite_findings(ins, s, bind, binding, state)
            if not (s.havocs and s.frees_unknown):
                self.callsites_refined += 1
            self._collect_context(s, bind, state)

        new = state.copy()
        new = self._summary_frees(s, bind, new)
        new = self._summary_writes(s, bind, new)
        if ins.dst is not None:
            env[ins.dst] = self._summary_ret(s, bind, binding, label,
                                             idx, ins.ptr_result, new)
        return new

    def _summary_frees(self, s: FunctionSummary,
                       bind: Dict[str, AVal],
                       new: MState) -> MState:
        if s.frees_unknown:
            heap = {site: HeapRegion(r.size,
                                     FREED if r.status == FREED
                                     else MAYBE_FREED)
                    for site, r in new.heap.items()}
            return MState(new.slots, heap, frozenset())
        for p in sorted(s.frees_may):
            av = bind.get(p)
            if av is None or not av.is_ptr or \
                    av.nullness == "null":
                continue
            if av.region is None:
                # Callee frees a pointer we cannot place: anything
                # might have been released.
                heap = {site: HeapRegion(r.size,
                                         FREED if r.status == FREED
                                         else MAYBE_FREED)
                        for site, r in new.heap.items()}
                return MState(new.slots, heap, frozenset())
            if av.region[0] != "heap":
                continue  # invalid-free: reported, state unchanged
            site = av.region[1]
            region = new.heap.get(site)
            size = region.size if region is not None \
                else Interval.top()
            if p in s.frees_must or \
                    (region is not None and region.status == FREED):
                status = FREED
            else:
                status = MAYBE_FREED
            new.heap[site] = HeapRegion(size, status)
            new.checked = frozenset(
                k for k in new.checked
                if not (new.slots.get(k) is not None
                        and new.slots[k].is_ptr
                        and new.slots[k].region == av.region))
            if _is_param_site(site):
                self._degrade_param_siblings(new, site)
        return new

    def _summary_writes(self, s: FunctionSummary,
                        bind: Dict[str, AVal],
                        new: MState) -> MState:
        if s.havocs:
            return self._havoc_objects(new)
        if s.writes_globals:
            new = self._havoc_globals(new)
        for p in sorted(s.writes):
            av = bind.get(p)
            if av is None or not av.is_ptr:
                continue
            if av.region is None:
                return self._havoc_objects(new)
            key = self._slot_key(av.region)
            if key is not None:
                new.slots[key] = AVal.top()
                new.checked = new.checked - {key}
            elif av.region[0] == "heap" and \
                    _is_param_site(av.region[1]):
                # Write through caller memory: may alias globals.
                new = self._havoc_globals(new)
        return new

    def _summary_ret(self, s: FunctionSummary, bind: Dict[str, AVal],
                     binding: Dict[str, Interval], label: str,
                     idx: int, ptr_result: bool,
                     new: MState) -> AVal:
        ret = s.ret
        if ret.kind == "int":
            rng = ret.itv.eval(binding)
            return AVal.top() if rng.is_top else AVal.int_range(rng)
        if ret.kind == "null":
            return AVal.null()
        if ret.kind == "param":
            av = bind.get(ret.param)
            if av is not None and av.is_ptr:
                out = replace(av.shift(ret.off.eval(binding)),
                              origin=None)
                if ret.nullable and out.nullness == "nonnull":
                    out = replace(out, nullness="maybe")
                return out
        if ret.kind == "fresh":
            site = (f"ret:{s.name}", label, idx)
            size = ret.itv.eval(binding)
            old = new.heap.get(site)
            live = ret.fresh_live and not s.frees_unknown
            status = LIVE if live and (old is None or
                                       old.status == LIVE) \
                else MAYBE_FREED
            new.heap[site] = HeapRegion(
                Interval(max(size.lo, 0), size.hi), status)
            return AVal.ptr(("heap", site), Interval.const(0),
                            nullness="maybe")
        if ret.kind == "global":
            if ret.param in self.module.globals:
                return AVal.ptr(("global", ret.param),
                                ret.off.eval(binding),
                                nullness="maybe" if ret.nullable
                                else "nonnull")
        return AVal.unknown_ptr() if ptr_result else AVal.top()

    def _callsite_findings(self, ins: Call, s: FunctionSummary,
                           bind: Dict[str, AVal],
                           binding: Dict[str, Interval],
                           state: MState):
        """Caller-side findings from the callee's summary. Errors are
        claimed only from *definite* callee behaviour over finite
        caller facts, so every one still maps to a trapping run."""
        for p, rec in s.derefs:
            av = bind.get(p)
            if av is None or not av.is_ptr or not rec.definite:
                continue
            if av.nullness == "null":
                self._emit(ins, "null-deref", "error",
                           f"passing NULL as '{p}' to {s.name}(), "
                           f"which dereferences it")
                continue
            if av.region is None:
                continue
            if av.region[0] == "heap":
                hr = state.heap.get(av.region[1])
                if hr is not None and hr.status == FREED:
                    self._emit(ins, "uaf", "error",
                               f"passing freed pointer as '{p}' to "
                               f"{s.name}(), which dereferences it")
                    continue
                if _is_param_site(av.region[1]):
                    # Forwarding our own parameter: its backward
                    # extent is unknown and its forward extent is a
                    # lower bound, so no bounds claim here.
                    continue
            size = self._region_size(state, av.region)
            if size is None:
                continue
            win = rec.itv.eval(binding)
            if win.hi <= win.lo:
                continue  # empty window proves nothing
            under = (win.lo != float("-inf")
                     and av.offset.lo != float("-inf")
                     and av.offset.lo + win.lo < 0)
            over = (win.hi != INF and av.offset.hi != INF
                    and av.offset.hi + win.hi > size.hi)
            if under or over:
                what = "writes" if rec.write else "reads"
                self._emit(ins, "oob", "error",
                           f"{s.name}() {what} bytes {win!r} past "
                           f"argument '{p}', out of bounds of the "
                           f"{av.region[0]} object (size {size!r})")
        for p in sorted(s.frees_must):
            av = bind.get(p)
            if av is None or not av.is_ptr or \
                    av.nullness == "null" or av.region is None:
                continue
            kind = av.region[0]
            if kind in ("local", "global"):
                self._emit(ins, "invalid-free", "error",
                           f"{s.name}() frees its argument '{p}', "
                           f"but the pointer targets {kind} "
                           f"'{av.region[1]}'")
            else:
                hr = state.heap.get(av.region[1])
                if hr is not None and hr.status == FREED:
                    self._emit(ins, "double-free", "error",
                               f"{s.name}() frees its argument "
                               f"'{p}', which is already freed")
                elif not av.offset.contains(0) and \
                        not _is_param_site(av.region[1]):
                    self._emit(ins, "invalid-free", "error",
                               f"{s.name}() frees its argument "
                               f"'{p}', an interior pointer "
                               f"(offset {av.offset!r})")
        for p in sorted(s.escapes):
            av = bind.get(p)
            if av is not None and av.is_ptr and \
                    av.region is not None and \
                    av.region[0] == "local":
                self._emit(ins, "scope-escape", "warning",
                           f"pointer to local '{av.region[1]}' "
                           f"escapes through {s.name}() "
                           f"argument '{p}'")
        if s.ret.kind == "local":
            self._emit(ins, "scope-escape", "warning",
                       f"{s.name}() returns a pointer to its own "
                       f"local '{s.ret.param}'")

    def _collect_context(self, s: FunctionSummary,
                         bind: Dict[str, AVal], state: MState):
        entries = []
        for pname in s.params:
            entries.append((pname,
                            self._param_ctx(bind.get(pname), state)))
        self.callsites.append((s.name, tuple(entries)))

    def _param_ctx(self, av: Optional[AVal],
                   state: MState) -> ParamCtx:
        if av is None:
            return ParamCtx()
        if av.is_int:
            return ParamCtx(rng=av.rng)
        if not av.is_ptr:
            return ParamCtx()
        avail = 0
        live = False
        if av.region is not None:
            size = self._region_size(state, av.region)
            if size is not None and av.offset.lo >= 0 and \
                    av.offset.hi != INF and size.lo != INF:
                avail = max(0, int(size.lo - av.offset.hi))
            kind = av.region[0]
            if kind in ("local", "global"):
                live = True
            elif kind == "heap":
                hr = state.heap.get(av.region[1])
                live = hr is not None and hr.status == LIVE
        if not live and av.origin is not None and \
                av.origin in state.checked:
            live = True   # checked-on-entry: a kept caller check
                          # dominates the call
        return ParamCtx(avail=avail,
                        nullness="nonnull"
                        if av.nullness == "nonnull" else "maybe",
                        live=live)

    def _alloc(self, ins: Call, label: str, idx: int,
               env: Dict[int, AVal], state: MState) -> MState:
        def aval(v):
            return env.get(v, AVal.top())

        if ins.name == "calloc":
            size = aval(ins.args[0]).rng.mul(aval(ins.args[1]).rng) \
                if (aval(ins.args[0]).is_int and
                    aval(ins.args[1]).is_int) else Interval.top()
        else:
            arg = aval(ins.args[0])
            size = arg.rng if arg.is_int else Interval.top()
        site = (self.fn.name, label, idx)
        new = state.copy()
        if ins.dst is not None:
            if size.lo != float("inf") and \
                    size.lo > self.config.user_top:
                # Bigger than the whole user address space: the
                # bump/free-list allocator must return NULL.
                env[ins.dst] = AVal.null()
            else:
                old = new.heap.get(site)
                status = LIVE if old is None or old.status == LIVE \
                    else MAYBE_FREED
                new.heap[site] = HeapRegion(
                    Interval(max(size.lo, 0), size.hi), status)
                env[ins.dst] = AVal.ptr(("heap", site),
                                        Interval.const(0),
                                        nullness="maybe")
        return new

    def _free(self, ins: Call, p: AVal, state: MState) -> MState:
        if p.kind == "uninit":
            self._emit(ins, "uninit-deref", "error",
                       "free() of uninitialized pointer")
            return state
        if not p.is_ptr:
            return state
        if p.nullness == "null":
            return state  # free(NULL) is a no-op in the runtime
        if p.region is None:
            # Unknown provenance: anything might have been freed.
            heap = {site: HeapRegion(r.size,
                                     FREED if r.status == FREED
                                     else MAYBE_FREED)
                    for site, r in state.heap.items()}
            return MState(dict(state.slots), heap, frozenset())
        kind = p.region[0]
        if kind in ("local", "global"):
            self._emit(ins, "invalid-free", "error",
                       f"free() of non-heap pointer to "
                       f"{kind} '{p.region[1]}'")
            return state
        site = p.region[1]
        region = state.heap.get(site)
        new = state.copy()
        if region is not None and region.status == FREED:
            self._emit(ins, "double-free", "error",
                       "free() of an already-freed allocation")
        elif not p.offset.contains(0) and not _is_param_site(site):
            # (For a param region the incoming pointer may itself be
            # interior, so a nonzero offset proves nothing.)
            self._emit(ins, "invalid-free", "error",
                       f"free() of interior pointer "
                       f"(offset {p.offset!r})")
        size = region.size if region is not None else Interval.top()
        new.heap[site] = HeapRegion(size, FREED)
        # Lock died: drop dominance facts for slots aiming at it.
        new.checked = frozenset(
            s for s in new.checked
            if not (new.slots.get(s) is not None
                    and new.slots[s].is_ptr
                    and new.slots[s].region == p.region))
        if _is_param_site(site):
            self._degrade_param_siblings(new, site)
        return new

    # -- access classification ---------------------------------------------

    def _classify(self, ins, addr: AVal, length: Interval,
                  state: MState, is_store: bool,
                  wrapper: Optional[str] = None):
        """Judge one checked access; record findings (report pass) and
        fold the verdict into the instruction's AccessFacts."""
        spatial_ok = False
        temporal_ok = False
        cross_call = False
        what = f"{wrapper}() range" if wrapper else \
            ("store" if is_store else "load")

        if addr.kind == "uninit":
            self._emit(ins, "uninit-deref", "error",
                       f"{what} through uninitialized pointer"
                       + (f" (from '{addr.origin[2:]}')"
                          if addr.origin else ""))
        elif addr.is_ptr:
            if addr.nullness == "null":
                self._emit(ins, "null-deref", "error",
                           f"{what} through NULL pointer")
            elif addr.region is not None:
                spatial_ok, temporal_ok, cross_call = \
                    self._judge_region(ins, addr, length, state,
                                       what)
            self._check_subobj(ins, addr, length, wrapper, what)

        temporal_dom = (addr.origin is not None
                        and addr.origin in state.checked)
        if self._stamp and not wrapper:
            facts = getattr(ins, "_ms_facts", None)
            if facts is None:
                facts = AccessFacts()
                ins._ms_facts = facts
            facts.spatial_ok &= spatial_ok
            facts.temporal_ok &= temporal_ok
            facts.temporal_dom &= temporal_dom
            facts.cross_call |= cross_call
            facts.note_origin(addr.origin)
            if is_store:
                facts.note_target(addr.region if addr.is_ptr
                                  else None)
        # Seed dominance only when this access keeps a temporal check
        # (a fully-proven access's check disappears; a dominated one
        # reuses the earlier check).
        if not wrapper and addr.origin is not None and \
                not temporal_ok and not temporal_dom:
            state.checked = state.checked | {addr.origin}

    def _judge_region(self, ins, addr: AVal, length: Interval,
                      state: MState, what: str
                      ) -> Tuple[bool, bool, bool]:
        region = addr.region
        size = self._region_size(state, region)
        kind = region[0]
        temporal_ok = kind in ("local", "global")
        param = kind == "heap" and _is_param_site(region[1])
        if kind == "heap":
            hr = state.heap.get(region[1])
            if hr is not None and hr.status == FREED:
                self._emit(ins, "uaf", "error",
                           f"{what} through freed heap pointer")
                return False, False, False
            temporal_ok = hr is not None and hr.status == LIVE
        if size is None:
            return False, temporal_ok, param and temporal_ok
        end = addr.offset.add(length)
        if addr.offset.lo < 0 or end.hi > size.hi:
            if param:
                # Behind the incoming pointer: the caller may have
                # passed an interior pointer, so the region's
                # backward extent is unknown — no claim either way.
                return False, temporal_ok, param and temporal_ok
            if length.lo > 0 or not what.endswith("range"):
                name = region[1] if kind != "heap" else "allocation"
                self._emit(ins, "oob", "error",
                           f"{what} out of bounds of {kind} object "
                           f"'{name}': offsets {addr.offset!r}+"
                           f"{length!r} exceed size {size!r}")
            return False, temporal_ok, param and temporal_ok
        spatial_ok = (addr.offset.lo >= 0
                      and end.hi <= size.lo
                      and addr.nullness == "nonnull")
        # A proof that leaned on a parameter region leaned on the
        # call-site context; elision stats attribute it cross-call.
        return spatial_ok, temporal_ok, \
            param and (spatial_ok or temporal_ok)

    def _check_subobj(self, ins, addr: AVal, length: Interval,
                      wrapper: Optional[str], what: str):
        """Intra-object overflow: the access escapes the struct field
        its pointer was formed from. Object-granularity metadata (one
        bound per allocation) cannot trap these, so they are reported
        even when the access stays inside the allocation."""
        if addr.sub is None or addr.nullness == "null":
            return
        if length.lo <= 0 and wrapper is not None:
            return
        rel, sub_size = addr.sub
        end = rel.add(length)
        if rel.lo < 0 or end.hi > sub_size:
            self._emit(ins, "intra-oob", "error",
                       f"{what} overflows the {sub_size}-byte struct "
                       f"field it points into (field-relative "
                       f"offsets {rel!r}+{length!r})")

    def _emit(self, ins, kind: str, severity: str, message: str):
        if self._record is not None:
            self._record(ins, kind, severity, message)

    # -- branches ----------------------------------------------------------

    def _branch(self, ins: Br, cond: AVal, state: MState):
        then_state: Optional[MState] = state
        else_state: Optional[MState] = state.copy()

        if cond.is_int and not cond.rng.is_top:
            if cond.rng == Interval.const(0):
                then_state = None
            elif not cond.rng.contains(0):
                else_state = None
        elif cond.is_ptr:
            if cond.nullness == "null":
                then_state = None
            elif cond.nullness == "nonnull":
                else_state = None

        pred = cond.pred
        if pred is None and cond.is_ptr:
            pred = ("ne", cond, AVal.int_const(0))
        elif pred is None and cond.is_int and cond.origin:
            pred = ("ne", cond, AVal.int_const(0))
        if pred is not None:
            op, la, lb = pred
            if then_state is not None:
                then_state = self._apply_pred(then_state, op, la, lb)
            if else_state is not None:
                else_state = self._apply_pred(else_state,
                                              CMP_NEG[op], la, lb)
        if ins.then_label == ins.else_label:
            if then_state is None:
                return else_state
            if else_state is None:
                return then_state
            return self.join(then_state, else_state)
        return EdgeStates({ins.then_label: then_state,
                           ins.else_label: else_state})

    def _apply_pred(self, state: MState, op: str, la: AVal,
                    lb: AVal) -> Optional[MState]:
        if la.is_int and lb.is_int:
            if la.rng.definitely(op, lb.rng) is False:
                return None
        new = state
        for side, other, sop in ((la, lb, op),
                                 (lb, la, CMP_SWAP[op])):
            key = side.origin
            if key is None:
                continue
            cur = new.slots.get(key)
            if cur is None or not _same_value(cur, side):
                continue
            refined = _refine(side, sop, other)
            if refined is None:
                return None
            if not _same_value(refined, cur):
                if new is state:
                    new = state.copy()
                new.slots[key] = replace(refined, origin=None)
        return new


# -- refinement helpers ----------------------------------------------------

def _is_nullish(av: AVal) -> bool:
    return (av.is_ptr and av.nullness == "null") or \
        (av.is_int and av.rng == Interval.const(0))


def _flip_bool(rng: Interval) -> Interval:
    if rng == Interval.const(0):
        return Interval.const(1)
    if not rng.contains(0):
        return Interval.const(0)
    return Interval(0, 1)


def _div_const(rng: Interval, d: int) -> Interval:
    def trunc(x):
        if x in (float("inf"), float("-inf")):
            return x
        q = abs(int(x)) // d
        return q if x >= 0 else -q
    lo, hi = trunc(rng.lo), trunc(rng.hi)
    return Interval(min(lo, hi), max(lo, hi))


def _refine(av: AVal, op: str, other: AVal) -> Optional[AVal]:
    """Value of ``av`` assuming ``av op other`` holds; None if that is
    impossible (the edge is infeasible)."""
    if av.is_ptr and _is_nullish(other) and op in ("eq", "ne"):
        if op == "eq":
            if av.nullness == "nonnull":
                return None
            return AVal.null()
        if av.nullness == "null":
            return None
        return replace(av, nullness="nonnull")
    if av.is_int and other.is_int:
        rng = _refine_rng(av.rng, op, other.rng)
        if rng is None:
            return None
        return replace(av, rng=rng)
    if av.is_ptr and other.is_ptr and av.region is not None and \
            av.region == other.region:
        rng = _refine_rng(av.offset, op, other.offset)
        if rng is None:
            return None
        return replace(av, offset=rng)
    return av


def _refine_rng(rng: Interval, op: str,
                other: Interval) -> Optional[Interval]:
    if op == "eq":
        return rng.meet(other)
    if op == "ne":
        if other.is_const:
            if rng.is_const and rng.lo == other.lo:
                return None
            if rng.lo == other.lo:
                return Interval(rng.lo + 1, rng.hi)
            if rng.hi == other.hi:
                return Interval(rng.lo, rng.hi - 1)
        return rng
    if op in ("ult", "ule", "ugt", "uge") and \
            (rng.lo < 0 or other.lo < 0):
        return rng  # unsigned view of negatives: no refinement
    if op in ("slt", "ult"):
        return rng.meet(Interval(float("-inf"), other.hi - 1))
    if op in ("sle", "ule"):
        return rng.meet(Interval(float("-inf"), other.hi))
    if op in ("sgt", "ugt"):
        return rng.meet(Interval(other.lo + 1, float("inf")))
    if op in ("sge", "uge"):
        return rng.meet(Interval(other.lo, float("inf")))
    return rng


def analyze_function(module: Module, fn: Function,
                     config: Optional[HwstConfig] = None,
                     may_free: Optional[Set[str]] = None,
                     recorder: Optional[Recorder] = None,
                     stamp: bool = True,
                     summaries: Optional[Dict[str,
                                              FunctionSummary]] = None,
                     context: Optional[FnContext] = None):
    """Fixpoint + report pass for one function. Returns the
    DataflowResult; findings go to ``recorder``; AccessFacts are
    stamped on checked accesses when ``stamp``. Supplying
    ``summaries`` switches on the interprocedural machinery (use
    :func:`repro.analyze.interproc.analyze_module_interproc` to drive
    a whole module)."""
    analysis = MemSafety(module, fn, config, may_free,
                         summaries=summaries, context=context)
    result = run_forward(analysis, fn)
    analysis.report(result, recorder or (lambda *a: None),
                    stamp=stamp)
    return result
