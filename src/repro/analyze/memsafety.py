"""Interval/provenance dataflow for memory safety over the IR.

One :class:`MemSafety` instance analyzes one function. The state maps
stack slots (and module globals) to abstract values (:class:`AVal`),
tracks one :class:`HeapRegion` per allocation site, and carries the
set of slots whose pointer value has already passed a temporal check
on every path (``checked`` — the dominance fact behind temporal-check
elision). Virtual registers never cross blocks in this IR, so the
vreg environment is rebuilt inside each block transfer.

Soundness posture (documented in docs/analysis.md):

* ``spatial_ok`` on an access means: on every path, the address lies
  inside a known-size region at a non-negative offset, the access end
  stays at or below the region's *minimum* possible size, and the
  pointer is definitely non-null. Only then may an elision client
  drop the spatial check.
* ``temporal_ok`` means the region is a local/global (live for the
  whole function) or a heap site that is definitely not freed yet on
  every path. ``temporal_dom`` means a kept temporal check on the
  same slot's unchanged pointer value dominates this access.
* Error findings are emitted only for *must* or *reachable-must*
  facts (an interval that provably exceeds the region on some
  iteration, a definitely-null or definitely-freed pointer), so every
  error finding corresponds to a dynamically trapping execution.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, FrozenSet, Optional, Set, Tuple

from repro.analyze.cfg import CFG
from repro.analyze.dataflow import (EdgeStates, ForwardAnalysis,
                                    run_forward)
from repro.analyze.domain import (FREED, LIVE, MAYBE_FREED, AVal,
                                  HeapRegion, Interval)
from repro.core.config import HwstConfig
from repro.ir.instrument import ALLOC_FNS, WRAPPED_RANGE_FNS
from repro.ir.ir import (AddrGlobal, AddrLocal, BinOp, Br, Call, Conv,
                         Function, GetParam, IConst, Jmp, Load, Module,
                         Ret, Store, UnOp)

__all__ = ["MemSafety", "analyze_function", "compute_may_free",
           "AccessFacts"]

CMP_OPS = frozenset({"eq", "ne", "slt", "sle", "sgt", "sge",
                     "ult", "ule", "ugt", "uge"})
CMP_NEG = {"eq": "ne", "ne": "eq", "slt": "sge", "sge": "slt",
           "sle": "sgt", "sgt": "sle", "ult": "uge", "uge": "ult",
           "ule": "ugt", "ugt": "ule"}
CMP_SWAP = {"eq": "eq", "ne": "ne", "slt": "sgt", "sgt": "slt",
            "sle": "sge", "sge": "sle", "ult": "ugt", "ugt": "ult",
            "ule": "uge", "uge": "ule"}

# Runtime helpers that neither write user memory nor free anything.
PURE_FNS = frozenset({"print_char", "print_str", "print_int",
                      "print_hex", "rand_seed", "rand_next",
                      "strlen", "strcmp", "strncmp", "memcmp",
                      "__alloc_size"})
# Runtime helpers that write through their first pointer argument.
WRITE_THROUGH_ARG0 = frozenset({"memcpy", "memset", "strncpy",
                                "strcpy", "strcat"})
KNOWN_RUNTIME = (PURE_FNS | WRITE_THROUGH_ARG0 | set(ALLOC_FNS)
                 | {"free"})


def compute_may_free(module: Module) -> Set[str]:
    """Function names that may (transitively) release a heap region or
    call code we cannot see. Calls to these invalidate every heap
    status and the whole temporal-dominance set."""
    callees: Dict[str, Set[str]] = {}
    for name, fn in module.functions.items():
        calls: Set[str] = set()
        for blk in fn.blocks:
            for ins in blk.instrs:
                if isinstance(ins, Call):
                    calls.add(ins.name)
        callees[name] = calls
    may_free: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, calls in callees.items():
            if name in may_free:
                continue
            for callee in calls:
                if callee == "free" or callee in may_free or \
                        (callee not in callees and
                         callee not in KNOWN_RUNTIME):
                    may_free.add(name)
                    changed = True
                    break
    return may_free


class AccessFacts:
    """Per-access conclusions, stamped on the Load/Store instruction."""

    __slots__ = ("spatial_ok", "temporal_ok", "temporal_dom")

    def __init__(self):
        self.spatial_ok = True   # AND-accumulated over report visits
        self.temporal_ok = True
        self.temporal_dom = True

    def __repr__(self):
        return (f"AccessFacts(sp={self.spatial_ok}, "
                f"tp={self.temporal_ok}, dom={self.temporal_dom})")


class MState:
    """Slots + heap regions + temporally-checked slot set."""

    __slots__ = ("slots", "heap", "checked")

    def __init__(self, slots: Dict[str, AVal],
                 heap: Dict[tuple, HeapRegion],
                 checked: FrozenSet[str]):
        self.slots = slots
        self.heap = heap
        self.checked = checked

    def copy(self) -> "MState":
        return MState(dict(self.slots), dict(self.heap), self.checked)

    def __eq__(self, other):
        return (isinstance(other, MState)
                and self.slots == other.slots
                and self.heap == other.heap
                and self.checked == other.checked)

    def __repr__(self):
        return (f"MState(slots={self.slots}, heap={self.heap}, "
                f"checked={sorted(self.checked)})")


def _strip(av: AVal) -> AVal:
    return replace(av, origin=None, pred=None)


def _same_value(a: AVal, b: AVal) -> bool:
    return _strip(a) == _strip(b)


# Recorder: (ins, kind, severity, message)
Recorder = Callable[[object, str, str, str], None]


class MemSafety(ForwardAnalysis):
    """The memory-safety dataflow client for one function."""

    def __init__(self, module: Module, fn: Function,
                 config: Optional[HwstConfig] = None,
                 may_free: Optional[Set[str]] = None):
        self.module = module
        self.fn = fn
        self.config = config or HwstConfig()
        self.may_free = may_free if may_free is not None \
            else compute_may_free(module)
        self._record: Optional[Recorder] = None
        self._stamp = False

    # -- lattice -----------------------------------------------------------

    def initial_state(self, cfg: CFG) -> MState:
        slots: Dict[str, AVal] = {}
        for name in self.fn.locals:
            slots["l:" + name] = AVal.uninit()
        for name, data in self.module.globals.items():
            slots["g:" + name] = self._global_initial(data)
        return MState(slots, {}, frozenset())

    def _global_initial(self, data) -> AVal:
        from repro.minic.types import PointerType

        if data.is_string or data.size > 8:
            return AVal.top()
        raw = bytes(data.data[:data.size]).ljust(max(data.size, 1),
                                                 b"\0")
        value = int.from_bytes(raw, "little", signed=True)
        if isinstance(data.ctype, PointerType):
            return AVal.null() if value == 0 else AVal.top()
        return AVal.int_const(value)

    def copy(self, state: MState) -> MState:
        return state.copy()

    def join(self, a: MState, b: MState) -> MState:
        slots = {}
        for key in a.slots.keys() | b.slots.keys():
            va, vb = a.slots.get(key), b.slots.get(key)
            slots[key] = va.join(vb) if va is not None and \
                vb is not None else AVal.top()
        heap = dict(a.heap)
        for site, region in b.heap.items():
            cur = heap.get(site)
            heap[site] = region if cur is None else cur.join(region)
        return MState(slots, heap, a.checked & b.checked)

    def widen(self, old: MState, new: MState) -> MState:
        slots = {}
        for key in old.slots.keys() | new.slots.keys():
            va, vb = old.slots.get(key), new.slots.get(key)
            slots[key] = va.widen(vb) if va is not None and \
                vb is not None else AVal.top()
        heap = dict(old.heap)
        for site, region in new.heap.items():
            cur = heap.get(site)
            if cur is None:
                heap[site] = region
            else:
                status = cur.status if cur.status == region.status \
                    else MAYBE_FREED
                heap[site] = HeapRegion(cur.size.widen(region.size),
                                        status)
        return MState(slots, heap, old.checked & new.checked)

    # -- transfer ----------------------------------------------------------

    def transfer(self, cfg: CFG, label: str, state: MState):
        return self._walk(cfg.blocks[label], state)

    def report(self, result, recorder: Recorder, stamp: bool = True):
        """Re-walk every feasibly-reachable block from its fixpoint
        in-state, recording findings and stamping AccessFacts."""
        self._record = recorder
        self._stamp = stamp
        try:
            for label, in_state in result.block_in.items():
                self._walk(result.cfg.blocks[label], in_state.copy())
        finally:
            self._record = None
            self._stamp = False

    # -- region plumbing ---------------------------------------------------

    def _slot_key(self, region) -> Optional[str]:
        if region is None:
            return None
        kind, name = region
        if kind == "local":
            return "l:" + str(name)
        if kind == "global":
            return "g:" + str(name)
        return None

    def _region_size(self, state: MState, region) -> Optional[Interval]:
        kind, name = region
        if kind == "local":
            slot = self.fn.locals.get(name)
            return Interval.const(slot.size) if slot else None
        if kind == "global":
            data = self.module.globals.get(name)
            return Interval.const(data.size) if data else None
        if kind == "heap":
            heap = state.heap.get(region[1])
            return heap.size if heap is not None else None
        return None

    def _scalar_slot(self, region, size: int) -> Optional[str]:
        """Slot key if the access reads/writes exactly one tracked
        slot (whole-slot, offset 0)."""
        key = self._slot_key(region)
        if key is None:
            return None
        kind, name = region
        obj_size = (self.fn.locals[name].size if kind == "local"
                    else self.module.globals[name].size)
        return key if obj_size == size else None

    # -- the block walk ----------------------------------------------------

    def _walk(self, blk, state: MState):
        env: Dict[int, AVal] = {}

        def aval(v: Optional[int]) -> AVal:
            if v is None:
                return AVal.top()
            return env.get(v, AVal.top())

        out = state
        for idx, ins in enumerate(blk.instrs):
            if isinstance(ins, IConst):
                if self.fn.prov.get(ins.dst) == ("null", None):
                    env[ins.dst] = AVal.null()
                else:
                    env[ins.dst] = AVal.int_const(ins.value)
            elif isinstance(ins, AddrLocal):
                env[ins.dst] = AVal.ptr(("local", ins.name),
                                        Interval.const(0))
            elif isinstance(ins, AddrGlobal):
                env[ins.dst] = AVal.ptr(("global", ins.name),
                                        Interval.const(0))
            elif isinstance(ins, GetParam):
                prov = self.fn.prov.get(ins.dst)
                env[ins.dst] = AVal.unknown_ptr() if prov else \
                    AVal.top()
            elif isinstance(ins, Conv):
                env[ins.dst] = self._conv(aval(ins.a), ins.width,
                                          ins.signed)
            elif isinstance(ins, UnOp):
                env[ins.dst] = self._unop(ins.op, aval(ins.a))
            elif isinstance(ins, BinOp):
                env[ins.dst] = self._binop(ins.op, aval(ins.a),
                                           aval(ins.b), ins.width,
                                           ins.signed)
            elif isinstance(ins, Load):
                env[ins.dst] = self._load(ins, aval(ins.addr), out)
            elif isinstance(ins, Store):
                out = self._store(ins, aval(ins.addr),
                                  aval(ins.src), out)
            elif isinstance(ins, Call):
                out = self._call(ins, blk.label, idx, env, out)
            elif isinstance(ins, Ret):
                if ins.ptr_value and ins.value is not None:
                    rv = aval(ins.value)
                    if rv.is_ptr and rv.region is not None and \
                            rv.region[0] == "local":
                        self._emit(ins, "scope-escape", "warning",
                                   f"returning pointer to local "
                                   f"object '{rv.region[1]}'")
                return out
            elif isinstance(ins, Br):
                return self._branch(ins, aval(ins.cond), out)
            elif isinstance(ins, Jmp):
                return out
            else:
                # Instrumentation / hardware ops: defs go to Top.
                for d in ins.defs():
                    env[d] = AVal.top()
        return out

    # -- expression transfer -----------------------------------------------

    def _conv(self, av: AVal, width: int, signed: bool) -> AVal:
        if av.is_ptr and width >= 8:
            return av
        if av.is_int:
            return AVal.int_range(av.rng.clamp_width(8 * width,
                                                     signed))
        return AVal.top()

    def _unop(self, op: str, a: AVal) -> AVal:
        if op == "neg" and a.is_int:
            return AVal.int_range(a.rng.neg())
        if op == "lognot":
            if a.pred is not None:
                pop, pl, pr = a.pred
                flipped = (CMP_NEG[pop], pl, pr)
                rng = _flip_bool(a.rng)
                return AVal(kind="int", rng=rng, pred=flipped)
            if a.is_ptr:
                pred = ("eq", a, AVal.int_const(0))
                if a.nullness == "null":
                    return AVal(kind="int", rng=Interval.const(1),
                                pred=pred)
                if a.nullness == "nonnull":
                    return AVal(kind="int", rng=Interval.const(0),
                                pred=pred)
                return AVal(kind="int", rng=Interval(0, 1), pred=pred)
            if a.is_int:
                pred = ("eq", a, AVal.int_const(0))
                if a.rng.is_const:
                    return AVal(kind="int", rng=Interval.const(
                        0 if a.rng.lo != 0 else 1), pred=pred)
                if not a.rng.contains(0):
                    return AVal(kind="int", rng=Interval.const(0),
                                pred=pred)
                return AVal(kind="int", rng=Interval(0, 1), pred=pred)
        return AVal.top()

    def _binop(self, op: str, a: AVal, b: AVal, width: int,
               signed: bool) -> AVal:
        if op in CMP_OPS:
            return self._compare(op, a, b)
        if op == "add":
            if a.is_ptr and b.is_int:
                return replace(a, offset=a.offset.add(b.rng),
                               pred=None)
            if b.is_ptr and a.is_int:
                return replace(b, offset=b.offset.add(a.rng),
                               pred=None)
            if a.is_int and b.is_int:
                return self._int(a.rng.add(b.rng), width, signed)
        elif op == "sub":
            if a.is_ptr and b.is_int:
                return replace(a, offset=a.offset.sub(b.rng),
                               pred=None)
            if a.is_ptr and b.is_ptr:
                if a.region is not None and a.region == b.region:
                    return AVal.int_range(a.offset.sub(b.offset))
                return AVal(kind="int")
            if a.is_int and b.is_int:
                return self._int(a.rng.sub(b.rng), width, signed)
        elif op == "mul":
            if a.is_int and b.is_int:
                return self._int(a.rng.mul(b.rng), width, signed)
        elif op == "shl":
            if a.is_int and b.is_int:
                return self._int(a.rng.shl(b.rng), width, signed)
        elif op == "and":
            if a.is_int and b.is_int:
                return self._int(a.rng.and_mask(b.rng), width, signed)
        elif op in ("sdiv", "udiv"):
            if a.is_int and b.is_int and b.rng.is_const and \
                    b.rng.lo > 0:
                return self._int(_div_const(a.rng, int(b.rng.lo)),
                                 width, signed)
            return AVal(kind="int")
        elif op in ("srem", "urem"):
            if a.is_int and b.is_int and b.rng.is_const and \
                    b.rng.lo > 0 and a.rng.lo >= 0:
                d = int(b.rng.lo)
                hi = min(a.rng.hi, d - 1)
                return AVal.int_range(Interval(0, hi))
            return AVal(kind="int")
        elif op in ("or", "xor", "lshr", "ashr"):
            return AVal(kind="int")
        return AVal.top()

    def _int(self, rng: Interval, width: int, signed: bool) -> AVal:
        if width:
            rng = rng.clamp_width(8 * width, signed)
        return AVal.int_range(rng)

    def _compare(self, op: str, a: AVal, b: AVal) -> AVal:
        pred = (op, a, b)
        verdict: Optional[bool] = None
        if a.is_int and b.is_int:
            verdict = a.rng.definitely(op, b.rng)
        elif a.is_ptr and b.is_ptr:
            if _is_nullish(b) and op in ("eq", "ne"):
                verdict = self._null_verdict(op, a)
            elif _is_nullish(a) and op in ("eq", "ne"):
                verdict = self._null_verdict(op, b)
            elif a.region is not None and a.region == b.region and \
                    a.nullness == "nonnull" and \
                    b.nullness == "nonnull":
                verdict = a.offset.definitely(op, b.offset)
        elif a.is_ptr and b.is_int and b.rng == Interval.const(0) \
                and op in ("eq", "ne"):
            verdict = self._null_verdict(op, a)
        elif b.is_ptr and a.is_int and a.rng == Interval.const(0) \
                and op in ("eq", "ne"):
            verdict = self._null_verdict(op, b)
        if verdict is None:
            return AVal(kind="int", rng=Interval(0, 1), pred=pred)
        return AVal(kind="int",
                    rng=Interval.const(1 if verdict else 0),
                    pred=pred)

    @staticmethod
    def _null_verdict(op: str, p: AVal) -> Optional[bool]:
        if p.nullness == "null":
            return op == "eq"
        if p.nullness == "nonnull":
            return op == "ne"
        return None

    # -- memory transfer ---------------------------------------------------

    def _load(self, ins: Load, addr: AVal, state: MState) -> AVal:
        if ins.needs_check:
            self._classify(ins, addr, Interval.const(ins.size),
                           state, is_store=False)
        value: Optional[AVal] = None
        if addr.is_ptr and addr.offset == Interval.const(0):
            key = self._scalar_slot(addr.region, ins.size) \
                if addr.region is not None else None
            if key is not None and key in state.slots:
                value = replace(state.slots[key], origin=key)
        if value is None:
            value = AVal.unknown_ptr() if ins.ptr_result \
                else AVal.top()
        elif ins.ptr_result and not value.is_ptr and \
                value.kind != "uninit":
            value = replace(AVal.unknown_ptr(), origin=value.origin)
        return value

    def _store(self, ins: Store, addr: AVal, src: AVal,
               state: MState) -> MState:
        if ins.needs_check:
            self._classify(ins, addr, Interval.const(ins.size),
                           state, is_store=True)
        if addr.is_ptr and addr.region is not None:
            key = self._slot_key(addr.region)
            if key is not None:
                new = state.copy()
                exact = self._scalar_slot(addr.region, ins.size)
                if exact is not None and \
                        addr.offset == Interval.const(0):
                    new.slots[exact] = replace(src, origin=None)
                else:
                    new.slots[key] = AVal.top()
                new.checked = new.checked - {key}
                return new
            return state  # heap store: element values untracked
        # Store through an unknown pointer: it may legally target any
        # address-taken object or global (the access's own check stays,
        # so it cannot stray outside *some* valid object).
        return self._havoc_objects(state)

    def _havoc_objects(self, state: MState) -> MState:
        new = state.copy()
        dropped = set()
        for key in new.slots:
            if key.startswith("g:"):
                new.slots[key] = AVal.top()
                dropped.add(key)
            else:
                slot = self.fn.locals.get(key[2:])
                if slot is not None and slot.is_object:
                    new.slots[key] = AVal.top()
                    dropped.add(key)
        new.checked = new.checked - dropped
        return new

    # -- calls -------------------------------------------------------------

    def _call(self, ins: Call, label: str, idx: int,
              env: Dict[int, AVal], state: MState) -> MState:
        name = ins.name

        def aval(v):
            return env.get(v, AVal.top()) if v is not None \
                else AVal.top()

        if name in ALLOC_FNS:
            return self._alloc(ins, label, idx, env, state)
        if name == "free":
            return self._free(ins, aval(ins.args[0]), state)

        ranges = WRAPPED_RANGE_FNS.get(name)
        if ranges:
            for ptr_index, len_index in ranges:
                self._classify(ins, aval(ins.args[ptr_index]),
                               aval(ins.args[len_index]).rng
                               if aval(ins.args[len_index]).is_int
                               else Interval.top(),
                               state, is_store=(ptr_index == 0),
                               wrapper=name)

        if ins.dst is not None:
            env[ins.dst] = AVal.unknown_ptr() if ins.ptr_result \
                else AVal.top()

        if name in PURE_FNS:
            return state
        if name in WRITE_THROUGH_ARG0:
            dst = aval(ins.args[0]) if ins.args else AVal.top()
            if dst.is_ptr and dst.region is not None:
                key = self._slot_key(dst.region)
                if key is not None:
                    new = state.copy()
                    new.slots[key] = AVal.top()
                    new.checked = new.checked - {key}
                    return new
                return state
            return self._havoc_objects(state)

        # User-defined or unknown function.
        new = self._havoc_objects(state)
        if name in self.may_free or name not in \
                self.module.functions:
            heap = {site: HeapRegion(r.size,
                                     FREED if r.status == FREED
                                     else MAYBE_FREED)
                    for site, r in new.heap.items()}
            new = MState(new.slots, heap, frozenset())
        return new

    def _alloc(self, ins: Call, label: str, idx: int,
               env: Dict[int, AVal], state: MState) -> MState:
        def aval(v):
            return env.get(v, AVal.top())

        if ins.name == "calloc":
            size = aval(ins.args[0]).rng.mul(aval(ins.args[1]).rng) \
                if (aval(ins.args[0]).is_int and
                    aval(ins.args[1]).is_int) else Interval.top()
        else:
            arg = aval(ins.args[0])
            size = arg.rng if arg.is_int else Interval.top()
        site = (self.fn.name, label, idx)
        new = state.copy()
        if ins.dst is not None:
            if size.lo != float("inf") and \
                    size.lo > self.config.user_top:
                # Bigger than the whole user address space: the
                # bump/free-list allocator must return NULL.
                env[ins.dst] = AVal.null()
            else:
                old = new.heap.get(site)
                status = LIVE if old is None or old.status == LIVE \
                    else MAYBE_FREED
                new.heap[site] = HeapRegion(
                    Interval(max(size.lo, 0), size.hi), status)
                env[ins.dst] = AVal.ptr(("heap", site),
                                        Interval.const(0),
                                        nullness="maybe")
        return new

    def _free(self, ins: Call, p: AVal, state: MState) -> MState:
        if p.kind == "uninit":
            self._emit(ins, "uninit-deref", "error",
                       "free() of uninitialized pointer")
            return state
        if not p.is_ptr:
            return state
        if p.nullness == "null":
            return state  # free(NULL) is a no-op in the runtime
        if p.region is None:
            # Unknown provenance: anything might have been freed.
            heap = {site: HeapRegion(r.size,
                                     FREED if r.status == FREED
                                     else MAYBE_FREED)
                    for site, r in state.heap.items()}
            return MState(dict(state.slots), heap, frozenset())
        kind = p.region[0]
        if kind in ("local", "global"):
            self._emit(ins, "invalid-free", "error",
                       f"free() of non-heap pointer to "
                       f"{kind} '{p.region[1]}'")
            return state
        site = p.region[1]
        region = state.heap.get(site)
        new = state.copy()
        if region is not None and region.status == FREED:
            self._emit(ins, "double-free", "error",
                       "free() of an already-freed allocation")
        elif not p.offset.contains(0):
            self._emit(ins, "invalid-free", "error",
                       f"free() of interior pointer "
                       f"(offset {p.offset!r})")
        size = region.size if region is not None else Interval.top()
        new.heap[site] = HeapRegion(size, FREED)
        # Lock died: drop dominance facts for slots aiming at it.
        new.checked = frozenset(
            s for s in new.checked
            if not (new.slots.get(s) is not None
                    and new.slots[s].is_ptr
                    and new.slots[s].region == p.region))
        return new

    # -- access classification ---------------------------------------------

    def _classify(self, ins, addr: AVal, length: Interval,
                  state: MState, is_store: bool,
                  wrapper: Optional[str] = None):
        """Judge one checked access; record findings (report pass) and
        fold the verdict into the instruction's AccessFacts."""
        spatial_ok = False
        temporal_ok = False
        what = f"{wrapper}() range" if wrapper else \
            ("store" if is_store else "load")

        if addr.kind == "uninit":
            self._emit(ins, "uninit-deref", "error",
                       f"{what} through uninitialized pointer"
                       + (f" (from '{addr.origin[2:]}')"
                          if addr.origin else ""))
        elif addr.is_ptr:
            if addr.nullness == "null":
                self._emit(ins, "null-deref", "error",
                           f"{what} through NULL pointer")
            elif addr.region is not None:
                spatial_ok, temporal_ok = self._judge_region(
                    ins, addr, length, state, what)

        temporal_dom = (addr.origin is not None
                        and addr.origin in state.checked)
        if self._stamp and not wrapper:
            facts = getattr(ins, "_ms_facts", None)
            if facts is None:
                facts = AccessFacts()
                ins._ms_facts = facts
            facts.spatial_ok &= spatial_ok
            facts.temporal_ok &= temporal_ok
            facts.temporal_dom &= temporal_dom
        # Seed dominance only when this access keeps a temporal check
        # (a fully-proven access's check disappears; a dominated one
        # reuses the earlier check).
        if not wrapper and addr.origin is not None and \
                not temporal_ok and not temporal_dom:
            state.checked = state.checked | {addr.origin}

    def _judge_region(self, ins, addr: AVal, length: Interval,
                      state: MState, what: str
                      ) -> Tuple[bool, bool]:
        region = addr.region
        size = self._region_size(state, region)
        kind = region[0]
        temporal_ok = kind in ("local", "global")
        if kind == "heap":
            hr = state.heap.get(region[1])
            if hr is not None and hr.status == FREED:
                self._emit(ins, "uaf", "error",
                           f"{what} through freed heap pointer")
                return False, False
            temporal_ok = hr is not None and hr.status == LIVE
        if size is None:
            return False, temporal_ok
        end = addr.offset.add(length)
        if addr.offset.lo < 0 or end.hi > size.hi:
            if length.lo > 0 or not what.endswith("range"):
                name = region[1] if kind != "heap" else "allocation"
                self._emit(ins, "oob", "error",
                           f"{what} out of bounds of {kind} object "
                           f"'{name}': offsets {addr.offset!r}+"
                           f"{length!r} exceed size {size!r}")
            return False, temporal_ok
        spatial_ok = (addr.offset.lo >= 0
                      and end.hi <= size.lo
                      and addr.nullness == "nonnull")
        return spatial_ok, temporal_ok

    def _emit(self, ins, kind: str, severity: str, message: str):
        if self._record is not None:
            self._record(ins, kind, severity, message)

    # -- branches ----------------------------------------------------------

    def _branch(self, ins: Br, cond: AVal, state: MState):
        then_state: Optional[MState] = state
        else_state: Optional[MState] = state.copy()

        if cond.is_int and not cond.rng.is_top:
            if cond.rng == Interval.const(0):
                then_state = None
            elif not cond.rng.contains(0):
                else_state = None
        elif cond.is_ptr:
            if cond.nullness == "null":
                then_state = None
            elif cond.nullness == "nonnull":
                else_state = None

        pred = cond.pred
        if pred is None and cond.is_ptr:
            pred = ("ne", cond, AVal.int_const(0))
        elif pred is None and cond.is_int and cond.origin:
            pred = ("ne", cond, AVal.int_const(0))
        if pred is not None:
            op, la, lb = pred
            if then_state is not None:
                then_state = self._apply_pred(then_state, op, la, lb)
            if else_state is not None:
                else_state = self._apply_pred(else_state,
                                              CMP_NEG[op], la, lb)
        if ins.then_label == ins.else_label:
            if then_state is None:
                return else_state
            if else_state is None:
                return then_state
            return self.join(then_state, else_state)
        return EdgeStates({ins.then_label: then_state,
                           ins.else_label: else_state})

    def _apply_pred(self, state: MState, op: str, la: AVal,
                    lb: AVal) -> Optional[MState]:
        if la.is_int and lb.is_int:
            if la.rng.definitely(op, lb.rng) is False:
                return None
        new = state
        for side, other, sop in ((la, lb, op),
                                 (lb, la, CMP_SWAP[op])):
            key = side.origin
            if key is None:
                continue
            cur = new.slots.get(key)
            if cur is None or not _same_value(cur, side):
                continue
            refined = _refine(side, sop, other)
            if refined is None:
                return None
            if not _same_value(refined, cur):
                if new is state:
                    new = state.copy()
                new.slots[key] = replace(refined, origin=None)
        return new


# -- refinement helpers ----------------------------------------------------

def _is_nullish(av: AVal) -> bool:
    return (av.is_ptr and av.nullness == "null") or \
        (av.is_int and av.rng == Interval.const(0))


def _flip_bool(rng: Interval) -> Interval:
    if rng == Interval.const(0):
        return Interval.const(1)
    if not rng.contains(0):
        return Interval.const(0)
    return Interval(0, 1)


def _div_const(rng: Interval, d: int) -> Interval:
    def trunc(x):
        if x in (float("inf"), float("-inf")):
            return x
        q = abs(int(x)) // d
        return q if x >= 0 else -q
    lo, hi = trunc(rng.lo), trunc(rng.hi)
    return Interval(min(lo, hi), max(lo, hi))


def _refine(av: AVal, op: str, other: AVal) -> Optional[AVal]:
    """Value of ``av`` assuming ``av op other`` holds; None if that is
    impossible (the edge is infeasible)."""
    if av.is_ptr and _is_nullish(other) and op in ("eq", "ne"):
        if op == "eq":
            if av.nullness == "nonnull":
                return None
            return AVal.null()
        if av.nullness == "null":
            return None
        return replace(av, nullness="nonnull")
    if av.is_int and other.is_int:
        rng = _refine_rng(av.rng, op, other.rng)
        if rng is None:
            return None
        return replace(av, rng=rng)
    if av.is_ptr and other.is_ptr and av.region is not None and \
            av.region == other.region:
        rng = _refine_rng(av.offset, op, other.offset)
        if rng is None:
            return None
        return replace(av, offset=rng)
    return av


def _refine_rng(rng: Interval, op: str,
                other: Interval) -> Optional[Interval]:
    if op == "eq":
        return rng.meet(other)
    if op == "ne":
        if other.is_const:
            if rng.is_const and rng.lo == other.lo:
                return None
            if rng.lo == other.lo:
                return Interval(rng.lo + 1, rng.hi)
            if rng.hi == other.hi:
                return Interval(rng.lo, rng.hi - 1)
        return rng
    if op in ("ult", "ule", "ugt", "uge") and \
            (rng.lo < 0 or other.lo < 0):
        return rng  # unsigned view of negatives: no refinement
    if op in ("slt", "ult"):
        return rng.meet(Interval(float("-inf"), other.hi - 1))
    if op in ("sle", "ule"):
        return rng.meet(Interval(float("-inf"), other.hi))
    if op in ("sgt", "ugt"):
        return rng.meet(Interval(other.lo + 1, float("inf")))
    if op in ("sge", "uge"):
        return rng.meet(Interval(other.lo, float("inf")))
    return rng


def analyze_function(module: Module, fn: Function,
                     config: Optional[HwstConfig] = None,
                     may_free: Optional[Set[str]] = None,
                     recorder: Optional[Recorder] = None,
                     stamp: bool = True):
    """Fixpoint + report pass for one function. Returns the
    DataflowResult; findings go to ``recorder``; AccessFacts are
    stamped on checked accesses when ``stamp``."""
    analysis = MemSafety(module, fn, config, may_free)
    result = run_forward(analysis, fn)
    analysis.report(result, recorder or (lambda *a: None),
                    stamp=stamp)
    return result
