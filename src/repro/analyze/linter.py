"""Static memory-safety linter: findings, reports, module/source APIs.

``analyze_module`` drives the interprocedural analysis
(:mod:`repro.analyze.interproc` — call-graph summaries bottom-up,
call-site contexts top-down) over an IR module and collects structured
findings; ``analyze_source`` runs just the front end (lex/parse/sema/
irgen — no instrumentation, no runtime link) and then analyzes the
result, which is what the ``repro analyze`` CLI uses.

Severity convention: ``error`` findings are *must*-style facts (a
trapping execution provably exists on a feasible path); ``warning``
and ``info`` findings are advisory and never gate an exit code. The
one deliberate exception is ``intra-oob``: the access provably escapes
the struct *field* its pointer was formed from, which object-
granularity metadata (one bound per allocation) cannot trap at runtime
— that blind spot is exactly why the finding exists.

Every finding carries a stable ``rule_id`` (``REPRO-MS-*``) used by
the SARIF 2.1.0 export (:meth:`AnalysisReport.to_sarif`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analyze.cfg import CFG
from repro.analyze.interproc import analyze_module_interproc
from repro.core.config import HwstConfig
from repro.ir.ir import Module

__all__ = ["Finding", "AnalysisReport", "RULE_IDS",
           "analyze_module", "analyze_source"]

SEVERITIES = ("error", "warning", "info")

# Stable rule identifiers, one per finding kind. These are part of the
# tool's external contract (SARIF consumers key baselines on them), so
# existing ids must never be renamed — only new ones added.
RULE_IDS: Dict[str, str] = {
    "oob": "REPRO-MS-OOB",
    "intra-oob": "REPRO-MS-INTRA-OOB",
    "uaf": "REPRO-MS-UAF",
    "double-free": "REPRO-MS-DOUBLE-FREE",
    "invalid-free": "REPRO-MS-INVALID-FREE",
    "null-deref": "REPRO-MS-NULL-DEREF",
    "uninit-deref": "REPRO-MS-UNINIT-DEREF",
    "scope-escape": "REPRO-MS-SCOPE-ESCAPE",
    "dead-code": "REPRO-MS-DEAD-CODE",
}

_RULE_DESCRIPTIONS: Dict[str, str] = {
    "oob": "Out-of-bounds access to a sized object",
    "intra-oob": "Access overflows the struct field its pointer was "
                 "formed from (invisible to object-granularity "
                 "metadata)",
    "uaf": "Use of a freed heap allocation",
    "double-free": "free() of an already-freed allocation",
    "invalid-free": "free() of a non-heap or interior pointer",
    "null-deref": "Dereference of a definitely-NULL pointer",
    "uninit-deref": "Use of an uninitialized pointer",
    "scope-escape": "Pointer to a local object escapes its scope",
    "dead-code": "Statement can never execute",
}

_SARIF_LEVELS = {"error": "error", "warning": "warning",
                 "info": "note"}


@dataclass(frozen=True)
class Finding:
    """One linter diagnostic with function/line provenance."""

    kind: str           # oob | intra-oob | uaf | double-free |
    #                     invalid-free | null-deref | uninit-deref |
    #                     scope-escape | dead-code
    severity: str       # error | warning | info
    function: str
    block: str
    line: int           # 1-based source line; 0 when unknown
    message: str

    @property
    def rule_id(self) -> str:
        return RULE_IDS.get(self.kind,
                            "REPRO-MS-" + self.kind.upper())

    def location(self) -> str:
        where = self.function
        if self.line:
            where += f":{self.line}"
        return where

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "rule_id": self.rule_id,
                "severity": self.severity,
                "function": self.function, "block": self.block,
                "line": self.line, "message": self.message}


@dataclass
class AnalysisReport:
    """All findings for one module, plus summary counters."""

    name: str = "module"
    findings: List[Finding] = field(default_factory=list)
    interproc: Dict[str, int] = field(default_factory=dict)

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.kind] = counts.get(f.kind, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return not self.errors()

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro.analyze/v1",
            "name": self.name,
            "ok": self.ok,
            "counts": self.counts_by_kind(),
            "interproc": dict(sorted(self.interproc.items())),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_sarif(self) -> Dict[str, object]:
        """SARIF 2.1.0 document for CI annotation / IDE import."""
        used = sorted({f.kind for f in self.findings})
        rules = [{
            "id": RULE_IDS.get(kind, "REPRO-MS-" + kind.upper()),
            "name": kind,
            "shortDescription": {
                "text": _RULE_DESCRIPTIONS.get(kind, kind)},
        } for kind in used]
        rule_index = {r["id"]: i for i, r in enumerate(rules)}
        results = []
        for f in self.findings:
            region = {"startLine": f.line} if f.line else {}
            results.append({
                "ruleId": f.rule_id,
                "ruleIndex": rule_index[f.rule_id],
                "level": _SARIF_LEVELS[f.severity],
                "message": {"text": f.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": self.name},
                        **({"region": region} if region else {}),
                    },
                    "logicalLocations": [{
                        "name": f.function,
                        "kind": "function",
                    }],
                }],
            })
        return {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {
                    "name": "repro-analyze",
                    "informationUri":
                        "https://example.invalid/repro",
                    "rules": rules,
                }},
                "results": results,
            }],
        }

    def text(self) -> str:
        if not self.findings:
            return f"{self.name}: clean (no findings)"
        lines = []
        for f in sorted(self.findings,
                        key=lambda f: (SEVERITIES.index(f.severity),
                                       f.function, f.line)):
            lines.append(f"{f.severity:7s} {f.location():24s} "
                         f"[{f.kind}] {f.message}")
        counts = self.counts_by_kind()
        summary = ", ".join(f"{counts[k]} {k}" for k in sorted(counts))
        lines.append(f"{self.name}: {len(self.findings)} finding"
                     f"{'s' if len(self.findings) != 1 else ''} "
                     f"({summary})")
        return "\n".join(lines)


def analyze_module(module: Module,
                   config: Optional[HwstConfig] = None,
                   stamp: bool = False) -> AnalysisReport:
    """Run the interprocedural memory-safety analysis over a module."""
    config = config or HwstConfig()
    report = AnalysisReport(name=module.name)
    by_fn: Dict[str, List[Finding]] = {
        name: [] for name in module.functions}

    def recorder_factory(fn):
        # Per-function instruction -> block index, built once: keeps
        # finding attribution O(1) instead of scanning every block
        # per finding.
        index = {id(ins): blk.label
                 for blk in fn.blocks for ins in blk.instrs}
        seen = set()
        sink = by_fn[fn.name]

        def record(ins, kind, severity, message, _fn=fn):
            dedup = (id(ins), kind, message)
            if dedup in seen:
                return
            seen.add(dedup)
            sink.append(Finding(
                kind=kind, severity=severity, function=_fn.name,
                block=index.get(id(ins), "?"),
                line=getattr(ins, "line", 0), message=message))

        return record

    per_function, stats = analyze_module_interproc(
        module, config, recorder_factory, stamp=stamp)
    # Emit findings in module order regardless of analysis order, so
    # reports stay stable under call-graph shape changes.
    for name, fn in module.functions.items():
        report.findings.extend(by_fn[name])
        fa = per_function.get(name)
        if fa is not None:
            _dead_code_findings(fn, fa.result.cfg, report)
    report.interproc = {
        "functions": stats.functions,
        "sccs": stats.sccs,
        "scc_iterations": stats.scc_iterations,
        "callsites_refined": stats.callsites_refined,
        "contexts_applied": stats.contexts_applied,
    }
    return report


def _dead_code_findings(fn, cfg: CFG, report: AnalysisReport):
    """Unreachable ``dead.N`` blocks are statements irgen parked after
    a terminator — user code that can never run."""
    for label in cfg.unreachable_blocks():
        if not label.startswith("dead."):
            continue
        blk = cfg.blocks[label]
        # A dead block holding only its closing jump is a structural
        # artifact (e.g. the empty fallthrough of `if (...) return;`),
        # not user code — only real parked statements are worth a note.
        body = [ins for ins in blk.instrs if not ins.is_terminator()]
        if not body:
            continue
        line = next((ins.line for ins in body
                     if getattr(ins, "line", 0)), 0)
        report.findings.append(Finding(
            kind="dead-code", severity="info", function=fn.name,
            block=label, line=line,
            message="statement is unreachable (follows a return or "
                    "unconditional jump)"))


def analyze_source(source: str, name: str = "program",
                   config: Optional[HwstConfig] = None
                   ) -> AnalysisReport:
    """Front-end + analysis for mini-C source (no instrumentation)."""
    from repro.ir.irgen import lower_unit
    from repro.minic.lexer import tokenize
    from repro.minic.parser import Parser
    from repro.minic.sema import analyze

    tokens = tokenize(source)
    unit = Parser(tokens).parse_translation_unit()
    sema = analyze(unit)
    module = lower_unit(sema, name)
    return analyze_module(module, config)
