"""Static memory-safety linter: findings, reports, module/source APIs.

``analyze_module`` runs the :mod:`repro.analyze.memsafety` dataflow
over every function of an IR module and collects structured findings;
``analyze_source`` runs just the front end (lex/parse/sema/irgen — no
instrumentation, no runtime link) and then analyzes the result, which
is what the ``repro analyze`` CLI uses.

Severity convention: ``error`` findings are *must*-style facts (a
trapping execution provably exists on a feasible path); ``warning``
and ``info`` findings are advisory and never gate an exit code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analyze.cfg import CFG
from repro.analyze.memsafety import (MemSafety, compute_may_free,
                                     run_forward)
from repro.core.config import HwstConfig
from repro.ir.ir import Module

__all__ = ["Finding", "AnalysisReport", "analyze_module",
           "analyze_source"]

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One linter diagnostic with function/line provenance."""

    kind: str           # oob | uaf | double-free | invalid-free |
    #                     null-deref | uninit-deref | scope-escape |
    #                     dead-code
    severity: str       # error | warning | info
    function: str
    block: str
    line: int           # 1-based source line; 0 when unknown
    message: str

    def location(self) -> str:
        where = self.function
        if self.line:
            where += f":{self.line}"
        return where

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "severity": self.severity,
                "function": self.function, "block": self.block,
                "line": self.line, "message": self.message}


@dataclass
class AnalysisReport:
    """All findings for one module, plus summary counters."""

    name: str = "module"
    findings: List[Finding] = field(default_factory=list)

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.kind] = counts.get(f.kind, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return not self.errors()

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro.analyze/v1",
            "name": self.name,
            "ok": self.ok,
            "counts": self.counts_by_kind(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def text(self) -> str:
        if not self.findings:
            return f"{self.name}: clean (no findings)"
        lines = []
        for f in sorted(self.findings,
                        key=lambda f: (SEVERITIES.index(f.severity),
                                       f.function, f.line)):
            lines.append(f"{f.severity:7s} {f.location():24s} "
                         f"[{f.kind}] {f.message}")
        counts = self.counts_by_kind()
        summary = ", ".join(f"{counts[k]} {k}" for k in sorted(counts))
        lines.append(f"{self.name}: {len(self.findings)} finding"
                     f"{'s' if len(self.findings) != 1 else ''} "
                     f"({summary})")
        return "\n".join(lines)


def analyze_module(module: Module,
                   config: Optional[HwstConfig] = None,
                   stamp: bool = False) -> AnalysisReport:
    """Run the memory-safety analysis over every function."""
    config = config or HwstConfig()
    report = AnalysisReport(name=module.name)
    may_free = compute_may_free(module)
    for fn in module.functions.values():
        analysis = MemSafety(module, fn, config, may_free)
        result = run_forward(analysis, fn)
        seen = set()

        def record(ins, kind, severity, message,
                   _fn=fn, _result=result, _seen=seen):
            block = _block_of(_result.cfg, ins)
            dedup = (id(ins), kind, message)
            if dedup in _seen:
                return
            _seen.add(dedup)
            report.findings.append(Finding(
                kind=kind, severity=severity, function=_fn.name,
                block=block, line=getattr(ins, "line", 0),
                message=message))

        analysis.report(result, record, stamp=stamp)
        _dead_code_findings(fn, result.cfg, report)
    return report


def _block_of(cfg: CFG, ins) -> str:
    for label, blk in cfg.blocks.items():
        if ins in blk.instrs:
            return label
    return "?"


def _dead_code_findings(fn, cfg: CFG, report: AnalysisReport):
    """Unreachable ``dead.N`` blocks are statements irgen parked after
    a terminator — user code that can never run."""
    for label in cfg.unreachable_blocks():
        if not label.startswith("dead."):
            continue
        blk = cfg.blocks[label]
        # A dead block holding only its closing jump is a structural
        # artifact (e.g. the empty fallthrough of `if (...) return;`),
        # not user code — only real parked statements are worth a note.
        body = [ins for ins in blk.instrs if not ins.is_terminator()]
        if not body:
            continue
        line = next((ins.line for ins in body
                     if getattr(ins, "line", 0)), 0)
        report.findings.append(Finding(
            kind="dead-code", severity="info", function=fn.name,
            block=label, line=line,
            message="statement is unreachable (follows a return or "
                    "unconditional jump)"))


def analyze_source(source: str, name: str = "program",
                   config: Optional[HwstConfig] = None
                   ) -> AnalysisReport:
    """Front-end + analysis for mini-C source (no instrumentation)."""
    from repro.ir.irgen import lower_unit
    from repro.minic.lexer import tokenize
    from repro.minic.parser import Parser
    from repro.minic.sema import analyze

    tokens = tokenize(source)
    unit = Parser(tokens).parse_translation_unit()
    sema = analyze(unit)
    module = lower_unit(sema, name)
    return analyze_module(module, config)
