"""Call graph over an IR module, with SCC condensation.

The interprocedural analysis needs two orders:

* **bottom-up** (callees before callers) for computing function
  summaries to fixpoint — :meth:`CallGraph.sccs` returns strongly
  connected components in reverse-topological order of the
  condensation, which is exactly that order; and
* **top-down** (callers before callees) for context-sensitive
  re-analysis — :meth:`CallGraph.topo_down`.

Everything is deterministic: functions are visited in module
insertion order and call edges in first-occurrence order, so the
resulting orders (and every report derived from them) are stable
across runs and worker counts.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.ir import Call, Module

__all__ = ["CallGraph"]


class CallGraph:
    """Static call graph restricted to functions defined in-module.

    ``callees[f]`` / ``callers[f]`` list in-module neighbours in
    first-call order; ``externals[f]`` names callees that are *not*
    defined in the module (runtime helpers or truly unknown code).
    """

    def __init__(self, module: Module):
        self.module = module
        self.callees: Dict[str, List[str]] = {}
        self.callers: Dict[str, List[str]] = {}
        self.externals: Dict[str, List[str]] = {}
        for name in module.functions:
            self.callees[name] = []
            self.callers[name] = []
            self.externals[name] = []
        for name, fn in module.functions.items():
            seen: Set[str] = set()
            for blk in fn.blocks:
                for ins in blk.instrs:
                    if not isinstance(ins, Call) or ins.name in seen:
                        continue
                    seen.add(ins.name)
                    if ins.name in module.functions:
                        self.callees[name].append(ins.name)
                        self.callers[ins.name].append(name)
                    else:
                        self.externals[name].append(ins.name)
        self._sccs = self._tarjan()
        self._scc_of: Dict[str, int] = {}
        for i, comp in enumerate(self._sccs):
            for name in comp:
                self._scc_of[name] = i

    # -- orders ------------------------------------------------------------

    def sccs(self) -> List[List[str]]:
        """SCCs in bottom-up order (every callee's component comes
        before its callers' components)."""
        return self._sccs

    def topo_down(self) -> List[str]:
        """Function names with callers before callees (SCC members
        stay grouped, in module order within the component)."""
        order: List[str] = []
        for comp in reversed(self._sccs):
            order.extend(comp)
        return order

    def in_cycle(self, name: str) -> bool:
        """True when the function sits on a call cycle (including
        direct self-recursion)."""
        comp = self._sccs[self._scc_of[name]]
        return len(comp) > 1 or name in self.callees[name]

    # -- Tarjan ------------------------------------------------------------

    def _tarjan(self) -> List[List[str]]:
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        def strongconnect(root: str):
            # Iterative Tarjan: (node, iterator position) work stack.
            work = [(root, 0)]
            while work:
                node, pos = work.pop()
                if pos == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                succs = self.callees[node]
                for i in range(pos, len(succs)):
                    succ = succs[i]
                    if succ not in index:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if recurse:
                    continue
                if low[node] == index[node]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    # Keep module order inside the component.
                    comp.sort(key=list(self.module.functions).index)
                    sccs.append(comp)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])

        for name in self.module.functions:
            if name not in index:
                strongconnect(name)
        return sccs
