"""Interprocedural driver: summaries bottom-up, contexts top-down.

:func:`analyze_module_interproc` is the one entry point the linter and
the compile pipeline share. It

1. builds the call graph and condenses it (:mod:`callgraph`),
2. computes :class:`FunctionSummary` objects bottom-up over the SCCs
   (:mod:`summaries`),
3. re-analyzes every function top-down (callers first) with
   :class:`MemSafety` in interprocedural mode, feeding each call
   site's facts forward as a :class:`FnContext` join.

Context-sensitivity policy (documented in docs/analysis.md): one
context per function, the *join* over every call site. A function is
eligible for a context only when it is not ``main``, not on a call
cycle, and — guaranteed by the top-down order — every caller has
already been analyzed, so the join is complete before the callee runs.
Everything is deterministic and single-threaded per module; reports
are byte-identical across runs and worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.analyze.callgraph import CallGraph
from repro.analyze.dataflow import run_forward
from repro.analyze.memsafety import MemSafety, Recorder
from repro.analyze.summaries import FnContext, compute_summaries
from repro.core.config import HwstConfig
from repro.ir.ir import Function, Module

__all__ = ["analyze_module_interproc", "FunctionAnalysis",
           "InterprocStats"]


@dataclass
class InterprocStats:
    """Counters surfaced as ``compile.analyze.summary.*``."""

    functions: int = 0
    sccs: int = 0
    scc_iterations: int = 0
    callsites_refined: int = 0
    contexts_applied: int = 0
    checks_hoisted: int = 0      # filled in by the elision pass
    cross_call_elided: int = 0   # filled in by the elision pass

    def to_meta(self) -> Dict[str, int]:
        return {
            "summary.functions": self.functions,
            "summary.sccs": self.sccs,
            "summary.scc_iterations": self.scc_iterations,
            "summary.callsites_refined": self.callsites_refined,
            "summary.contexts_applied": self.contexts_applied,
            "summary.checks_hoisted": self.checks_hoisted,
            "summary.cross_call_elided": self.cross_call_elided,
        }


@dataclass
class FunctionAnalysis:
    """One function's fixpoint plus the analysis instance that owns
    it (kept so the elision pass can re-run transfers for hoisting
    proofs)."""

    fn: Function
    result: object          # DataflowResult
    analysis: MemSafety
    contexts: Dict[str, FnContext] = field(default_factory=dict)


def analyze_module_interproc(
        module: Module,
        config: Optional[HwstConfig] = None,
        recorder_factory: Optional[
            Callable[[Function], Recorder]] = None,
        stamp: bool = False,
) -> tuple:
    """Analyze a whole module interprocedurally.

    Returns ``(per_function, stats)`` where ``per_function`` maps the
    function name to its :class:`FunctionAnalysis` in analysis
    (top-down) order.
    """
    cg = CallGraph(module)
    summaries, scc_iterations = compute_summaries(module, cg)
    stats = InterprocStats(functions=len(module.functions),
                           sccs=len(cg.sccs()),
                           scc_iterations=scc_iterations)

    contexts: Dict[str, FnContext] = {}
    per_function: Dict[str, FunctionAnalysis] = {}
    for name in cg.topo_down():
        fn = module.functions[name]
        context = contexts.get(name)
        if context is not None:
            stats.contexts_applied += 1
        ms = MemSafety(module, fn, config, summaries=summaries,
                       context=context)
        result = run_forward(ms, fn)
        recorder = recorder_factory(fn) if recorder_factory \
            else (lambda *a: None)
        ms.report(result, recorder, stamp=stamp)
        stats.callsites_refined += ms.callsites_refined
        per_function[name] = FunctionAnalysis(fn, result, ms,
                                              contexts)
        # Feed this function's call-site facts to eligible callees
        # (not main, not on a cycle, not a self-call); the top-down
        # order guarantees the join is complete before they run.
        for callee, entries in ms.callsites:
            if callee == name or callee == "main" or \
                    cg.in_cycle(callee):
                continue
            ctx = FnContext(entries)
            cur = contexts.get(callee)
            contexts[callee] = ctx if cur is None \
                else cur.join(ctx)
    return per_function, stats
