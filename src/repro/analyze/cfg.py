"""Control-flow graph over :class:`repro.ir.ir.Function` blocks.

The IR transfers control only at block terminators (``Br``/``Jmp``/
``Ret``), so edges fall straight out of the last instruction of each
block. On top of the raw edge sets this module provides the standard
orderings and summaries every dataflow client wants:

* reverse postorder (the iteration order that makes forward fixpoints
  converge quickly on reducible graphs);
* the set of blocks reachable from entry (irgen deliberately parks
  statically dead user code in unreachable ``dead.N`` blocks, and
  ``if``/``else`` arms that both return leave an unreachable join
  block behind — clients must be able to tell these apart from live
  code);
* immediate dominators via the Cooper-Harvey-Kennedy iterative
  algorithm, plus ``dominates`` queries for the check-elision client.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.ir import BasicBlock, Br, Function, Jmp

__all__ = ["CFG", "block_successors"]


def block_successors(block: BasicBlock) -> Tuple[str, ...]:
    """Successor labels of one block (empty for ``Ret``-terminated)."""
    if not block.instrs:
        return ()
    last = block.instrs[-1]
    if isinstance(last, Br):
        if last.then_label == last.else_label:
            return (last.then_label,)
        return (last.then_label, last.else_label)
    if isinstance(last, Jmp):
        return (last.label,)
    return ()


class CFG:
    """Successor/predecessor maps + orderings for one function."""

    def __init__(self, fn: Function):
        self.fn = fn
        self.blocks: Dict[str, BasicBlock] = {
            blk.label: blk for blk in fn.blocks}
        self.entry: str = fn.blocks[0].label if fn.blocks else ""
        self.succs: Dict[str, Tuple[str, ...]] = {}
        self.preds: Dict[str, List[str]] = {
            blk.label: [] for blk in fn.blocks}
        for blk in fn.blocks:
            succs = block_successors(blk)
            self.succs[blk.label] = succs
            for succ in succs:
                # Missing targets are the verifier's job; tolerate here.
                if succ in self.preds:
                    self.preds[succ].append(blk.label)
        self.reachable: Set[str] = self._reachable_from_entry()
        self.rpo: List[str] = self._reverse_postorder()
        self.rpo_index: Dict[str, int] = {
            label: i for i, label in enumerate(self.rpo)}
        self._idom: Optional[Dict[str, Optional[str]]] = None

    # -- orderings ---------------------------------------------------------

    def _reachable_from_entry(self) -> Set[str]:
        seen: Set[str] = set()
        stack = [self.entry] if self.entry else []
        while stack:
            label = stack.pop()
            if label in seen or label not in self.blocks:
                continue
            seen.add(label)
            stack.extend(self.succs.get(label, ()))
        return seen

    def _reverse_postorder(self) -> List[str]:
        """Iterative DFS postorder over reachable blocks, reversed."""
        order: List[str] = []
        seen: Set[str] = set()
        if not self.entry:
            return order
        stack: List[Tuple[str, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            label, child = stack[-1]
            succs = self.succs.get(label, ())
            if child < len(succs):
                stack[-1] = (label, child + 1)
                nxt = succs[child]
                if nxt not in seen and nxt in self.blocks:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(label)
        order.reverse()
        return order

    def unreachable_blocks(self) -> List[str]:
        """Labels with no CFG path from entry, in layout order."""
        return [blk.label for blk in self.fn.blocks
                if blk.label not in self.reachable]

    def back_edges(self) -> List[Tuple[str, str]]:
        """Edges (a, b) where b appears at or before a in RPO (loop
        back-edges on reducible graphs)."""
        edges = []
        for label in self.rpo:
            for succ in self.succs.get(label, ()):
                if succ in self.rpo_index and \
                        self.rpo_index[succ] <= self.rpo_index[label]:
                    edges.append((label, succ))
        return edges

    def loop_heads(self) -> Set[str]:
        return {head for _, head in self.back_edges()}

    # -- dominators --------------------------------------------------------

    @property
    def idom(self) -> Dict[str, Optional[str]]:
        """Immediate dominator per reachable block (entry maps to None)."""
        if self._idom is None:
            self._idom = self._compute_idoms()
        return self._idom

    def _compute_idoms(self) -> Dict[str, Optional[str]]:
        idom: Dict[str, str] = {}
        if not self.entry:
            return {}
        idom[self.entry] = self.entry

        def intersect(a: str, b: str) -> str:
            while a != b:
                while self.rpo_index[a] > self.rpo_index[b]:
                    a = idom[a]
                while self.rpo_index[b] > self.rpo_index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for label in self.rpo:
                if label == self.entry:
                    continue
                new_idom = None
                for pred in self.preds.get(label, ()):
                    if pred not in idom:
                        continue  # pred not processed / unreachable
                    new_idom = pred if new_idom is None \
                        else intersect(pred, new_idom)
                if new_idom is not None and \
                        idom.get(label) != new_idom:
                    idom[label] = new_idom
                    changed = True
        out: Dict[str, Optional[str]] = dict(idom)
        out[self.entry] = None
        return out

    def dominates(self, a: str, b: str) -> bool:
        """True when every path from entry to ``b`` passes through ``a``
        (reflexive). Unreachable blocks dominate nothing and are
        dominated by everything reaching them vacuously — we return
        False for any query touching one."""
        if a not in self.reachable or b not in self.reachable:
            return False
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            node = self.idom.get(node)
        return False

    def dominator_tree(self) -> Dict[str, List[str]]:
        tree: Dict[str, List[str]] = {label: [] for label in self.rpo}
        for label, parent in self.idom.items():
            if parent is not None:
                tree[parent].append(label)
        return tree
