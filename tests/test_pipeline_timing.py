"""Unit tests for the pipeline timing model."""

import pytest

from repro.isa.instructions import Instr
from repro.pipeline.cache import CacheParams
from repro.pipeline.timing import InOrderPipeline, TimingParams


def pipe(**kwargs):
    return InOrderPipeline(TimingParams(**kwargs))


def retire(p, op, rd=0, rs1=0, rs2=0, mem=None, store=False,
           taken=False, kb=None, mem2=None):
    p.retire(Instr(op, rd=rd, rs1=rs1, rs2=rs2), mem, store, taken,
             kb, mem2)


class TestBaseCosts:
    def test_alu_is_one_cycle(self):
        p = pipe()
        retire(p, "add", rd=1, rs1=2, rs2=3)
        assert p.cycles == 1

    def test_load_use_stall(self):
        p = pipe()
        retire(p, "ld", rd=5, rs1=2, mem=0x1000)
        miss = p.params.dcache_miss_penalty
        retire(p, "addi", rd=6, rs1=5)   # consumes the load
        assert p.cycles == 2 + miss + p.params.load_use_stall

    def test_no_stall_with_gap(self):
        p = pipe()
        retire(p, "ld", rd=5, rs1=2, mem=0x1000)
        retire(p, "addi", rd=7, rs1=8)   # unrelated
        retire(p, "addi", rd=6, rs1=5)   # one cycle later: bypassed
        assert p.breakdown["load_use"] == 0

    def test_taken_branch_penalty(self):
        p = pipe()
        retire(p, "beq", rs1=1, rs2=2, taken=True)
        assert p.cycles == 1 + p.params.branch_penalty

    def test_untaken_branch_is_free(self):
        p = pipe()
        retire(p, "beq", rs1=1, rs2=2, taken=False)
        assert p.cycles == 1

    def test_jump_penalty(self):
        p = pipe()
        retire(p, "jal", rd=1, taken=True)
        assert p.cycles == 1 + p.params.jump_penalty

    def test_mul_div_latency(self):
        p = pipe()
        retire(p, "mul", rd=1, rs1=2, rs2=3)
        retire(p, "div", rd=1, rs1=2, rs2=3)
        assert p.cycles == 2 + p.params.mul_latency + \
            p.params.div_latency


class TestMemorySystem:
    def test_miss_then_hit(self):
        p = pipe()
        retire(p, "ld", rd=1, rs1=2, mem=0x2000)
        first = p.cycles
        retire(p, "sd", rs1=2, rs2=3, mem=0x2008, store=True)
        assert first == 1 + p.params.dcache_miss_penalty
        assert p.cycles == first + 1   # same line hits

    def test_custom_cache_params(self):
        p = pipe(cache=CacheParams(size_bytes=64, ways=1,
                                   line_bytes=32))
        retire(p, "ld", rd=1, rs1=2, mem=0x0)
        retire(p, "ld", rd=1, rs1=2, mem=0x40)  # maps to same set
        retire(p, "ld", rd=1, rs1=2, mem=0x0)   # evicted -> miss
        assert p.dcache.misses == 3


class TestHwstCosts:
    def test_tchk_hit_occupancy(self):
        p = pipe()
        retire(p, "tchk", rs1=5, kb=True)
        assert p.cycles == 1 + p.params.tchk_occupancy

    def test_tchk_miss_pays_key_load(self):
        p = pipe()
        retire(p, "tchk", rs1=5, kb=False, mem2=0x1000_0000)
        hit = 1 + p.params.tchk_occupancy
        assert p.cycles > hit + 1   # key load (miss) + fill

    def test_bind_extra(self):
        p = pipe()
        retire(p, "bndrs", rd=1, rs1=2, rs2=3)
        assert p.cycles == 1 + p.params.bind_extra

    def test_shadow_access_smac(self):
        p = pipe()
        retire(p, "ld", rd=1, rs1=2, mem=0x100)     # warm nothing
        base = p.cycles
        retire(p, "lbdls", rd=1, rs1=2, mem=0x1100_0000)
        extra = p.cycles - base
        assert extra >= 1 + p.params.smac_extra

    def test_srf_load_use_interlock(self):
        p = pipe()
        retire(p, "lbdus", rd=5, rs1=2, mem=0x1100_0000)
        before = p.breakdown["load_use"]
        retire(p, "tchk", rs1=5, kb=True)
        assert p.breakdown["load_use"] == before + \
            p.params.srf_load_use_stall

    def test_no_srf_interlock_for_other_reg(self):
        p = pipe()
        retire(p, "lbdus", rd=5, rs1=2, mem=0x1100_0000)
        before = p.breakdown["load_use"]
        retire(p, "tchk", rs1=6, kb=True)
        assert p.breakdown["load_use"] == before

    def test_mpx_walk_cost(self):
        p = pipe()
        retire(p, "ld", rd=1, rs1=2, mem=0x1100_0000)  # warm the line
        base = p.cycles
        retire(p, "bndldx", rd=1, rs1=2, mem=0x1100_0000)
        assert p.cycles - base >= 1 + p.params.mpx_walk_extra

    def test_avx_wide_beats(self):
        p = pipe()
        retire(p, "ld", rd=1, rs1=2, mem=0x1100_0000)
        base = p.cycles
        retire(p, "vld256", rd=1, rs1=2, mem=0x1100_0000)
        assert p.cycles - base >= 1 + p.params.wide_access_extra

    def test_vchk_vector_compare_cost(self):
        p = pipe()
        retire(p, "vchk", rs1=1, rs2=2)
        assert p.cycles == 1 + p.params.avx_check_extra


class TestAccounting:
    def test_breakdown_sums_to_cycles(self):
        p = pipe()
        retire(p, "ld", rd=5, rs1=2, mem=0x1000)
        retire(p, "addi", rd=6, rs1=5)
        retire(p, "beq", rs1=6, rs2=0, taken=True)
        retire(p, "tchk", rs1=6, kb=False, mem2=0x1000_0000)
        retire(p, "mul", rd=1, rs1=2, rs2=3)
        assert sum(p.breakdown.values()) == p.cycles

    def test_stats_exported(self):
        p = pipe()
        retire(p, "ld", rd=1, rs1=2, mem=0)
        stats = p.stats()
        assert stats["dcache_misses"] == 1
        assert "cyc_base" in stats

    def test_reset(self):
        p = pipe()
        retire(p, "ld", rd=1, rs1=2, mem=0)
        p.reset()
        assert p.cycles == 0
        assert p.dcache.misses == 0
        assert all(v == 0 for v in p.breakdown.values())
