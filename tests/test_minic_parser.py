"""Tests for the mini-C parser."""

import pytest

from repro.errors import ParseError
from repro.minic import ast, parse
from repro.minic.types import ArrayType, IntType, PointerType


def parse_expr(text):
    unit = parse(f"int main(void) {{ return {text}; }}")
    stmt = unit.functions[0].body.stmts[0]
    assert isinstance(stmt, ast.Return)
    return stmt.value


def parse_body(text):
    unit = parse(f"int main(void) {{ {text} }}")
    return unit.functions[0].body.stmts


class TestDeclarations:
    def test_global_scalar(self):
        unit = parse("int x;")
        assert unit.globals[0].name == "x"
        assert unit.globals[0].var_type == IntType(4, True)

    def test_global_pointer(self):
        unit = parse("long *p;")
        assert isinstance(unit.globals[0].var_type, PointerType)

    def test_global_array(self):
        unit = parse("char buf[32];")
        gtype = unit.globals[0].var_type
        assert isinstance(gtype, ArrayType) and gtype.count == 32

    def test_two_dimensional_array(self):
        unit = parse("int grid[3][4];")
        gtype = unit.globals[0].var_type
        assert gtype.count == 3 and gtype.elem.count == 4
        assert gtype.size == 48

    def test_array_size_from_initialiser(self):
        unit = parse("int a[] = {1, 2, 3};")
        assert unit.globals[0].var_type.count == 3

    def test_string_initialiser(self):
        unit = parse('char msg[] = "hey";')
        assert unit.globals[0].var_type.count == 4  # includes NUL

    def test_multiple_declarators(self):
        unit = parse("int a, *b, c[4];")
        names = [g.name for g in unit.globals]
        assert names == ["a", "b", "c"]
        assert isinstance(unit.globals[1].var_type, PointerType)

    def test_unsigned_types(self):
        unit = parse("unsigned char a; unsigned long b; unsigned c;")
        assert not unit.globals[0].var_type.signed
        assert unit.globals[1].var_type.size == 8
        assert unit.globals[2].var_type.size == 4

    def test_typedef(self):
        unit = parse("typedef unsigned int u32; u32 value;")
        assert unit.globals[0].var_type == IntType(4, False)

    def test_typedef_pointer(self):
        unit = parse("typedef struct N N; struct N { N *next; };")
        assert "N" in unit.struct_names

    def test_enum_constants(self):
        unit = parse("enum { A, B = 10, C }; int x[C];")
        assert unit.globals[0].var_type.count == 11

    def test_const_ignored(self):
        unit = parse("const int x = 5;")
        assert unit.globals[0].init.value == 5

    def test_array_dim_constant_expression(self):
        unit = parse("int x[4 * 2 + 1];")
        assert unit.globals[0].var_type.count == 9

    def test_sizeof_in_constant(self):
        unit = parse("char buf[sizeof(long) * 2];")
        assert unit.globals[0].var_type.count == 16


class TestStructs:
    def test_struct_definition(self):
        unit = parse("struct Point { int x; int y; }; struct Point p;")
        assert unit.globals[0].var_type.size == 8

    def test_struct_layout_padding(self):
        unit = parse("struct S { char c; long v; }; struct S s;")
        stype = unit.globals[0].var_type
        assert stype.size == 16
        assert stype.field_named("v").offset == 8

    def test_struct_array_member(self):
        unit = parse("struct S { int a[4]; char b; }; struct S s;")
        assert unit.globals[0].var_type.size == 20

    def test_union_rejected(self):
        with pytest.raises(ParseError):
            parse("union U { int a; };")


class TestFunctions:
    def test_params(self):
        unit = parse("int add(int a, long b) { return a; }")
        func = unit.functions[0]
        assert [p.name for p in func.params] == ["a", "b"]

    def test_void_params(self):
        unit = parse("int f(void) { return 0; }")
        assert unit.functions[0].params == []

    def test_void_pointer_param(self):
        unit = parse("int f(void *p) { return 0; }")
        assert isinstance(unit.functions[0].params[0].ctype, PointerType)

    def test_array_param_decays(self):
        unit = parse("int f(int a[8]) { return 0; }")
        assert isinstance(unit.functions[0].params[0].ctype, PointerType)

    def test_prototype_is_skipped(self):
        unit = parse("int f(int a); int f(int a) { return a; }")
        assert len(unit.functions) == 1


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+" and expr.right.op == "*"

    def test_precedence_shift_vs_compare(self):
        expr = parse_expr("1 << 2 < 3")
        assert expr.op == "<" and expr.left.op == "<<"

    def test_logical_precedence(self):
        expr = parse_expr("1 || 2 && 3")
        assert expr.op == "||" and expr.right.op == "&&"

    def test_right_assoc_assignment(self):
        stmts = parse_body("int a; int b; a = b = 1;")
        assign = stmts[2].expr
        assert isinstance(assign.value, ast.Assign)

    def test_unary_chain(self):
        expr = parse_expr("-~!0")
        assert expr.op == "-" and expr.operand.op == "~"

    def test_ternary(self):
        expr = parse_expr("1 ? 2 : 3")
        assert isinstance(expr, ast.Cond)

    def test_nested_ternary_right_assoc(self):
        expr = parse_expr("1 ? 2 : 3 ? 4 : 5")
        assert isinstance(expr.other, ast.Cond)

    def test_cast_vs_parenthesised_expr(self):
        expr = parse_expr("(long)1")
        assert isinstance(expr, ast.Cast)
        expr2 = parse_expr("(1)")
        assert isinstance(expr2, ast.IntLit)

    def test_cast_of_cast(self):
        expr = parse_expr("(int)(char)300")
        assert isinstance(expr, ast.Cast)
        assert isinstance(expr.operand, ast.Cast)

    def test_sizeof_type_and_expr(self):
        assert isinstance(parse_expr("sizeof(int)"), ast.SizeofType)
        unit = parse("int main(void) { int x; return sizeof x; }")
        ret = unit.functions[0].body.stmts[1]
        assert isinstance(ret.value, ast.SizeofExpr)

    def test_postfix_chain(self):
        expr = parse_expr("a[1].b->c")
        assert isinstance(expr, ast.Member) and expr.arrow
        assert isinstance(expr.base, ast.Member)
        assert isinstance(expr.base.base, ast.Index)

    def test_call_with_args(self):
        expr = parse_expr("f(1, 2, 3)")
        assert isinstance(expr, ast.Call) and len(expr.args) == 3

    def test_pre_increment_desugars(self):
        expr = parse_expr("++x")
        assert isinstance(expr, ast.Assign) and expr.op == "+="

    def test_post_increment(self):
        expr = parse_expr("x++")
        assert isinstance(expr, ast.PostIncDec)


class TestStatements:
    def test_if_else_chain(self):
        stmts = parse_body("if (1) { } else if (2) { } else { }")
        node = stmts[0]
        assert isinstance(node.other, ast.If)

    def test_while(self):
        stmts = parse_body("while (1) { break; }")
        assert isinstance(stmts[0], ast.While)

    def test_do_while(self):
        stmts = parse_body("do { } while (0);")
        assert isinstance(stmts[0], ast.DoWhile)

    def test_for_with_declaration(self):
        stmts = parse_body("for (int i = 0; i < 4; i++) { }")
        node = stmts[0]
        assert isinstance(node.init, ast.VarDecl)

    def test_for_empty_clauses(self):
        stmts = parse_body("for (;;) { break; }")
        node = stmts[0]
        assert node.init is None and node.cond is None and \
            node.step is None

    def test_local_initialiser_list(self):
        stmts = parse_body("int a[3] = {1, 2, 3};")
        assert isinstance(stmts[0], ast.VarDecl)
        assert len(stmts[0].init_list) == 3

    def test_empty_statement(self):
        stmts = parse_body(";")
        assert isinstance(stmts[0], ast.Block)

    def test_switch_rejected(self):
        with pytest.raises(ParseError):
            parse_body("switch (1) { }")

    def test_goto_rejected(self):
        with pytest.raises(ParseError):
            parse_body("goto out;")


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int main(void) { int a = 1 }")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse("int main(void) { return (1; }")

    def test_bad_toplevel(self):
        with pytest.raises(ParseError):
            parse("= 5;")
