"""Tests for ``repro serve``: protocol, stores, supervision, HTTP app.

The soak test at the bottom is the issue's acceptance criterion: 300+
requests at concurrency 8 against a live server with a planted worker
crash and a corrupted disk artifact mid-run — zero hung or dropped
requests, every served verdict byte-identical to the offline
:func:`repro.serve.protocol.evaluate` result, and ``/metrics``
reporting the planted shed/restart/repair counts.
"""

import asyncio
import json
import os
import subprocess
import sys
import time

import pytest

from repro import errors
from repro.core.config import HwstConfig
from repro.harness.compile_cache import CompileCache, DiskArtifactStore
from repro.obs.metrics import MetricsRegistry, to_prometheus
from repro.serve.app import ServeApp
from repro.serve.protocol import DEFAULT_MAX_INSTRUCTIONS, \
    DEFAULT_SCHEMES, MAX_INSTRUCTIONS_CAP, RequestError, SCHEMA, \
    canonical_json, evaluate, parse_request, request_fingerprint
from repro.serve.store import ResultCache
from repro.serve.supervisor import CRASH_EXIT_CODE, STATUS_DEGRADED, \
    STATUS_QUARANTINED, STATUS_SERVED, ServeCell, Supervisor

CLEAN = """
int main(void) {
    long *p = (long*)malloc(8);
    p[0] = 41;
    long v = p[0] + 1;
    free(p);
    print_int(v);
    return 0;
}
"""

TEMPORAL = """
int main(void) {
    long *p = (long*)malloc(8);
    free(p);
    return (int)(p[0] & 0);
}
"""

BAD_SYNTAX = "int main(void) { return undeclared; }"

INFINITE_LOOP = "int main(void) { while (1) {} return 0; }"

#: Distinct deterministic soak workloads (indexed by %d).
SOAK_TEMPLATE = """
int main(void) {
    long acc = %d;
    long i = 0;
    while (i < %d) { acc = acc + i; i = i + 1; }
    long *p = (long*)malloc(16);
    p[0] = acc;
    p[1] = 2;
    print_int(p[0] + p[1]);
    free(p);
    return 0;
}
"""


def _soak_sources(count=10):
    return [SOAK_TEMPLATE % (i, 8 + i) for i in range(count)]


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


def _body(doc) -> bytes:
    return json.dumps(doc).encode("utf-8")


class TestParseRequest:
    def test_defaults(self):
        req = parse_request(_body({"source": CLEAN}))
        assert req["schemes"] == DEFAULT_SCHEMES
        assert req["elide_checks"] is False
        assert req["max_instructions"] == DEFAULT_MAX_INSTRUCTIONS
        assert req["debug"] == {}
        assert len(req["fingerprint"]) == 64

    def test_fingerprint_is_stable_and_content_addressed(self):
        one = parse_request(_body({"source": CLEAN}))["fingerprint"]
        two = parse_request(_body({"source": CLEAN}))["fingerprint"]
        other = parse_request(_body({"source": TEMPORAL}))["fingerprint"]
        assert one == two
        assert one != other
        assert one == request_fingerprint(
            CLEAN, DEFAULT_SCHEMES, False, DEFAULT_MAX_INSTRUCTIONS)

    def test_options_change_the_fingerprint(self):
        base = parse_request(_body({"source": CLEAN}))["fingerprint"]
        elide = parse_request(_body(
            {"source": CLEAN, "elide_checks": True}))["fingerprint"]
        budget = parse_request(_body(
            {"source": CLEAN, "max_instructions": 1000}))["fingerprint"]
        assert len({base, elide, budget}) == 3

    def test_budget_is_capped_not_rejected(self):
        req = parse_request(_body(
            {"source": CLEAN,
             "max_instructions": MAX_INSTRUCTIONS_CAP * 10}))
        assert req["max_instructions"] == MAX_INSTRUCTIONS_CAP

    @pytest.mark.parametrize("body,kind,status", [
        (b"not json {", "bad_json", 400),
        (b"[1, 2]", "bad_request", 400),
        (_body({"source": ""}), "bad_source", 400),
        (_body({"source": 7}), "bad_source", 400),
        (_body({"source": "int main(void){return 0;}",
                "schemes": []}), "bad_schemes", 400),
        (_body({"source": "int main(void){return 0;}",
                "schemes": ["clang"]}), "unknown_scheme", 400),
        (_body({"source": "int main(void){return 0;}",
                "elide_checks": "yes"}), "bad_request", 400),
        (_body({"source": "int main(void){return 0;}",
                "max_instructions": 0}), "bad_request", 400),
        (_body({"source": "int main(void){return 0;}",
                "max_instructions": True}), "bad_request", 400),
        (_body({"source": "int main(void){return 0;}",
                "debug": {"crash": True}}), "bad_request", 400),
    ])
    def test_refusals(self, body, kind, status):
        with pytest.raises(RequestError) as err:
            parse_request(body)
        assert err.value.kind == kind
        assert err.value.http_status == status

    def test_oversized_source_is_413(self):
        big = "int main(void) { return 0; } //" + "x" * 70000
        with pytest.raises(RequestError) as err:
            parse_request(_body({"source": big}))
        assert err.value.kind == "source_too_large"
        assert err.value.http_status == 413

    def test_debug_block_gets_its_own_fingerprint(self):
        plain = parse_request(_body({"source": CLEAN}))
        faulty = parse_request(_body(
            {"source": CLEAN, "debug": {"crash": True}}),
            allow_debug=True)
        assert faulty["debug"] == {"crash": True}
        assert faulty["fingerprint"] != plain["fingerprint"]


class TestEvaluate:
    def test_envelope_is_deterministic_bytes(self):
        cache = CompileCache()
        one = evaluate(CLEAN, schemes=("gcc",), cache=cache)
        two = evaluate(CLEAN, schemes=("gcc",), cache=cache)
        assert canonical_json(one) == canonical_json(two)
        assert one["schema"] == SCHEMA
        verdict = one["verdicts"]["gcc"]
        assert verdict["status"] == "exit"
        assert verdict["cli_exit_code"] == errors.EXIT_OK
        assert "42" in verdict["output"]
        assert one["overhead"]["baseline_cycles"] > 0
        assert "gcc" in one["overhead"]["pct_by_scheme"]

    def test_verdict_exit_code_matches_the_cli(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "temporal.c"
        path.write_text(TEMPORAL)
        cli_rc = main(["run", str(path), "--scheme", "hwst128_tchk"])
        envelope = evaluate(TEMPORAL, schemes=("hwst128_tchk",))
        verdict = envelope["verdicts"]["hwst128_tchk"]
        assert verdict["detected"] is True
        assert verdict["trap"]["class"] == "TemporalViolation"
        assert verdict["cli_exit_code"] == cli_rc == errors.EXIT_TEMPORAL

    def test_toolchain_failure_is_data_not_an_exception(self):
        envelope = evaluate(BAD_SYNTAX, schemes=("gcc",))
        verdict = envelope["verdicts"]["gcc"]
        assert verdict["status"] == "toolchain_error"
        assert verdict["cli_exit_code"] == errors.EXIT_TOOLCHAIN
        assert envelope["overhead"]["baseline_cycles"] is None


class TestResultCache:
    def test_lru_and_counters(self):
        cache = ResultCache(max_entries=2)
        assert cache.get("a") is None
        cache.put("a", {"n": 1})
        cache.put("b", {"n": 2})
        assert cache.get("a") == {"n": 1}   # refreshes a
        cache.put("c", {"n": 3})            # evicts b, the oldest
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        snap = cache.stats_snapshot()
        assert snap["serve.result_cache.entries"] == 2
        assert snap["serve.result_cache.hits"] == 3
        assert snap["serve.result_cache.misses"] == 2
        assert snap["serve.result_cache.evictions"] == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestPrometheusRendering:
    def test_scalars_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests.total").inc(3)
        registry.gauge("serve.active_requests").set(1)
        for value in (0.1, 0.2, 0.3):
            registry.histogram("serve.latency_s").observe(value)
        text = to_prometheus(registry.snapshot())
        assert "repro_serve_requests_total 3" in text
        assert "repro_serve_active_requests 1" in text
        assert "# TYPE repro_serve_latency_s summary" in text
        assert 'repro_serve_latency_s{quantile="0.5"}' in text
        assert "repro_serve_latency_s_count 3" in text
        assert text.endswith("\n")


# ---------------------------------------------------------------------------
# on-disk artifact store hardening
# ---------------------------------------------------------------------------


class TestDiskArtifactStore:
    def test_roundtrip_and_miss(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        assert store.load("deadbeef") is None
        store.store("deadbeef", {"payload": 1})
        assert store.load("deadbeef") == {"payload": 1}
        assert store.misses == 1 and store.hits == 1

    def test_corruption_is_repaired_not_fatal(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.store("k", [1, 2, 3])
        artifact = store._artifact("k")
        artifact.write_bytes(b"not a pickled sealed entry")
        assert store.load("k") is None
        assert store.corrupt == 1
        assert not artifact.exists()    # deleted, ready for re-publish
        store.store("k", [1, 2, 3])
        assert store.load("k") == [1, 2, 3]

    def test_stale_lock_of_dead_holder_is_broken(self, tmp_path):
        store = DiskArtifactStore(tmp_path, stale_lock_s=3600)
        probe = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True)
        dead_pid = int(probe.stdout.strip())
        store._lockfile("k").write_text(f"{dead_pid}\n")
        assert store.acquire("k") is True
        assert store.lock_breaks == 1
        store._unlock("k")

    def test_overaged_lock_is_broken(self, tmp_path):
        store = DiskArtifactStore(tmp_path, stale_lock_s=1.0)
        lock = store._lockfile("k")
        lock.write_text(f"{os.getpid()}\n")
        past = time.time() - 60
        os.utime(lock, (past, past))
        assert store.acquire("k") is True
        assert store.lock_breaks == 1
        store._unlock("k")

    def test_live_lock_is_respected(self, tmp_path):
        store = DiskArtifactStore(tmp_path, stale_lock_s=3600)
        lock = store._lockfile("k")
        # A fresh lock whose holder (us) is alive must be respected.
        lock.write_text(f"{os.getpid()}\n")
        assert store.acquire("k") is False
        assert store.lock_breaks == 0

    def test_wait_for_returns_published_artifact(self, tmp_path):
        store = DiskArtifactStore(tmp_path, poll_s=0.01, lock_wait_s=5)
        store._lockfile("k").write_text(f"{os.getpid()}\n")
        store.store("k", "published")   # holder publishes...
        assert store.wait_for("k") == "published"
        assert store.lock_waits == 1

    def test_eviction_drops_oldest(self, tmp_path):
        store = DiskArtifactStore(tmp_path, max_bytes=1)
        store.store("old", "x" * 100)
        time.sleep(0.02)
        store.store("new", "y" * 100)
        # Cap of 1 byte: everything but the newest publish gets evicted.
        assert store.evictions >= 1
        assert not store._artifact("old").exists()


_RACE_CHILD = """
import json, sys, time
sys.path.insert(0, {src!r})
from repro.harness.compile_cache import CompileCache, DiskArtifactStore

root, go, out, source = sys.argv[1:5]
cache = CompileCache(disk=DiskArtifactStore(root, stale_lock_s=30.0))
import os
deadline = time.monotonic() + 30
while not os.path.exists(go):
    if time.monotonic() > deadline:
        raise SystemExit("never released")
    time.sleep(0.001)
program = cache.compile(open(source).read(), "gcc")
with open(out, "w") as fh:
    json.dump({{"ok": program is not None,
                "stats": cache.stats_snapshot()}}, fh)
"""


class TestConcurrentWriters:
    def test_two_processes_race_one_key(self, tmp_path):
        """Two processes compiling the identical program key must end
        with one valid artifact, no leftover locks, and coherent
        counters — never a crash or a torn blob."""
        src_dir = str((os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))) + "/src")
        script = tmp_path / "race_child.py"
        script.write_text(_RACE_CHILD.format(src=src_dir))
        source_file = tmp_path / "prog.c"
        source_file.write_text(CLEAN)
        root = tmp_path / "store"
        go = tmp_path / "go"
        outs = [tmp_path / "out_a.json", tmp_path / "out_b.json"]
        procs = [subprocess.Popen(
            [sys.executable, str(script), str(root), str(go),
             str(out), str(source_file)])
            for out in outs]
        time.sleep(0.3)             # both children polling for the gate
        go.write_text("go")
        for proc in procs:
            assert proc.wait(timeout=60) == 0
        reports = [json.loads(out.read_text()) for out in outs]
        assert all(report["ok"] for report in reports)

        artifacts = list((root / "objects").glob("*.art"))
        locks = list((root / "objects").glob("*.lock"))
        assert len(artifacts) == 1
        assert locks == []
        # The survivor must be loadable by a third party.
        fresh = DiskArtifactStore(root)
        key = artifacts[0].name[:-len(".art")]
        assert fresh.load(key) is not None
        # Coherence: at least one child actually compiled; nothing was
        # flagged corrupt by the race.
        total = lambda name: sum(
            r["stats"][f"compile.cache.{name}"] for r in reports)
        assert total("misses") >= 1
        assert total("disk_corrupt") == 0

    def test_crashed_holder_does_not_wedge_the_key(self, tmp_path):
        """A lock left by a holder that died mid-compile is broken and
        the key recompiled — cross-process stale-lock recovery."""
        root = tmp_path / "store"
        store = DiskArtifactStore(root, stale_lock_s=3600)
        cache = CompileCache(disk=store)
        key = cache.program_key(CLEAN, "gcc", HwstConfig())
        probe = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True)
        store._lockfile(key).write_text(f"{probe.stdout.strip()}\n")
        program = cache.compile(CLEAN, "gcc")
        assert program is not None
        assert store.lock_breaks == 1
        assert store._artifact(key).exists()
        assert not store._lockfile(key).exists()


# ---------------------------------------------------------------------------
# supervisor
# ---------------------------------------------------------------------------


def _cell(source=CLEAN, fingerprint="fp", **kwargs):
    return ServeCell(source=source, schemes=("gcc",),
                     fingerprint=fingerprint, **kwargs)


class TestSupervisor:
    def test_happy_cell_returns_envelope_and_delta(self, tmp_path):
        with Supervisor(jobs=1, disk_root=str(tmp_path)) as sup:
            result, delta, meta = sup.run_cell(_cell())
            assert result.status == STATUS_SERVED
            envelope = result.extra["envelope"]
            assert envelope["verdicts"]["gcc"]["status"] == "exit"
            assert meta.attempts == 1 and meta.worker_deaths == 0
            assert any(name.startswith("compile.cache.")
                       for name in delta)
            assert sup.cells_completed == 1

    def test_crash_storm_quarantine_and_recovery(self, tmp_path):
        sup = Supervisor(jobs=1, disk_root=str(tmp_path),
                         max_attempts=2, backoff_base_s=0.01,
                         backoff_cap_s=0.05, breaker_threshold=2,
                         breaker_cooldown_s=0.4, degraded_after=50)
        with sup:
            crash = _cell(fingerprint="crasher", debug_crash=True)
            result, _, meta = sup.run_cell(crash)
            assert result.status == "worker_died"
            assert meta.attempts == 2 and meta.worker_deaths == 2
            assert meta.breaker_opened
            assert sup.total_deaths == 2 and sup.total_restarts == 2

            # Identical fingerprint while the breaker is open: refused
            # without touching the pool.
            result, _, meta = sup.run_cell(crash)
            assert result.status == STATUS_QUARANTINED
            assert meta.quarantined and meta.worker_deaths == 0
            assert sup.open_breakers() == 1

            # An innocent request recovers on a fresh pool generation.
            result, _, _ = sup.run_cell(_cell(fingerprint="innocent"))
            assert result.status == STATUS_SERVED
            assert not sup.degraded

            # After the cooldown one half-open trial goes through (and
            # crashes again here).
            time.sleep(0.45)
            result, _, meta = sup.run_cell(crash)
            assert result.status == "worker_died"
            assert meta.worker_deaths == 2

    def test_degraded_mode_refuses_until_restart(self, tmp_path):
        sup = Supervisor(jobs=1, disk_root=str(tmp_path),
                         max_attempts=3, backoff_base_s=0.01,
                         backoff_cap_s=0.05, degraded_after=3)
        with sup:
            result, _, _ = sup.run_cell(
                _cell(fingerprint="crasher", debug_crash=True))
            assert result.status == "worker_died"
            assert sup.degraded
            result, _, meta = sup.run_cell(_cell(fingerprint="other"))
            assert result.status == STATUS_DEGRADED
            assert meta.degraded

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE == 86


# ---------------------------------------------------------------------------
# HTTP app
# ---------------------------------------------------------------------------


async def _http(port, method, path, payload=b"", raw_head=None,
                timeout=60.0):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        if raw_head is None:
            head = (f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: close\r\n\r\n").encode("latin-1")
        else:
            head = raw_head
        writer.write(head + payload)
        await writer.drain()
        blob = await asyncio.wait_for(reader.read(), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass
    head_blob, _, body = blob.partition(b"\r\n\r\n")
    lines = head_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


async def _post_check(port, doc, timeout=60.0):
    return await _http(port, "POST", "/v1/check",
                       payload=_body(doc), timeout=timeout)


def _stripped(body: bytes):
    doc = json.loads(body)
    transport = doc.pop("transport")
    return doc, transport


class _RunningApp:
    """Async context manager: started app + its run() task."""

    def __init__(self, app):
        self.app = app
        self.task = None

    async def __aenter__(self):
        await self.app.start()
        self.task = asyncio.create_task(self.app.run())
        return self.app

    async def __aexit__(self, exc_type, exc, tb):
        self.app.request_shutdown()
        try:
            await self.task
        except errors.DrainTimeout:
            if exc_type is None:
                raise
        return False


@pytest.fixture(scope="module")
def shared_supervisor(tmp_path_factory):
    root = tmp_path_factory.mktemp("artifact-store")
    with Supervisor(jobs=2, disk_root=str(root),
                    backoff_base_s=0.01, backoff_cap_s=0.1) as sup:
        sup.warm()
        yield sup


class TestServeApp:
    def test_roundtrip_cache_and_coalescing(self, shared_supervisor):
        offline = evaluate(CLEAN, schemes=("gcc",),
                           cache=CompileCache())
        expected = canonical_json(offline)

        async def scenario():
            app = ServeApp(shared_supervisor, port=0)
            async with _RunningApp(app):
                doc = {"source": CLEAN, "schemes": ["gcc"]}
                status, headers, body = await _post_check(app.port, doc)
                assert status == 200
                assert headers["content-type"] == "application/json"
                served, transport = _stripped(body)
                assert canonical_json(served) == expected
                assert transport == {"cached": False,
                                     "coalesced": False}

                # Identical request: answered from the result cache.
                status, _, body = await _post_check(app.port, doc)
                assert status == 200
                served, transport = _stripped(body)
                assert canonical_json(served) == expected
                assert transport["cached"] is True

                # Two concurrent identical *fresh* requests coalesce.
                fresh = {"source": _soak_sources()[9],
                         "schemes": ["gcc"]}
                pair = await asyncio.gather(
                    _post_check(app.port, fresh),
                    _post_check(app.port, fresh))
                assert [status for status, _, _ in pair] == [200, 200]
                flags = sorted(_stripped(body)[1]["coalesced"]
                               for _, _, body in pair)
                assert flags == [False, True]
                bodies = {canonical_json(_stripped(body)[0])
                          for _, _, body in pair}
                assert len(bodies) == 1

        asyncio.run(scenario())

    def test_refusals_and_routes(self, shared_supervisor):
        async def scenario():
            app = ServeApp(shared_supervisor, port=0)
            async with _RunningApp(app):
                port = app.port
                status, _, body = await _http(
                    port, "POST", "/v1/check", payload=b"{nope")
                assert status == 400
                assert json.loads(body)["error"]["kind"] == "bad_json"

                status, _, body = await _post_check(
                    port, {"source": CLEAN, "schemes": ["clang"]})
                assert status == 400
                assert json.loads(body)["error"]["kind"] == \
                    "unknown_scheme"

                status, _, _ = await _http(port, "GET", "/v1/check")
                assert status == 405
                status, _, _ = await _http(port, "GET", "/nothing")
                assert status == 404

                big = "int main(void) { return 0; }" + " " * 70000
                status, _, body = await _post_check(
                    port, {"source": big})
                assert status == 413

                # A debug block is refused without --debug-faults.
                status, _, body = await _post_check(
                    port, {"source": CLEAN, "debug": {"crash": True}})
                assert status == 400

                # Compile errors are verdicts, not HTTP errors.
                status, _, body = await _post_check(
                    port, {"source": BAD_SYNTAX, "schemes": ["gcc"]})
                assert status == 200
                served, _ = _stripped(body)
                verdict = served["verdicts"]["gcc"]
                assert verdict["status"] == "toolchain_error"
                assert verdict["cli_exit_code"] == errors.EXIT_TOOLCHAIN

        asyncio.run(scenario())

    def test_healthz_and_metrics(self, shared_supervisor):
        async def scenario():
            app = ServeApp(shared_supervisor, port=0)
            async with _RunningApp(app):
                await _post_check(app.port,
                                  {"source": CLEAN, "schemes": ["gcc"]})
                status, _, body = await _http(app.port, "GET",
                                              "/healthz")
                assert status == 200
                health = json.loads(body)
                assert health["status"] == "ok"
                assert health["draining"] is False
                assert health["cells_completed"] >= 1

                status, headers, body = await _http(app.port, "GET",
                                                    "/metrics")
                assert status == 200
                assert headers["content-type"].startswith("text/plain")
                text = body.decode()
                assert "repro_serve_requests_total" in text
                assert "repro_serve_result_cache_entries" in text

        asyncio.run(scenario())

    def test_admission_control_sheds_with_retry_after(
            self, shared_supervisor):
        async def scenario():
            app = ServeApp(shared_supervisor, port=0, queue_limit=1,
                           allow_debug=True)
            async with _RunningApp(app):
                slow = asyncio.create_task(_post_check(
                    app.port, {"source": CLEAN, "schemes": ["gcc"],
                               "debug": {"sleep_s": 0.6}}))
                await asyncio.sleep(0.2)    # slow request is admitted
                status, headers, body = await _post_check(
                    app.port,
                    {"source": _soak_sources()[8], "schemes": ["gcc"]})
                assert status == 429
                assert headers["retry-after"] == "1"
                assert json.loads(body)["error"]["kind"] == "overloaded"

                status, _, _ = await slow
                assert status == 200

                # Capacity is back: the shed request succeeds on retry.
                status, _, _ = await _post_check(
                    app.port,
                    {"source": _soak_sources()[8], "schemes": ["gcc"]})
                assert status == 200
                snapshot = app.registry.snapshot()
                assert snapshot["serve.requests.shed"] == 1

        asyncio.run(scenario())

    def test_deadline_maps_to_504(self, shared_supervisor):
        async def scenario():
            app = ServeApp(shared_supervisor, port=0, deadline_s=0.5)
            async with _RunningApp(app):
                status, _, body = await _post_check(
                    app.port,
                    {"source": INFINITE_LOOP, "schemes": ["gcc"],
                     "max_instructions": MAX_INSTRUCTIONS_CAP})
                assert status == 504
                assert json.loads(body)["error"]["kind"] == \
                    "deadline_exceeded"

        asyncio.run(scenario())

    def test_draining_rejects_new_completes_inflight(
            self, shared_supervisor):
        async def scenario():
            app = ServeApp(shared_supervisor, port=0, allow_debug=True,
                           drain_timeout_s=10)
            await app.start()
            run_task = asyncio.create_task(app.run())
            slow = asyncio.create_task(_post_check(
                app.port, {"source": CLEAN, "schemes": ["gcc"],
                           "debug": {"sleep_s": 0.5}}))
            await asyncio.sleep(0.2)
            # Connect *before* the drain closes the listener; the
            # request itself lands after shutdown and is shed.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", app.port)
            app.request_shutdown()
            await asyncio.sleep(0.05)
            payload = _body({"source": _soak_sources()[7],
                             "schemes": ["gcc"]})
            writer.write((f"POST /v1/check HTTP/1.1\r\nHost: t\r\n"
                          f"Content-Length: {len(payload)}\r\n\r\n")
                         .encode("latin-1") + payload)
            await writer.drain()
            blob = await asyncio.wait_for(reader.read(), timeout=10)
            writer.close()
            head, _, body = blob.partition(b"\r\n\r\n")
            assert b"503" in head.split(b"\r\n")[0]
            assert b"Retry-After: 1" in head
            assert json.loads(body)["error"]["kind"] == "draining"
            status, _, _ = await slow   # in-flight request completes
            assert status == 200
            await run_task              # drain finishes cleanly

        asyncio.run(scenario())

    def test_drain_timeout_raises_and_counts_dropped(
            self, shared_supervisor):
        async def scenario():
            app = ServeApp(shared_supervisor, port=0, allow_debug=True,
                           drain_timeout_s=0.2)
            await app.start()
            run_task = asyncio.create_task(app.run())
            slow = asyncio.create_task(_post_check(
                app.port, {"source": CLEAN, "schemes": ["gcc"],
                           "debug": {"sleep_s": 1.0}}))
            await asyncio.sleep(0.2)
            app.request_shutdown()
            with pytest.raises(errors.DrainTimeout) as err:
                await run_task
            assert err.value.dropped >= 1
            snapshot = app.registry.snapshot()
            assert snapshot["serve.drain.dropped"] >= 1
            slow.cancel()

        asyncio.run(scenario())
        assert errors.exit_code_for(
            errors.DrainTimeout(1, 0.2)) == errors.EXIT_DRAIN_TIMEOUT


# ---------------------------------------------------------------------------
# soak: the issue's acceptance criterion
# ---------------------------------------------------------------------------


def _prom_value(text, metric):
    for line in text.splitlines():
        if line.startswith(metric + " "):
            return float(line.split()[-1])
    raise AssertionError(f"{metric} not in /metrics output")


class TestSoak:
    def test_soak_under_planted_faults(self, tmp_path):
        """300+ requests at concurrency 8 with a planted worker crash
        and a corrupted disk artifact mid-run: zero hung or dropped
        requests, byte-identical verdicts, honest planted-fault
        counters in /metrics, clean drain."""
        sources = _soak_sources()
        budgets = (DEFAULT_MAX_INSTRUCTIONS, 4_000_000)
        offline_cache = CompileCache()
        expected = {}
        for budget in budgets:
            for idx, source in enumerate(sources):
                envelope = evaluate(source, schemes=("gcc",),
                                    max_instructions=budget,
                                    cache=offline_cache)
                expected[(idx, budget)] = canonical_json(envelope)

        stats = asyncio.run(self._soak(tmp_path, sources, expected))

        assert stats["issued"] == stats["answered"]   # nothing dropped
        assert stats["issued"] >= 300
        metrics = stats["metrics"]
        assert _prom_value(metrics, "repro_serve_requests_shed") == 2
        assert _prom_value(metrics, "repro_serve_worker_deaths") == 4
        assert _prom_value(metrics, "repro_serve_worker_restarts") == 4
        assert _prom_value(metrics,
                           "repro_compile_cache_disk_corrupt") >= 1
        assert _prom_value(metrics,
                           "repro_serve_requests_total") >= 300

    async def _soak(self, tmp_path, sources, expected):
        supervisor = Supervisor(
            jobs=2, disk_root=str(tmp_path / "store"),
            max_attempts=4, backoff_base_s=0.01, backoff_cap_s=0.1,
            breaker_cooldown_s=60.0, degraded_after=100)
        app = ServeApp(supervisor, port=0, queue_limit=8,
                       deadline_s=60.0, drain_timeout_s=30.0,
                       allow_debug=True)
        stats = {"issued": 0, "answered": 0}
        gate = asyncio.Semaphore(8)

        async def check(idx, budget, debug=None):
            doc = {"source": sources[idx], "schemes": ["gcc"],
                   "max_instructions": budget}
            if debug:
                doc["debug"] = debug
            async with gate:
                for _ in range(40):
                    stats["issued"] += 1
                    status, headers, body = await _post_check(
                        app.port, doc)
                    stats["answered"] += 1
                    if status != 429:
                        break
                    assert headers["retry-after"] == "1"
                    await asyncio.sleep(0.1)
            assert status == 200, body
            served, _ = _stripped(body)
            assert canonical_json(served) == expected[(idx, budget)]
            return status

        async def shed_probe(tag):
            doc = {"source": sources[tag % len(sources)],
                   "schemes": ["gcc"],
                   "max_instructions": DEFAULT_MAX_INSTRUCTIONS,
                   "debug": {"sleep_s": 0.4, "tag": tag}}
            stats["issued"] += 1
            status, headers, body = await _post_check(app.port, doc)
            stats["answered"] += 1
            assert status in (200, 429), body
            if status == 200:
                served, _ = _stripped(body)
                assert canonical_json(served) == \
                    expected[(tag % len(sources),
                              DEFAULT_MAX_INSTRUCTIONS)]
            return status

        try:
            await app.start()
            run_task = asyncio.create_task(app.run())
            default = DEFAULT_MAX_INSTRUCTIONS

            # Phase 1: 150 requests over 10 distinct programs.
            await asyncio.gather(*(
                check(i % len(sources), default) for i in range(150)))

            # Planted fault 1: corrupt one on-disk artifact.
            artifacts = sorted(
                (tmp_path / "store" / "objects").glob("*.art"))
            assert artifacts, "phase 1 published no artifacts"
            artifacts[0].write_bytes(b"flipped bits, not a pickle")

            # Planted fault 2: a crashing request. Four attempts die
            # (metrics: 4 deaths, 4 restarts), the verdict is an
            # honest worker_died, and the breaker opens.
            stats["issued"] += 1
            status, _, body = await _post_check(
                app.port,
                {"source": sources[0], "schemes": ["gcc"],
                 "debug": {"crash": True}})
            stats["answered"] += 1
            assert status == 500
            assert json.loads(body)["error"]["kind"] == "worker_died"

            # Phase 2: 150 requests on a different budget. Fresh
            # post-crash workers must reload from disk, trip over the
            # corrupted artifact, and repair it.
            await asyncio.gather(*(
                check(i % len(sources), 4_000_000)
                for i in range(150)))

            # Planted fault 3: a burst of 10 concurrent slow requests
            # against queue_limit=8 — exactly two are shed with 429.
            outcomes = await asyncio.gather(*(
                shed_probe(tag) for tag in range(10)))
            assert sorted(outcomes).count(429) == 2

            status, _, body = await _http(app.port, "GET", "/metrics")
            assert status == 200
            stats["metrics"] = body.decode()

            status, _, body = await _http(app.port, "GET", "/healthz")
            health = json.loads(body)
            assert health["worker_deaths"] == 4
            assert status == 200        # crash storm did not degrade

            app.request_shutdown()
            await run_task              # clean drain: no DrainTimeout
        finally:
            supervisor.close()
        return stats
