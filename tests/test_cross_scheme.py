"""Cross-scheme functional equivalence on real workloads.

The foundation of every performance figure: all schemes must compute
the same thing. A representative workload subset runs under every
scheme; outputs and exit codes must match the baseline exactly.
"""

import pytest

from repro.harness.runner import run_workload
from repro.schemes import scheme_names

WORKLOAD_SUBSET = ("sha", "treeadd", "hmmer", "gobmk")
SCHEMES = [s for s in scheme_names() if s != "baseline"]

_baseline_cache = {}


def baseline(name):
    if name not in _baseline_cache:
        _baseline_cache[name] = run_workload(
            name, "baseline", scale="small", timing=False,
            max_instructions=30_000_000)
    return _baseline_cache[name]


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("name", WORKLOAD_SUBSET)
def test_scheme_preserves_workload_semantics(name, scheme):
    base = baseline(name)
    assert base.ok
    run = run_workload(name, scheme, scale="small", timing=False,
                       max_instructions=120_000_000)
    assert run.status == "exit", (name, scheme, run.status, run.detail)
    assert run.exit_code == 0, (name, scheme)
    assert run.output == base.output, (name, scheme)


@pytest.mark.parametrize("name", WORKLOAD_SUBSET)
def test_instrumentation_cost_ordering(name):
    """Instruction-count sanity: software schemes execute far more
    instructions than hardware schemes on the same workload."""
    sbcets = run_workload(name, "sbcets", scale="small", timing=False,
                          max_instructions=120_000_000)
    hwst = run_workload(name, "hwst128_tchk", scale="small",
                        timing=False, max_instructions=120_000_000)
    base = baseline(name)
    assert sbcets.instret > hwst.instret > base.instret


def test_timing_determinism():
    """Same workload, same scheme, twice: identical cycle counts."""
    first = run_workload("treeadd", "hwst128_tchk", scale="small")
    second = run_workload("treeadd", "hwst128_tchk", scale="small")
    assert first.cycles == second.cycles
    assert first.instret == second.instret
