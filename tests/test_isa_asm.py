"""Tests for the textual assembler/disassembler."""

import pytest

from repro.isa.asm import AsmError, assemble, disassemble
from repro.isa.instructions import Instr
from repro.schemes import compile_source
from repro.sim.machine import Machine
from repro.sim.program import Program
from repro.sim.memory import DEFAULT_LAYOUT


class TestAssembleBasics:
    def test_r_type(self):
        (ins,) = assemble("add t0, t1, t2")
        assert (ins.op, ins.rd, ins.rs1, ins.rs2) == ("add", 5, 6, 7)

    def test_i_type(self):
        (ins,) = assemble("addi a0, zero, -42")
        assert (ins.op, ins.rd, ins.imm) == ("addi", 10, -42)

    def test_load_store_memory_operands(self):
        load, store = assemble("ld t0, 16(sp)\nsd t0, -8(s0)")
        assert (load.op, load.rd, load.rs1, load.imm) == ("ld", 5, 2, 16)
        assert (store.op, store.rs2, store.rs1, store.imm) == \
            ("sd", 5, 8, -8)

    def test_hex_immediates(self):
        (ins,) = assemble("andi t0, t0, 0xFF")
        assert ins.imm == 0xFF

    def test_x_register_names(self):
        (ins,) = assemble("add x1, x2, x31")
        assert (ins.rd, ins.rs1, ins.rs2) == (1, 2, 31)

    def test_system_ops(self):
        ops = assemble("ecall\nebreak\nfence")
        assert [i.op for i in ops] == ["ecall", "ebreak", "fence"]

    def test_csr(self):
        (ins,) = assemble("csrrw zero, 0x800, t0")
        assert (ins.op, ins.imm, ins.rs1) == ("csrrw", 0x800, 5)

    def test_comments_and_blank_lines(self):
        ops = assemble("""
        # prologue
        addi sp, sp, -16   # grow stack

        ecall
        """)
        assert [i.op for i in ops] == ["addi", "ecall"]

    def test_listing_address_prefix_ignored(self):
        (ins,) = assemble("0x10000: addi t0, zero, 1")
        assert ins.op == "addi"

    def test_hwst_ops(self):
        ops = assemble("""
        bndrs t0, t1, t2
        bndrt t0, t3, t4
        tchk t0
        sbdl t0, 0(s0)
        lbdls t0, -24(s0)
        ld.chk a0, 0(t0)
        """)
        assert [i.op for i in ops] == ["bndrs", "bndrt", "tchk", "sbdl",
                                       "lbdls", "ld.chk"]
        assert ops[2].rs1 == 5


class TestLabels:
    def test_backward_branch(self):
        ops = assemble("""
        loop:
            addi t0, t0, -1
            bne t0, zero, loop
        """)
        assert ops[1].imm == -4

    def test_forward_jump(self):
        ops = assemble("""
            jal zero, end
            addi t0, zero, 1
        end:
            ecall
        """)
        assert ops[0].imm == 8

    def test_undefined_label(self):
        with pytest.raises(AsmError):
            assemble("jal zero, nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AsmError):
            assemble("a:\na:\necall")

    def test_numeric_target_kept_relative(self):
        (ins,) = assemble("beq t0, t1, 8")
        assert ins.imm == 8


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError):
            assemble("frobnicate t0, t1")

    def test_wrong_operand_count(self):
        with pytest.raises(AsmError):
            assemble("add t0, t1")

    def test_bad_register(self):
        with pytest.raises(AsmError):
            assemble("add t0, t1, t9")

    def test_bad_memory_operand(self):
        with pytest.raises(AsmError):
            assemble("ld t0, t1")

    def test_error_carries_line_number(self):
        with pytest.raises(AsmError) as err:
            assemble("addi t0, zero, 1\nbogus t0")
        assert err.value.line_no == 2


class TestRoundTrips:
    def test_disassemble_assemble_identity(self):
        source = """
        int sum(int n) {
            int total = 0;
            int i;
            for (i = 1; i <= n; i++) { total += i; }
            return total;
        }
        int main(void) { return sum(10) - 55; }
        """
        program = compile_source(source, "hwst128_tchk")
        text = disassemble(program.instrs, base_pc=program.text_base,
                           symbols=program.symbols)
        rebuilt = assemble(text, base_pc=program.text_base)
        assert len(rebuilt) == len(program.instrs)
        for a, b in zip(program.instrs, rebuilt):
            assert (a.op, a.rd, a.rs1, a.rs2, a.imm) == \
                (b.op, b.rd, b.rs1, b.rs2, b.imm)

    def test_assembled_program_executes(self):
        """Hand-written assembly runs on the machine: sum 1..5 then
        exit with the total."""
        text = """
        _start:
            addi t0, zero, 5
            addi a0, zero, 0
        loop:
            add a0, a0, t0
            addi t0, t0, -1
            bne t0, zero, loop
            addi a7, zero, 93
            ecall
        """
        instrs = assemble(text, base_pc=DEFAULT_LAYOUT.text_base)
        program = Program(instrs=instrs,
                          entry=DEFAULT_LAYOUT.text_base)
        result = Machine().run(program)
        assert result.status == "exit"
        assert result.exit_code == 15
