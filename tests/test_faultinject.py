"""Tests for repro.faultinject: injectors, oracle, campaigns, watchdog."""

import json

import pytest

from repro.core.config import HwstConfig
from repro.faultinject import (
    CLASSES, CRASH, DETECTED, FAMILIES, FaultSpec, HANG, MASKED,
    RunProfile, RuntimeInjector, SILENT_CORRUPTION, TARGETS,
    apply_link_fault, classify, golden_run, kinds_for, plan_campaign,
    run_campaign,
)
from repro.harness.compile_cache import CompileCache
from repro.harness.parallel import CellSpec, STATUS_HANG, SweepExecutor
from repro.sim.machine import Machine


def _profile(**overrides) -> RunProfile:
    base = dict(status="exit", exit_code=0, output=b"42",
                heap_digest="d" * 64, trap_class="", trap_pc=None,
                instret=1000)
    base.update(overrides)
    return RunProfile(**base)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="cosmic_ray")

    def test_family_mapping(self):
        assert FaultSpec(kind="srf_bitflip").family == "metadata"
        assert FaultSpec(kind="kb_stale").family == "keybuffer"
        assert FaultSpec(kind="check_drop").family == "checks"
        assert FaultSpec(kind="check_drop").is_link_fault
        assert not FaultSpec(kind="kb_alias").is_link_fault

    def test_kinds_for_expands_families(self):
        assert kinds_for(["checks"]) == ["check_drop", "check_dup"]
        kinds = kinds_for(["metadata", "keybuffer", "checks"])
        assert len(kinds) == 7

    def test_kinds_for_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown fault family"):
            kinds_for(["metadata", "gamma"])


class TestClassify:
    def test_identical_is_masked(self):
        golden = _profile()
        assert classify(golden, _profile()) == MASKED

    def test_extra_instructions_alone_still_masked(self):
        # instret is not an architectural observable.
        assert classify(_profile(), _profile(instret=1007)) == MASKED

    def test_new_violation_is_detected(self):
        injected = _profile(status="spatial_violation",
                            trap_class="SpatialViolation", trap_pc=0x100)
        assert classify(_profile(), injected) == DETECTED

    def test_moved_violation_is_detected(self):
        golden = _profile(status="temporal_violation",
                          trap_class="TemporalViolation", trap_pc=0x100)
        moved = _profile(status="temporal_violation",
                         trap_class="TemporalViolation", trap_pc=0x200)
        assert classify(golden, moved) == DETECTED

    def test_wrong_output_is_silent_corruption(self):
        assert classify(_profile(),
                        _profile(output=b"43")) == SILENT_CORRUPTION

    def test_wrong_heap_is_silent_corruption(self):
        assert classify(_profile(), _profile(
            heap_digest="e" * 64)) == SILENT_CORRUPTION

    def test_suppressed_detection_is_silent_corruption(self):
        golden = _profile(status="spatial_violation",
                          trap_class="SpatialViolation", trap_pc=0x100)
        assert classify(golden, _profile()) == SILENT_CORRUPTION

    def test_blown_budget_is_hang(self):
        assert classify(_profile(), _profile(status="limit")) == HANG

    def test_golden_limit_matching_is_masked(self):
        golden = _profile(status="limit")
        assert classify(golden, _profile(status="limit")) == MASKED


class TestRuntimeInjectors:
    def test_srf_bitflip_hits_live_entry(self):
        machine = Machine()
        machine.srf[5] = (0x10, 0, True, False)
        injector = RuntimeInjector(
            FaultSpec(kind="srf_bitflip", trigger=0, bit=0, select=0))
        injector(machine)
        assert injector.fired
        assert machine.srf[5] == (0x11, 0, True, False)
        assert "SRF[5]" in injector.note

    def test_srf_bitflip_upper_word(self):
        machine = Machine()
        machine.srf[3] = (0, 0, False, True)
        injector = RuntimeInjector(
            FaultSpec(kind="srf_bitflip", trigger=0, bit=64, select=0))
        injector(machine)
        assert machine.srf[3] == (0, 1, False, True)

    def test_one_shot(self):
        machine = Machine()
        machine.srf[5] = (0x10, 0, True, False)
        injector = RuntimeInjector(
            FaultSpec(kind="srf_bitflip", trigger=0, bit=0, select=0))
        injector(machine)
        injector(machine)
        assert machine.srf[5] == (0x11, 0, True, False)  # flipped once

    def test_waits_for_trigger(self):
        machine = Machine()
        machine.srf[5] = (0x10, 0, True, False)
        injector = RuntimeInjector(
            FaultSpec(kind="srf_bitflip", trigger=100, bit=0, select=0))
        injector(machine)
        assert not injector.fired
        machine.instret = 100
        injector(machine)
        assert injector.fired

    def test_kb_alias_corrupts_cached_key(self):
        machine = Machine()
        machine.keybuffer.fill(0x2000, 7)
        injector = RuntimeInjector(
            FaultSpec(kind="kb_alias", trigger=0, bit=0, select=0))
        injector(machine)
        assert machine.keybuffer.peek(0x2000) == 6  # 7 ^ 1

    def test_kb_stale_clears_lock_behind_buffer(self):
        machine = Machine()
        machine.memory.map_region(0x2000, 4096, "locks")
        machine.memory.store_u64(0x2000, 7)
        machine.keybuffer.fill(0x2000, 7)
        injector = RuntimeInjector(
            FaultSpec(kind="kb_stale", trigger=0, select=0))
        injector(machine)
        assert machine.memory.load_u64(0x2000) == 0
        assert machine.keybuffer.peek(0x2000) == 7  # still trusted

    def test_kb_faults_on_empty_buffer_land_nowhere(self):
        machine = Machine()
        injector = RuntimeInjector(
            FaultSpec(kind="kb_alias", trigger=0, select=3))
        injector(machine)
        assert injector.fired
        assert "landed nowhere" in injector.note

    def test_codec_corruption_is_one_shot(self):
        machine = Machine()
        inner = machine.compressor
        word = inner.compress_spatial(0x40_0000, 0x40_0040)
        injector = RuntimeInjector(
            FaultSpec(kind="codec_corrupt", trigger=0, bit=3, select=0))
        injector(machine)
        assert machine.compressor is not inner
        first = machine.compressor.decompress_spatial(word)
        second = machine.compressor.decompress_spatial(word)
        assert first != inner.decompress_spatial(word)
        assert second == inner.decompress_spatial(word)
        # attribute delegation keeps the Machine's epilogue working
        assert machine.compressor.max_range_seen == inner.max_range_seen

    def test_runtime_injector_rejects_link_kinds(self):
        with pytest.raises(ValueError, match="not a runtime fault"):
            RuntimeInjector(FaultSpec(kind="check_drop"))


class TestLinkFaults:
    def _program(self, target="overflow", scheme="hwst128"):
        return CompileCache().compile(TARGETS[target], scheme,
                                      HwstConfig())

    def test_check_drop_replaces_a_check(self):
        program = self._program()
        before = [ins.op for ins in program.instrs]
        note = apply_link_fault(
            program, FaultSpec(kind="check_drop", select=2))
        assert note
        after = [ins.op for ins in program.instrs]
        assert len(after) == len(before)  # layout preserved
        changed = [i for i, (a, b) in enumerate(zip(before, after))
                   if a != b]
        assert len(changed) == 1

    def test_check_dup_adds_a_check(self):
        program = self._program()
        note = apply_link_fault(
            program, FaultSpec(kind="check_dup", select=1))
        # "" is allowed (no eligible plain site), but when a site
        # exists the mutation must describe itself.
        if note:
            assert "spurious check" in note

    def test_link_fault_rejects_runtime_kinds(self):
        with pytest.raises(ValueError, match="not a link-time fault"):
            apply_link_fault(self._program(),
                             FaultSpec(kind="srf_bitflip"))


class TestGoldenProfiles:
    def test_benign_target(self):
        golden = golden_run(TARGETS["vecsum"], "hwst128",
                            cache=CompileCache())
        assert golden.status == "exit"
        assert golden.exit_code == 0
        assert golden.output == b"6048"
        assert golden.trap_class == ""

    def test_buggy_target_records_trap(self):
        golden = golden_run(TARGETS["overflow"], "hwst128",
                            cache=CompileCache())
        assert golden.status == "spatial_violation"
        assert golden.trap_class == "SpatialViolation"
        assert golden.trap_pc is not None

    def test_profile_round_trips_through_json(self):
        golden = golden_run(TARGETS["uaf"], "hwst128",
                            cache=CompileCache())
        assert json.loads(json.dumps(golden.to_dict()))


class TestPlan:
    def _goldens(self):
        return {name: _profile() for name in ("vecsum", "chase")}

    def test_same_seed_same_plan(self):
        kinds = kinds_for(["metadata"])
        targets = ["vecsum", "chase"]
        one = plan_campaign(20, 9, kinds, targets, self._goldens())
        two = plan_campaign(20, 9, kinds, targets, self._goldens())
        assert one == two

    def test_different_seed_different_plan(self):
        kinds = kinds_for(["metadata"])
        targets = ["vecsum", "chase"]
        one = plan_campaign(20, 9, kinds, targets, self._goldens())
        two = plan_campaign(20, 10, kinds, targets, self._goldens())
        assert one != two

    def test_plan_leaves_global_random_alone(self):
        import random

        random.seed(123)
        state = random.getstate()
        plan_campaign(50, 4, kinds_for(["checks"]), ["vecsum"],
                      {"vecsum": _profile()})
        assert random.getstate() == state


class TestCampaign:
    def test_scoreboard_accounts_for_every_injection(self):
        report = run_campaign(n=21, seed=2, jobs=1,
                              wallclock_budget=None)
        assert sum(report.scoreboard.values()) == 21
        assert set(report.scoreboard) == set(CLASSES)

    def test_no_unclassified_crashes_or_hangs(self):
        # Acceptance: every metadata/keybuffer/check fault lands in
        # detected/masked/silent_corruption — never crash, never hang.
        report = run_campaign(n=35, seed=13, jobs=1,
                              wallclock_budget=None)
        assert report.scoreboard[CRASH] == 0
        assert report.scoreboard[HANG] == 0
        assert report.clean

    def test_same_seed_identical_report(self):
        one = run_campaign(n=16, seed=5, jobs=1, wallclock_budget=None)
        two = run_campaign(n=16, seed=5, jobs=1, wallclock_budget=None)
        assert json.dumps(one.to_dict(), sort_keys=True) == \
            json.dumps(two.to_dict(), sort_keys=True)

    def test_parallel_matches_serial(self):
        serial = run_campaign(n=16, seed=5, jobs=1,
                              wallclock_budget=None)
        with SweepExecutor(jobs=2) as executor:
            pooled = run_campaign(n=16, seed=5, executor=executor,
                                  wallclock_budget=30.0)
        assert json.dumps(serial.to_dict(), sort_keys=True) == \
            json.dumps(pooled.to_dict(), sort_keys=True)

    def test_fault_counters_on_executor_registry(self):
        with SweepExecutor(jobs=1) as executor:
            report = run_campaign(n=9, seed=1, executor=executor,
                                  wallclock_budget=None)
        snap = executor.registry.snapshot()
        assert snap["fault.injected"] == 9
        for cls in CLASSES:
            assert snap[f"fault.{cls}"] == report.scoreboard[cls]

    def test_report_is_parallelism_agnostic_json(self):
        report = run_campaign(n=6, seed=3, jobs=1, wallclock_budget=None)
        doc = report.to_dict()
        assert doc["schema"] == "repro.faultinject/v1"
        flat = json.dumps(doc)
        for forbidden in ("jobs", "wallclock", "duration", "time"):
            assert f'"{forbidden}"' not in flat

    def test_table_renders(self):
        report = run_campaign(n=6, seed=3, jobs=1, wallclock_budget=None)
        text = report.table()
        assert "fault campaign" in text
        for cls in CLASSES:
            assert cls in text

    def test_rejects_unknown_family_and_target(self):
        with pytest.raises(ValueError, match="unknown fault family"):
            run_campaign(n=1, families=("nope",))
        with pytest.raises(ValueError, match="unknown target"):
            run_campaign(n=1, targets=("nope",))

    def test_checks_faults_can_suppress_detection(self):
        # Dropping checks on the buggy targets must eventually let a
        # violation escape (silent corruption) — the whole point of
        # running a differential oracle instead of grepping for traps.
        report = run_campaign(n=40, seed=7, families=("checks",),
                              jobs=1, wallclock_budget=None)
        assert report.scoreboard[SILENT_CORRUPTION] > 0
        assert report.scoreboard[CRASH] == 0


class TestWatchdog:
    INFINITE_LOOP = "int main(void) { while (1) {} return 0; }"

    def test_watchdog_fires_on_infinite_loop(self):
        # A huge step budget would spin for minutes; the wallclock
        # watchdog must convert the cell into a hang envelope instead.
        spec = CellSpec(scheme="baseline", source=self.INFINITE_LOOP,
                        timing=False, max_instructions=10**12,
                        wallclock_budget=0.5, tag="spin")
        with SweepExecutor(jobs=1) as executor:
            result = executor.run([spec])[0]
        assert result.status == STATUS_HANG
        assert result.extra.get("watchdog_fired") is True
        assert not result.measured

    def test_step_budget_is_the_deterministic_backstop(self):
        spec = CellSpec(scheme="baseline", source=self.INFINITE_LOOP,
                        timing=False, max_instructions=5000,
                        wallclock_budget=None, tag="spin")
        with SweepExecutor(jobs=1) as executor:
            result = executor.run([spec])[0]
        assert result.status == "limit"
        assert result.trap_class == "SimLimitExceeded"


class TestInterrupt:
    def test_stop_truncates_at_a_chunk_boundary(self):
        polls = []

        def stop():
            polls.append(True)
            return len(polls) > 1    # first chunk runs, then stop

        report = run_campaign(n=40, seed=5, jobs=1,
                              wallclock_budget=None, stop=stop)
        assert report.interrupted
        assert len(report.injections) == 16   # one _STOP_CHUNK
        doc = report.to_dict()
        assert doc["interrupted"] is True
        assert doc["completed"] == 16

    def test_interrupted_prefix_matches_the_full_run(self):
        full = run_campaign(n=40, seed=5, jobs=1,
                            wallclock_budget=None)
        polls = []

        def stop_after_first_chunk():
            polls.append(True)
            return len(polls) > 1

        partial = run_campaign(n=40, seed=5, jobs=1,
                               wallclock_budget=None,
                               stop=stop_after_first_chunk)
        prefix = partial.injections
        assert prefix == full.injections[:len(prefix)]

    def test_uninterrupted_report_bytes_are_unchanged(self):
        plain = run_campaign(n=16, seed=5, jobs=1,
                             wallclock_budget=None)
        polled = run_campaign(n=16, seed=5, jobs=1,
                              wallclock_budget=None,
                              stop=lambda: False)
        assert not plain.interrupted and not polled.interrupted
        assert "interrupted" not in plain.to_dict()
        assert json.dumps(plain.to_dict(), sort_keys=True) == \
            json.dumps(polled.to_dict(), sort_keys=True)
