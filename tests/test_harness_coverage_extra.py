"""Additional coverage-harness tests: sampling stability and tables."""

import pytest

from repro.harness.coverage import (
    PAPER_COVERAGE, CoverageResult, coverage_table, evaluate_coverage,
)
from repro.workloads.juliet import generate_corpus


class TestSamplingStability:
    def test_same_fraction_same_cases(self):
        a = generate_corpus(fraction=0.01)
        b = generate_corpus(fraction=0.01)
        assert [c.case_id for c in a] == [c.case_id for c in b]

    def test_larger_fraction_is_superset(self):
        small = {c.case_id for c in generate_corpus(fraction=0.01)}
        large = {c.case_id for c in generate_corpus(fraction=0.02)}
        assert small <= large

    def test_subtype_shares_preserved(self):
        """Stratified sampling keeps the hwst-gap share near 0.86 %."""
        sample = generate_corpus(fraction=0.05)
        odd = sum(1 for c in sample if c.subtype == "odd_off_by_one")
        share = 100.0 * odd / len(sample)
        assert 0.3 < share < 1.6


class TestCoverageAggregation:
    def test_record_accumulates(self):
        from repro.workloads.juliet.generator import _build_case

        result = CoverageResult(scheme="x")
        case_a = _build_case(121, "loop_to_canary", 0)
        case_b = _build_case(415, "double_free", 0)
        result.record(case_a, True)
        result.record(case_b, False)
        assert result.total == 2
        assert result.detected == 1
        assert result.coverage_pct == pytest.approx(50.0)
        assert result.cwe_coverage_pct(121) == 100.0
        assert result.cwe_coverage_pct(415) == 0.0

    def test_table_includes_paper_reference(self):
        result = CoverageResult(scheme="sbcets")
        text = coverage_table({"sbcets": result})
        assert "64.49" in text

    def test_paper_reference_values(self):
        assert PAPER_COVERAGE == {"gcc": 11.20, "asan": 58.08,
                                  "sbcets": 64.49,
                                  "hwst128_tchk": 63.63}


class TestMiniEvaluation:
    def test_cwe_761_families(self):
        """Free-offset cases: temporal schemes + asan catch, gcc not."""
        cases = generate_corpus(fraction=1.0, max_per_subtype=2,
                                cwes=[761])
        results = evaluate_coverage(
            ["hwst128_tchk", "asan", "gcc"], cases=cases)
        assert results["hwst128_tchk"].coverage_pct == 100.0
        assert results["asan"].coverage_pct == 100.0
        assert results["gcc"].coverage_pct == 0.0

    def test_cwe_690_asan_blindspot(self):
        cases = generate_corpus(fraction=1.0, max_per_subtype=3,
                                cwes=[690])
        results = evaluate_coverage(["asan", "sbcets"], cases=cases)
        assert results["asan"].coverage_pct == 0.0
        assert results["sbcets"].coverage_pct == 100.0

    def test_cwe_122_hwst_gap_isolated(self):
        """Only the odd_off_by_one subtype separates the two tools."""
        cases = [c for c in generate_corpus(fraction=1.0,
                                            max_per_subtype=2,
                                            cwes=[122])]
        results = evaluate_coverage(["sbcets", "hwst128_tchk"],
                                    cases=cases)
        diff = results["sbcets"].detected - \
            results["hwst128_tchk"].detected
        odd = sum(1 for c in cases if c.subtype == "odd_off_by_one")
        assert diff == odd
