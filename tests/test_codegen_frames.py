"""Unit tests for the code generator's frame layout."""

import pytest

from repro.codegen.lower import CodegenOptions, _FnEmitter
from repro.ir.irgen import lower_unit
from repro.minic import analyze, parse


def emitter_for(source, fn_name="main"):
    module = lower_unit(analyze(parse(source)))
    return _FnEmitter(module.functions[fn_name], CodegenOptions())


class TestFrameLayout:
    def test_saved_registers_reserved(self):
        em = emitter_for("int main(void) { return 0; }")
        # ra at s0-8, old s0 at s0-16: first slot starts past 16.
        for offset in em.slot_offset.values():
            assert offset > 16

    def test_frame_16_aligned(self):
        for source in (
            "int main(void) { return 0; }",
            "int main(void) { char c; return 0; }",
            "int main(void) { long a[3]; a[0]=1; return 0; }",
        ):
            em = emitter_for(source)
            assert em.frame_size % 16 == 0

    def test_objects_eight_aligned(self):
        em = emitter_for("""
        int main(void) {
            char tag;
            unsigned int h[5];
            char buf[10];
            int *p = (int*)h;
            return 0;
        }""")
        fn = em.fn
        for name, slot in fn.locals.items():
            if slot.is_object:
                # address = s0 - offset must be 8-aligned
                assert em.slot_offset[name] % 8 == 0, name

    def test_slots_do_not_overlap(self):
        em = emitter_for("""
        int main(void) {
            char a[10];
            long b;
            char c[3];
            int d;
            a[0] = 1; b = 2; c[0] = 3; d = 4;
            int *p = (int*)a;
            return 0;
        }""")
        spans = []
        for name, slot in em.fn.locals.items():
            end = em.slot_offset[name]
            spans.append((end - slot.size, end, name))
        spans.sort()
        for (lo1, hi1, n1), (lo2, hi2, n2) in zip(spans, spans[1:]):
            assert hi1 <= lo2 or lo1 >= hi2 or (lo1, hi1) == (lo2, hi2), \
                (n1, n2)

    def test_canary_adjacent_to_saved_registers(self):
        """With the gcc pass, __canary must sit between the saved
        registers and every object (arrays overflow upward into it)."""
        from repro.core.config import HwstConfig
        from repro.ir.instrument import instrument_module

        module = lower_unit(analyze(parse("""
        int main(void) { char buf[16]; buf[0] = 1; return 0; }""")))
        instrument_module(module, "gcc", HwstConfig())
        em = _FnEmitter(module.functions["main"], CodegenOptions())
        canary_off = em.slot_offset["__canary"]
        for name, slot in em.fn.locals.items():
            if slot.is_object and name != "__canary":
                assert em.slot_offset[name] > canary_off, name

    def test_spill_area_within_frame(self):
        em = emitter_for("int main(void) { return 0; }")
        last_spill = em.spill_base + 8 * 23
        assert last_spill <= em.frame_size

    def test_unknown_local_raises(self):
        from repro.errors import CodegenError

        em = emitter_for("int main(void) { return 0; }")
        with pytest.raises(CodegenError):
            em.local_offset("ghost")
