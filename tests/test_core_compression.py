"""Tests for the metadata compression scheme (Fig. 2, Eq. 2-6)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.compression import (
    CompressedMetadata, MetadataCompressor, MetadataRangeError,
)
from repro.core.config import FieldWidths, HwstConfig
from repro.core.metadata import NULL_METADATA, PointerMetadata

CONFIG = HwstConfig()
COMP = MetadataCompressor(CONFIG)


class TestSpatialCompression:
    def test_aligned_roundtrip_exact(self):
        lower = COMP.compress_spatial(0x40_0000, 0x40_0100)
        assert COMP.decompress_spatial(lower) == (0x40_0000, 0x40_0100)

    def test_unaligned_bound_rounds_up(self):
        """Odd sizes round the bound up to the 8-byte grid (never down,
        or legal accesses to the last bytes would trap)."""
        lower = COMP.compress_spatial(0x40_0000, 0x40_0005)
        base, bound = COMP.decompress_spatial(lower)
        assert base == 0x40_0000
        assert bound == 0x40_0008

    def test_unaligned_base_rounds_down(self):
        lower = COMP.compress_spatial(0x40_0003, 0x40_0010)
        base, bound = COMP.decompress_spatial(lower)
        assert base == 0x40_0000
        assert bound >= 0x40_0010

    def test_slack_is_the_cwe122_mechanism(self):
        """Sub-alignment overflow room — why HWST128 trails SBCETS on
        some CWE122 cases (Section 5.2)."""
        assert COMP.spatial_slack(0x40_0000, 0x40_0100) == 0
        assert COMP.spatial_slack(0x40_0000, 0x40_0101) == 7

    def test_null_metadata_compresses_to_zero(self):
        assert COMP.compress_spatial(0, 0) == 0
        assert COMP.decompress_spatial(0) == (0, 0)

    def test_bound_before_base_rejected(self):
        with pytest.raises(MetadataRangeError):
            COMP.compress_spatial(0x100, 0x80)

    def test_range_overflow_rejected(self):
        huge = HwstConfig(widths=FieldWidths(base=60, range=4,
                                             lock=20, key=44))
        comp = MetadataCompressor(huge)
        with pytest.raises(MetadataRangeError):
            comp.compress_spatial(0, 1 << 10)

    @given(st.integers(min_value=0, max_value=(1 << 24) - 8),
           st.integers(min_value=0, max_value=(1 << 16)))
    def test_compressed_region_always_covers(self, base, size):
        """Compression must over-approximate: the decompressed region
        always contains the original one."""
        bound = base + size
        lower = COMP.compress_spatial(base, bound)
        c_base, c_bound = COMP.decompress_spatial(lower)
        assert c_base <= base
        assert c_bound >= bound
        assert c_base % 8 == 0 and c_bound % 8 == 0
        assert base - c_base < 8
        assert c_bound - bound < 8 + 8  # base shift can add one grid step


class TestTemporalCompression:
    def test_roundtrip(self):
        lock = CONFIG.lock_base + 8 * 1234
        upper = COMP.compress_temporal(key=99, lock=lock)
        assert COMP.decompress_temporal(upper) == (99, lock)

    def test_null_lock(self):
        upper = COMP.compress_temporal(key=0, lock=0)
        assert COMP.decompress_temporal(upper) == (0, 0)

    def test_lock_outside_table_rejected(self):
        with pytest.raises(MetadataRangeError):
            COMP.compress_temporal(key=1, lock=CONFIG.lock_base - 8)

    def test_misaligned_lock_rejected(self):
        with pytest.raises(MetadataRangeError):
            COMP.compress_temporal(key=1, lock=CONFIG.lock_base + 3)

    def test_key_overflow_rejected(self):
        with pytest.raises(MetadataRangeError):
            COMP.compress_temporal(key=1 << 44, lock=0)

    def test_lock_index_overflow_rejected(self):
        with pytest.raises(MetadataRangeError):
            COMP.compress_temporal(key=1,
                                   lock=CONFIG.lock_base + 8 * ((1 << 20) - 1))

    @given(st.integers(min_value=0, max_value=(1 << 44) - 1),
           st.integers(min_value=0, max_value=1_000_000 - 1))
    def test_temporal_roundtrip_property(self, key, lock_index):
        lock = CONFIG.lock_base + 8 * lock_index
        upper = COMP.compress_temporal(key, lock)
        assert COMP.decompress_temporal(upper) == (key, lock)


class TestFullRecords:
    def test_roundtrip_record(self):
        meta = PointerMetadata(base=0x40_0000, bound=0x40_0800,
                               key=77, lock=CONFIG.lock_base + 8 * 7)
        packed = COMP.compress(meta)
        assert isinstance(packed, CompressedMetadata)
        assert COMP.decompress(packed) == meta

    def test_halves_are_64bit(self):
        meta = PointerMetadata(base=0x40_0000, bound=0x40_0800,
                               key=(1 << 44) - 1,
                               lock=CONFIG.lock_base)
        packed = COMP.compress(meta)
        assert 0 <= packed.lower < (1 << 64)
        assert 0 <= packed.upper < (1 << 64)

    def test_null_record(self):
        packed = COMP.compress(NULL_METADATA)
        assert packed.lower == 0 and packed.upper == 0

    def test_compressed_metadata_validates(self):
        with pytest.raises(ValueError):
            CompressedMetadata(lower=1 << 64, upper=0)


class TestPointerMetadata:
    def test_spatial_validity(self):
        meta = PointerMetadata(base=100, bound=200)
        assert meta.spatially_valid(100, 1)
        assert meta.spatially_valid(199, 1)
        assert meta.spatially_valid(192, 8)
        assert not meta.spatially_valid(99, 1)
        assert not meta.spatially_valid(200, 1)
        assert not meta.spatially_valid(193, 8)

    def test_size(self):
        assert PointerMetadata(base=16, bound=48).size == 32

    def test_null(self):
        assert NULL_METADATA.is_null()
        assert not NULL_METADATA.spatially_valid(0, 1)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            PointerMetadata(base=10, bound=5)

    def test_with_halves(self):
        meta = PointerMetadata(base=0, bound=8)
        temporal = meta.with_temporal(key=5, lock=0x1000_0000)
        assert temporal.base == 0 and temporal.key == 5
        spatial = temporal.with_spatial(base=8, bound=24)
        assert spatial.key == 5 and spatial.size == 16
