"""Unit tests for the bit-manipulation helpers."""

import pytest
from hypothesis import given, strategies as st

from repro import bits


class TestConversions:
    def test_to_u64_wraps(self):
        assert bits.to_u64(-1) == bits.MASK64
        assert bits.to_u64(1 << 64) == 0
        assert bits.to_u64(5) == 5

    def test_to_s64_negative(self):
        assert bits.to_s64(bits.MASK64) == -1
        assert bits.to_s64(0x8000_0000_0000_0000) == -(1 << 63)
        assert bits.to_s64(7) == 7

    def test_to_u32_s32(self):
        assert bits.to_u32(-1) == 0xFFFF_FFFF
        assert bits.to_s32(0xFFFF_FFFF) == -1
        assert bits.to_s32(0x7FFF_FFFF) == 0x7FFF_FFFF

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_u64_s64_roundtrip(self, value):
        assert bits.to_s64(bits.to_u64(value)) == value


class TestSext:
    def test_sext_positive(self):
        assert bits.sext(0x7F, 8) == 127

    def test_sext_negative(self):
        assert bits.sext(0xFF, 8) == -1
        assert bits.sext(0x800, 12) == -2048

    def test_sext_truncates_high_bits(self):
        assert bits.sext(0x1FF, 8) == -1

    @given(st.integers(min_value=1, max_value=63),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_sext_range(self, width, value):
        result = bits.sext(value, width)
        assert -(1 << (width - 1)) <= result < (1 << (width - 1))


class TestFits:
    def test_fits_signed(self):
        assert bits.fits_signed(2047, 12)
        assert bits.fits_signed(-2048, 12)
        assert not bits.fits_signed(2048, 12)
        assert not bits.fits_signed(-2049, 12)

    def test_fits_unsigned(self):
        assert bits.fits_unsigned(255, 8)
        assert not bits.fits_unsigned(256, 8)
        assert not bits.fits_unsigned(-1, 8)


class TestAlign:
    def test_align_up(self):
        assert bits.align_up(0, 8) == 0
        assert bits.align_up(1, 8) == 8
        assert bits.align_up(8, 8) == 8
        assert bits.align_up(9, 16) == 16

    def test_align_down(self):
        assert bits.align_down(15, 8) == 8
        assert bits.align_down(16, 8) == 16

    def test_align_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            bits.align_up(5, 3)
        with pytest.raises(ValueError):
            bits.align_down(5, 6)

    @given(st.integers(min_value=0, max_value=1 << 40),
           st.sampled_from([1, 2, 4, 8, 16, 4096]))
    def test_align_up_properties(self, value, alignment):
        result = bits.align_up(value, alignment)
        assert result >= value
        assert result % alignment == 0
        assert result - value < alignment


class TestFields:
    def test_extract(self):
        assert bits.extract(0xABCD, 4, 8) == 0xBC

    def test_deposit(self):
        assert bits.deposit(0x0000, 4, 8, 0xBC) == 0x0BC0

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=56),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=255))
    def test_deposit_extract_roundtrip(self, value, lo, width, field):
        field &= (1 << width) - 1
        assert bits.extract(bits.deposit(value, lo, width, field),
                            lo, width) == field

    def test_bit_length_for(self):
        assert bits.bit_length_for(0) == 1
        assert bits.bit_length_for(1) == 1
        assert bits.bit_length_for(255) == 8
        assert bits.bit_length_for(256) == 9
        with pytest.raises(ValueError):
            bits.bit_length_for(-1)
