"""Conformance layer: the executable spec vs the ISS engines.

Four contracts:

* **Independence** — ``repro.spec`` imports nothing from the simulator
  (or any other implementation package); the spec is a second opinion,
  not a re-export.
* **Completeness** — every mnemonic in the encoding tables has a spec
  handler and a per-instruction equivalence battery, and the battery
  finds zero divergences.
* **Agreement** — lockstep co-simulation over real programs (workload
  kernels, fuzz programs) diffs the full architectural state at every
  retire and finds nothing; trap classification (class/pc/instret)
  matches across ref, fast and spec, including traps inside the fast
  engine's fused check pairs.
* **Determinism** — the ``repro.spec/v1`` report is byte-identical for
  a fixed seed at any ``--jobs``, and the lockstep mnemonic coverage
  of the pinned corpus never shrinks (``tests/data/spec_coverage.json``).
"""

import ast
import json
import os
from pathlib import Path

import pytest

import repro.spec
from repro.core.compression import MetadataCompressor, MetadataRangeError
from repro.core.config import FieldWidths, HwstConfig
from repro.harness.conform import (
    EquivBench,
    build_cells,
    report_to_json,
    run_conform,
)
from repro.harness.runner import WORKLOADS
from repro.isa.instructions import SPEC_TABLE
from repro.obs.metrics import MetricsRegistry
from repro.schemes import compile_source
from repro.sim import make_machine
from repro.sim.machine import Machine
from repro.spec import geometry
from repro.spec.equiv import all_mnemonics, cases_for, run_mnemonic
from repro.spec.lockstep import run_lockstep, run_spec
from repro.spec.table import SPEC_EXEC

SPEC_DIR = Path(repro.spec.__file__).resolve().parent
DATA_DIR = Path(__file__).resolve().parent / "data"
SEED = 20260807


def _widths(config):
    w = config.widths
    return (w.base, w.range, w.lock, w.key)


def _lockstep(source, scheme, config=None, **kwargs):
    config = config or HwstConfig()
    program = compile_source(source, scheme, config)
    machine = Machine(config, timing=None)
    return run_lockstep(machine, program, widths=_widths(config),
                        lock_base=config.lock_base,
                        shadow_budget=config.shadow_budget, **kwargs)


# ---------------------------------------------------------------------------
# Independence
# ---------------------------------------------------------------------------

class TestSpecIndependence:
    #: The only first-party packages the spec may touch: its own
    #: modules and the pure encoding tables. Everything else
    #: (simulator, compiler, schemes, core, harness, ...) is an
    #: implementation the spec must stay independent of.
    ALLOWED_PREFIXES = ("repro.spec", "repro.isa")

    @staticmethod
    def _imports_of(path: Path):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.level:        # relative import: inside repro.spec
                    continue
                yield node.module or ""

    def test_spec_never_imports_an_implementation(self):
        violations = []
        for path in sorted(SPEC_DIR.glob("*.py")):
            for module in self._imports_of(path):
                if module.split(".")[0] != "repro":
                    continue          # stdlib
                if not module.startswith(self.ALLOWED_PREFIXES):
                    violations.append(f"{path.name}: imports {module}")
        assert violations == [], violations

    def test_the_audit_sees_through_function_level_imports(self):
        # The walker must catch imports hidden inside function bodies,
        # or the independence guarantee is decorative.
        sample = ast.parse("def f():\n    from repro.sim import x\n")
        found = [node.module for node in ast.walk(sample)
                 if isinstance(node, ast.ImportFrom)]
        assert found == ["repro.sim"]

    def test_table_covers_every_encoded_mnemonic(self):
        assert set(SPEC_EXEC) == set(SPEC_TABLE)


# ---------------------------------------------------------------------------
# Geometry functions vs the production compressor
# ---------------------------------------------------------------------------

class TestGeometryFunctions:
    @pytest.mark.parametrize("geom", range(len(geometry.GEOMETRIES)))
    def test_matches_metadata_compressor(self, geom):
        import random

        widths = geometry.GEOMETRIES[geom]
        base_b, range_b, lock_b, key_b = widths
        config = HwstConfig(widths=FieldWidths(*widths),
                            lock_entries=min(1 << lock_b, 1 << 20))
        compressor = MetadataCompressor(config)
        rng = random.Random(f"spec-geometry/{geom}")
        lock_base = config.lock_base

        for _ in range(300):
            base = rng.getrandbits(40)
            bound = base + rng.getrandbits(20)
            try:
                expected = compressor.compress_spatial(base, bound)
            except MetadataRangeError:
                with pytest.raises(geometry.GeometryError):
                    geometry.spatial_pack(base, bound, base_b, range_b)
                continue
            lower = geometry.spatial_pack(base, bound, base_b, range_b)
            assert lower == expected
            assert geometry.spatial_unpack(lower, base_b, range_b) == \
                compressor.decompress_spatial(lower)

        for _ in range(300):
            key = rng.getrandbits(key_b + (2 if rng.random() < 0.2 else 0))
            lock = 0 if rng.random() < 0.2 else \
                lock_base + 8 * rng.getrandbits(lock_b + 1)
            try:
                expected = compressor.compress_temporal(key, lock)
            except MetadataRangeError:
                with pytest.raises(geometry.GeometryError):
                    geometry.temporal_pack(key, lock, lock_b, key_b,
                                           lock_base)
                continue
            upper = geometry.temporal_pack(key, lock, lock_b, key_b,
                                           lock_base)
            assert upper == expected
            assert geometry.temporal_unpack(upper, lock_b, key_b,
                                            lock_base) == \
                compressor.decompress_temporal(upper)

    def test_misaligned_and_negative_locks_error(self):
        with pytest.raises(geometry.GeometryError):
            geometry.temporal_pack(1, 0x1000_0004, 20, 44, 0x1000_0000)
        with pytest.raises(geometry.GeometryError):
            geometry.temporal_pack(1, 0x0FFF_FFF8, 20, 44, 0x1000_0000)
        with pytest.raises(geometry.GeometryError):
            geometry.spatial_pack(16, 8, 35, 29)  # bound < base


# ---------------------------------------------------------------------------
# Per-instruction equivalence
# ---------------------------------------------------------------------------

class TestEquivalenceSweep:
    def test_case_generation_is_deterministic(self):
        for mnemonic in ("add", "div", "bndrs", "tchk", "ld.chk",
                         "vchk", "ecall"):
            assert cases_for(mnemonic, SEED) == cases_for(mnemonic, SEED)

    def test_every_mnemonic_has_edge_cases(self):
        for mnemonic in all_mnemonics():
            assert cases_for(mnemonic, SEED), mnemonic

    def test_full_sweep_finds_zero_divergences(self):
        bench = EquivBench()
        total = 0
        for mnemonic in all_mnemonics():
            result = run_mnemonic(mnemonic, SEED, bench)
            assert result["divergences"] == [], \
                f"{mnemonic}: {result['divergences'][:2]}"
            total += result["cases"]
        assert total > 5000
        assert set(all_mnemonics()) == set(SPEC_TABLE)

    def test_metadata_geometry_cases_span_all_four(self):
        geoms = {case.geom for case in cases_for("bndrs", SEED)}
        assert geoms == set(range(len(geometry.GEOMETRIES)))


# ---------------------------------------------------------------------------
# Lockstep over real programs
# ---------------------------------------------------------------------------

TREEADD = WORKLOADS["treeadd"].source("small")

UAF_SOURCE = """
int main(void) {
    long *p = (long*)malloc(8);
    free(p);
    return (int)(p[0] & 0);
}
"""

OOB_SOURCE = """
int main(void) {
    long *p = (long*)malloc(8);
    long v = p[20];
    free(p);
    return (int)(v & 0);
}
"""


class TestLockstep:
    @pytest.mark.parametrize("scheme", ("hwst128_tchk", "bogo",
                                        "wdl_wide"))
    def test_workload_agrees(self, scheme):
        result = _lockstep(TREEADD, scheme)
        assert result.divergence is None, result.divergence
        assert result.outcome.status == "exit"
        assert result.retires > 1000

    def test_fuzz_sample_agrees(self):
        from repro.fuzz.gen import generate_program, plan_programs

        for index, kind in plan_programs(SEED, 12):
            generated = generate_program(SEED, index, kind)
            result = _lockstep(generated.source, "hwst128")
            assert result.divergence is None, \
                (generated.name, result.divergence)

    def test_detects_an_injected_state_divergence(self):
        # A machine that silently corrupts x10 mid-run must be caught
        # at exactly the corrupted retire with a field-level delta.
        class Corrupted(Machine):
            def step(self):
                super().step()
                if self.instret == 50:
                    self.regs[10] ^= 1

        config = HwstConfig()
        program = compile_source(TREEADD, "hwst128_tchk", config)
        result = run_lockstep(Corrupted(config, timing=None), program,
                              widths=_widths(config),
                              lock_base=config.lock_base)
        assert result.divergence is not None
        assert result.divergence["reason"] == "state mismatch"
        assert result.divergence["retire"] == 49
        assert any(delta["field"] == "x10"
                   for delta in result.divergence["deltas"])

    def test_run_spec_standalone_matches_the_iss(self):
        # The spec executes the whole program with no simulator in the
        # loop (SpecMemory + tables) and must land on the same
        # run-level observables.
        config = HwstConfig()
        program = compile_source(TREEADD, "hwst128_tchk", config)
        iss = Machine(config, timing=None).run(program)
        outcome, _ = run_spec(program, widths=_widths(config),
                              lock_base=config.lock_base,
                              lock_limit=config.lock_limit)
        assert (outcome.status, outcome.exit_code, outcome.instret,
                outcome.output) == \
            (iss.status, iss.exit_code, iss.instret, iss.output)


class TestTrapParity:
    @pytest.mark.parametrize("source,status", (
        (UAF_SOURCE, "temporal_violation"),
        (OOB_SOURCE, "spatial_violation"),
    ), ids=("temporal-first-half", "spatial-second-half"))
    def test_trap_in_fused_pair_is_identical_everywhere(self, source,
                                                        status):
        # hwst128_tchk fuses tchk + checked access in the fast engine;
        # a trap in either half must report identical class, pc and
        # retire count on ref, fast and the spec.
        config = HwstConfig()
        program = compile_source(source, "hwst128_tchk", config)
        ref = make_machine("ref", config=config, timing=None).run(program)
        fast_machine = make_machine("fast", config=config, timing=None)
        fast = fast_machine.run(program)
        assert fast_machine.fast_stats()["fused_pairs"] > 0
        spec, _ = run_spec(program, widths=_widths(config),
                           lock_base=config.lock_base,
                           lock_limit=config.lock_limit)
        for name in ("status", "trap_class", "trap_pc", "instret"):
            ref_value = getattr(ref, name)
            assert getattr(fast, name) == ref_value, name
            assert getattr(spec, name) == ref_value, name
        assert ref.status == status
        lockstep = _lockstep(source, "hwst128_tchk")
        assert lockstep.divergence is None
        assert lockstep.outcome.trap_class == ref.trap_class
        assert lockstep.outcome.trap_pc == ref.trap_pc


# ---------------------------------------------------------------------------
# Campaign report: determinism + obs counters
# ---------------------------------------------------------------------------

class TestConformReport:
    def _run(self, jobs, registry=None):
        return run_conform(workloads=["treeadd"],
                           schemes=["hwst128_tchk"],
                           fuzz_count=4, seed=SEED, jobs=jobs,
                           equiv=False, heartbeat_s=0,
                           registry=registry)

    def test_byte_identical_across_jobs_and_reruns(self):
        first = report_to_json(self._run(jobs=1))
        again = report_to_json(self._run(jobs=1))
        pooled = report_to_json(self._run(jobs=2))
        assert first == again
        assert first == pooled

    def test_report_shape_and_obs_counters(self):
        registry = MetricsRegistry()
        report = self._run(jobs=1, registry=registry)
        assert report["schema"] == "repro.spec/v1"
        assert report["totals"]["divergences"] == 0
        assert report["totals"]["retires"] > 0
        assert registry.counter("spec.retires").value == \
            report["totals"]["retires"]
        assert registry.counter("spec.divergences").value == 0
        assert registry.gauge("spec.mnemonics_covered").value == \
            report["totals"]["mnemonics_covered"]
        covered = set(report["coverage"]["exercised"])
        never = set(report["coverage"]["never_exercised"])
        assert covered | never == set(SPEC_TABLE)
        assert not covered & never

    def test_cell_list_is_deterministic(self):
        cells = build_cells(workloads=["treeadd"], fuzz_count=2,
                            seed=SEED)
        again = build_cells(workloads=["treeadd"], fuzz_count=2,
                            seed=SEED)
        assert [cell.tag for cell in cells] == \
            [cell.tag for cell in again]


# ---------------------------------------------------------------------------
# Mnemonic-coverage ratchet (tests/data/spec_coverage.json)
# ---------------------------------------------------------------------------

class TestCoverageRatchet:
    def test_pinned_corpus_coverage_never_shrinks(self):
        with open(DATA_DIR / "spec_coverage.json",
                  encoding="utf-8") as fh:
            ratchet = json.load(fh)
        assert ratchet["schema"] == "repro.spec-coverage/v1"
        corpus = ratchet["corpus"]
        report = run_conform(workloads=corpus["workloads"],
                             schemes=corpus["schemes"],
                             scale=corpus["scale"],
                             fuzz_count=corpus["fuzz_count"],
                             seed=corpus["seed"],
                             equiv=False, jobs=1, heartbeat_s=0)
        assert report["totals"]["divergences"] == 0
        exercised = set(report["coverage"]["exercised"])
        pinned = set(ratchet["mnemonics"])
        missing = sorted(pinned - exercised)
        assert not missing, (
            f"lockstep coverage shrank: {missing} were exercised when "
            "the ratchet was recorded but are no longer; extend the "
            "corpus or regenerate tests/data/spec_coverage.json "
            "consciously")
        assert pinned <= set(SPEC_TABLE)
