"""IR-level tests for the instrumentation passes.

These look at the rewritten IR directly (no execution): which metadata
operations each pass inserts, where, and how the frame changes.
"""

import pytest

from repro.core.config import HwstConfig
from repro.ir import ir as irdef
from repro.ir.instrument import instrument_module
from repro.ir.irgen import lower_unit
from repro.ir.verify import verify_module
from repro.minic import analyze, parse

POINTER_PROGRAM = """
long get(long *p, long i) {
    return p[i];
}
int main(void) {
    long *data = (long*)malloc(4 * sizeof(long));
    long local[4];
    data[0] = 5;
    local[1] = 6;
    long v = get(data, 0);
    free(data);
    return (int)v;
}
"""


def build(pass_name, source=POINTER_PROGRAM):
    module = lower_unit(analyze(parse(source)))
    instrument_module(module, pass_name, HwstConfig())
    verify_module(module)
    return module


def ops_of(module, fn_name, op_type):
    fn = module.functions[fn_name]
    return [ins for blk in fn.blocks for ins in blk.instrs
            if isinstance(ins, op_type)]


def calls_to(module, fn_name, callee):
    return [ins for ins in ops_of(module, fn_name, irdef.Call)
            if ins.name == callee]


class TestHwstPass:
    def test_verifies_after_rewrite(self):
        build("hwst128_tchk")

    def test_checked_flags_set(self):
        module = build("hwst128_tchk")
        checked = [ins for ins in ops_of(module, "main", irdef.Load)
                   if ins.checked]
        checked += [ins for ins in ops_of(module, "main", irdef.Store)
                    if ins.checked]
        assert checked, "no fused-check accesses emitted"

    def test_tchk_emitted_for_heap_derefs(self):
        module = build("hwst128_tchk")
        assert ops_of(module, "get", irdef.HwTchk)

    def test_no_tchk_variant_uses_meta_gpr_loads(self):
        module = build("hwst128")
        assert not ops_of(module, "get", irdef.HwTchk)
        assert ops_of(module, "get", irdef.HwMetaGpr)
        assert ops_of(module, "get", irdef.TrapIf)

    def test_propagation_on_pointer_loads(self):
        module = build("hwst128_tchk")
        lbds = ops_of(module, "main", irdef.HwLbds)
        assert lbds, "pointer loads must pull metadata into the SRF"

    def test_propagation_on_pointer_stores(self):
        module = build("hwst128_tchk")
        sbd = ops_of(module, "main", irdef.HwSbd)
        assert sbd, "pointer stores must push metadata to shadow"

    def test_malloc_site_binds(self):
        module = build("hwst128_tchk")
        assert ops_of(module, "main", irdef.HwBndrs)
        assert ops_of(module, "main", irdef.HwBndrt)
        assert calls_to(module, "main", "__lock_alloc")

    def test_free_site_checks_and_releases_lock(self):
        module = build("hwst128_tchk")
        assert calls_to(module, "main", "__hwst_free_check")
        assert calls_to(module, "main", "__lock_free")

    def test_frame_lock_for_object_frames(self):
        module = build("hwst128_tchk")
        fn = module.functions["main"]   # has a local array
        assert "__frame_lock" in fn.locals
        assert "__frame_key" in fn.locals
        # every return path frees it
        rets = ops_of(module, "main", irdef.Ret)
        frees = calls_to(module, "main", "__lock_free")
        assert len(frees) >= len(rets)

    def test_no_frame_lock_without_objects(self):
        module = build("hwst128_tchk", """
        int main(void) { int a = 1; return a; }""")
        assert "__frame_lock" not in module.functions["main"].locals

    def test_wrapper_range_probe_for_memcpy(self):
        module = build("hwst128_tchk", """
        int main(void) {
            char *d = (char*)malloc(8);
            char *s = (char*)malloc(8);
            memcpy(d, s, 8);
            free(s);
            free(d);
            return 0;
        }""")
        probes = [ins for ins in ops_of(module, "main", irdef.Load)
                  if ins.checked and ins.size == 1]
        assert len(probes) >= 4  # first+last byte of both buffers


class TestSbcetsPass:
    def test_metadata_calls_inserted(self):
        module = build("sbcets")
        assert calls_to(module, "get", "__sb_mload")
        assert calls_to(module, "main", "__sb_mstore")

    def test_checks_are_inline(self):
        module = build("sbcets")
        assert ops_of(module, "get", irdef.TrapIf)

    def test_shadow_stack_for_pointer_args(self):
        module = build("sbcets")
        assert calls_to(module, "main", "__sb_ss_push")
        assert calls_to(module, "get", "__sb_ss_pop")

    def test_no_hw_ops_in_software_scheme(self):
        module = build("sbcets")
        for fn_name in module.functions:
            assert not ops_of(module, fn_name, irdef.HwLbds)
            assert not ops_of(module, fn_name, irdef.HwTchk)

    def test_pointer_return_pushes_metadata(self):
        module = build("sbcets", """
        long *mk(void) { return (long*)malloc(8); }
        int main(void) {
            long *p = mk();
            free(p);
            return 0;
        }""")
        assert calls_to(module, "mk", "__sb_ss_pushret")
        assert calls_to(module, "main", "__sb_ss_popret")


class TestBogoPass:
    def test_mpx_ops(self):
        module = build("bogo")
        assert ops_of(module, "get", irdef.MpxBndcl)
        assert ops_of(module, "get", irdef.MpxBndcu)
        assert ops_of(module, "get", irdef.MpxBndldx)

    def test_free_rewritten_to_scan(self):
        module = build("bogo")
        assert calls_to(module, "main", "__bogo_free")
        assert not calls_to(module, "main", "free")

    def test_registry_updates_on_pointer_store(self):
        module = build("bogo")
        assert calls_to(module, "main", "__bogo_reg")

    def test_no_temporal_machinery(self):
        module = build("bogo")
        assert not calls_to(module, "main", "__lock_alloc")
        assert "__frame_lock" not in module.functions["main"].locals


class TestWdlPasses:
    def test_narrow_uses_wdl_runtime(self):
        module = build("wdl_narrow")
        assert calls_to(module, "get", "__wdl_mload")

    def test_wide_uses_vector_ops(self):
        module = build("wdl_wide")
        assert ops_of(module, "get", irdef.AvxVld)
        assert ops_of(module, "get", irdef.AvxVchk)
        assert ops_of(module, "main", irdef.AvxVst)


class TestAsanPass:
    def test_allocator_renamed(self):
        module = build("asan")
        assert calls_to(module, "main", "__asan_malloc")
        assert calls_to(module, "main", "__asan_free")
        assert not calls_to(module, "main", "malloc")

    def test_checks_are_calls(self):
        module = build("asan")
        assert calls_to(module, "get", "__asan_check")

    def test_stack_redzones_added(self):
        module = build("asan")
        fn = module.functions["main"]
        redzones = [n for n in fn.locals if n.startswith("__rz")]
        assert len(redzones) >= 2   # leading + trailing around `local`

    def test_global_redzones_interleaved(self):
        module = build("asan", """
        int table[4] = {1, 2, 3, 4};
        int main(void) { return table[0] - 1; }""")
        assert any(n.startswith("__grz") for n in module.globals)


class TestGccPass:
    def test_canary_only_with_arrays(self):
        module = build("gcc")
        assert "__canary" in module.functions["main"].locals
        assert "__canary" not in module.functions["get"].locals

    def test_canary_checked_on_return(self):
        module = build("gcc")
        assert calls_to(module, "main", "__canary_check")

    def test_no_pointer_instrumentation(self):
        module = build("gcc")
        assert not ops_of(module, "get", irdef.TrapIf)
        assert not calls_to(module, "get", "__sb_mload")


class TestProvenance:
    def test_malloc_result_provenance(self):
        module = lower_unit(analyze(parse(POINTER_PROGRAM)))
        fn = module.functions["main"]
        assert ("call", "malloc") in fn.prov.values()

    def test_local_object_provenance(self):
        module = lower_unit(analyze(parse(POINTER_PROGRAM)))
        fn = module.functions["main"]
        assert any(p == ("local", "local") for p in fn.prov.values())

    def test_loaded_provenance(self):
        module = lower_unit(analyze(parse(POINTER_PROGRAM)))
        fn = module.functions["get"]
        assert ("loaded", None) in fn.prov.values()

    def test_null_provenance(self):
        module = lower_unit(analyze(parse("""
        int main(void) { long *p = (long*)0; return p == 0; }""")))
        fn = module.functions["main"]
        assert ("null", None) in fn.prov.values()
