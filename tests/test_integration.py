"""Cross-layer integration tests.

These exercise paths through several subsystems at once: compiled
programs surviving binary encode/decode round trips, the linker's
memory layout guarantees, CSR programming at startup, shadow-memory
consistency between the compiler's view and the machine's, and the
paper's lbm-OOM reproduction.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import HwstConfig
from repro.errors import LinkError
from repro.isa import csr as csrdef
from repro.isa.encoding import decode_program, encode_program
from repro.schemes import compile_source, run_source
from repro.sim.machine import Machine
from repro.sim.memory import DEFAULT_LAYOUT

FIB = """
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main(void) { return fib(10) - 55; }
"""


class TestBinaryRoundTrip:
    @pytest.mark.parametrize("scheme", ["baseline", "hwst128_tchk",
                                        "sbcets", "bogo", "wdl_wide"])
    def test_whole_program_encodes_and_decodes(self, scheme):
        """Every instruction codegen can emit must be encodable, and
        decoding the blob reproduces the instruction stream."""
        program = compile_source(FIB, scheme)
        blob = encode_program(program.instrs)
        assert len(blob) == 4 * len(program.instrs)
        back = decode_program(blob, base_pc=program.text_base)
        assert [i.op for i in back] == [i.op for i in program.instrs]
        for original, decoded in zip(program.instrs, back):
            assert (original.rd, original.rs1, original.rs2) == \
                (decoded.rd, decoded.rs1, decoded.rs2)
            assert original.imm == decoded.imm, (original.op, original.imm)

    def test_decoded_program_still_runs(self):
        program = compile_source(FIB, "hwst128_tchk")
        program.instrs = decode_program(
            encode_program(program.instrs), base_pc=program.text_base)
        result = Machine().run(program)
        assert result.status == "exit" and result.exit_code == 0


class TestLinker:
    def test_symbols_present(self):
        program = compile_source(FIB, "baseline")
        assert "main" in program.symbols
        assert "_start" in program.symbols
        assert "__rt_init" in program.symbols
        assert program.entry == program.symbols["_start"]

    def test_text_within_window(self):
        program = compile_source(FIB, "hwst128_tchk")
        assert program.text_base == DEFAULT_LAYOUT.text_base
        assert program.text_end <= DEFAULT_LAYOUT.data_base

    def test_globals_eight_aligned(self):
        program = compile_source("""
        char tag = 'x';
        long counter = 7;
        int main(void) { return (int)counter - 7; }
        """, "baseline")
        assert program.symbols["counter"] % 8 == 0

    def test_missing_main_rejected(self):
        with pytest.raises(LinkError):
            compile_source("int helper(void) { return 0; }", "baseline")

    def test_program_listing_renders(self):
        program = compile_source(FIB, "baseline")
        listing = program.listing(0, 24)
        assert "_start:" in listing

    def test_meta_records_scheme(self):
        program = compile_source(FIB, "sbcets")
        assert program.meta["scheme"] == "sbcets"


class TestCsrProgramming:
    def test_start_programs_hwst_csrs(self):
        """_start writes the shadow offset, packed widths and the lock
        window (Section 3.3: 'set at the beginning of a program')."""
        config = HwstConfig()
        program = compile_source(FIB, "hwst128_tchk", config)
        machine = Machine(config=config)
        machine.run(program)
        assert machine.csrs[csrdef.HWST_SM_OFFSET] == \
            config.shadow_offset
        widths = csrdef.unpack_meta_widths(
            machine.csrs[csrdef.HWST_META_WIDTHS])
        assert widths == (35, 29, 20, 44)
        assert machine.csrs[csrdef.HWST_LOCK_BASE] == config.lock_base


class TestShadowConsistency:
    def test_metadata_written_where_smac_maps(self):
        """After a pointer store, the compressed metadata must sit at
        Eq. 1's address for the container."""
        config = HwstConfig()
        source = """
        long *keep;
        int main(void) {
            keep = (long*)malloc(64);
            keep[0] = 1;
            return 0;
        }"""
        program = compile_source(source, "hwst128_tchk", config)
        machine = Machine(config=config)
        result = machine.run(program)
        assert result.ok
        container = program.symbols["keep"]
        shadow_addr = (container << 2) + config.shadow_offset
        lower = machine.memory.load_u64(shadow_addr)
        base, bound = machine.compressor.decompress_spatial(lower)
        pointer = machine.memory.load_u64(container)
        assert base == pointer
        assert bound == pointer + 64

    def test_temporal_half_holds_live_key(self):
        config = HwstConfig()
        source = """
        long *keep;
        int main(void) {
            keep = (long*)malloc(16);
            return 0;
        }"""
        machine = Machine(config=config)
        result = machine.run(compile_source(source, "hwst128_tchk",
                                            config))
        assert result.ok
        container = machine.program.symbols["keep"]
        upper = machine.memory.load_u64(
            (container << 2) + config.shadow_offset + 8)
        key, lock = machine.compressor.decompress_temporal(upper)
        assert lock != 0
        assert machine.memory.load_u64(lock) == key   # still live


class TestShadowBudget:
    def test_lbm_oom_reproduction(self):
        """Paper Sec. 5.1: lbm cannot finish under SBCETS due to
        insufficient memory — reproduced as a shadow budget."""
        config = HwstConfig(shadow_budget=4096)
        result = run_source("""
        int main(void) {
            long i;
            long *tab[64];
            for (i = 0; i < 64; i++) {
                tab[i] = (long*)malloc(64);
                tab[i][0] = i;
            }
            return 0;
        }""", "hwst128_tchk", config=config, timing=False)
        assert result.status == "shadow_oom"

    def test_unlimited_budget_by_default(self):
        result = run_source("""
        int main(void) {
            long *p = (long*)malloc(64);
            p[0] = 1;
            free(p);
            return 0;
        }""", "hwst128_tchk", timing=False)
        assert result.ok


@settings(max_examples=20, deadline=None)
@given(values=st.lists(st.integers(min_value=-1000, max_value=1000),
                       min_size=1, max_size=12))
def test_compiled_sum_matches_python(values):
    """Property: the full toolchain computes the same sum/min/max as
    Python for arbitrary small integer arrays."""
    array = ", ".join(str(v) for v in values)
    source = f"""
    long data[{len(values)}] = {{{array}}};
    int main(void) {{
        long sum = 0;
        long lo = data[0];
        long hi = data[0];
        int i;
        for (i = 0; i < {len(values)}; i++) {{
            sum += data[i];
            if (data[i] < lo) {{ lo = data[i]; }}
            if (data[i] > hi) {{ hi = data[i]; }}
        }}
        print_int(sum);
        print_char(' ');
        print_int(lo);
        print_char(' ');
        print_int(hi);
        return 0;
    }}"""
    result = run_source(source, "hwst128_tchk", timing=False)
    assert result.ok, result.detail
    expected = f"{sum(values)} {min(values)} {max(values)}"
    assert result.output_text() == expected
