"""Tests for the command-line tool chain (python -m repro)."""

import pytest

from repro.cli import main

CLEAN = """
int main(void) {
    long *p = (long*)malloc(8);
    p[0] = 41;
    long v = p[0] + 1;
    free(p);
    print_int(v);
    return 0;
}
"""

BUGGY = """
int main(void) {
    long *p = (long*)malloc(8);
    free(p);
    return (int)(p[0] & 0);
}
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "buggy.c"
    path.write_text(BUGGY)
    return str(path)


class TestRun:
    def test_run_clean(self, clean_file, capsys):
        assert main(["run", clean_file]) == 0
        out = capsys.readouterr().out
        assert "status : exit" in out
        assert "'42'" in out

    def test_run_detects_bug(self, buggy_file, capsys):
        rc = main(["run", buggy_file, "--scheme", "hwst128_tchk"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "temporal_violation" in out

    def test_run_with_stats(self, clean_file, capsys):
        assert main(["run", clean_file, "--stats"]) == 0
        assert "loads" in capsys.readouterr().out

    def test_run_with_trace(self, buggy_file, capsys):
        rc = main(["run", buggy_file, "--scheme", "sbcets",
                   "--trace", "8"])
        assert rc == 1
        assert "last retired instructions" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent.c"]) == 1

    def test_compile_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text("int main(void) { return undeclared; }")
        assert main(["run", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestCompile:
    def test_compile_summary(self, clean_file, capsys):
        assert main(["compile", clean_file]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out
        assert "entry" in out

    def test_disasm(self, clean_file, capsys):
        assert main(["compile", clean_file, "--disasm"]) == 0
        out = capsys.readouterr().out
        assert "main:" in out
        assert "jalr" in out

    def test_encode_writes_binary(self, clean_file, tmp_path, capsys):
        out_bin = str(tmp_path / "prog.bin")
        assert main(["compile", clean_file, "--encode", out_bin]) == 0
        blob = open(out_bin, "rb").read()
        assert len(blob) % 4 == 0 and len(blob) > 100

    def test_encoded_binary_decodes(self, clean_file, tmp_path):
        out_bin = str(tmp_path / "prog.bin")
        main(["compile", clean_file, "--encode", out_bin,
              "--scheme", "hwst128_tchk"])
        from repro.isa.encoding import decode_program

        instrs = decode_program(open(out_bin, "rb").read())
        assert any(i.op == "tchk" for i in instrs)


class TestListings:
    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "hwst128_tchk" in out and "sbcets" in out

    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "treeadd" in out and "bzip2" in out

    def test_workload_run(self, capsys):
        assert main(["workloads", "--run", "treeadd",
                     "--scale", "small"]) == 0
        assert "cycles" in capsys.readouterr().out

    def test_workload_unknown(self, capsys):
        assert main(["workloads", "--run", "nope"]) == 1


class TestJuliet:
    def test_juliet_show(self, capsys):
        assert main(["juliet", "--cwe", "415", "--limit", "1",
                     "--show"]) == 0
        out = capsys.readouterr().out
        assert "CWE415" in out and "free(p)" in out

    def test_juliet_run(self, capsys):
        assert main(["juliet", "--cwe", "476", "--limit", "1",
                     "--scheme", "sbcets"]) == 0
        assert "DETECTED" in capsys.readouterr().out


class TestExperimentsPassthrough:
    def test_hwcost(self, capsys):
        assert main(["experiments", "hwcost"]) == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        assert "fig4" in capsys.readouterr().out
