"""Tests for the command-line tool chain (python -m repro)."""

import pytest

from repro import errors
from repro.cli import main

CLEAN = """
int main(void) {
    long *p = (long*)malloc(8);
    p[0] = 41;
    long v = p[0] + 1;
    free(p);
    print_int(v);
    return 0;
}
"""

BUGGY = """
int main(void) {
    long *p = (long*)malloc(8);
    free(p);
    return (int)(p[0] & 0);
}
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "buggy.c"
    path.write_text(BUGGY)
    return str(path)


class TestRun:
    def test_run_clean(self, clean_file, capsys):
        assert main(["run", clean_file]) == 0
        out = capsys.readouterr().out
        assert "status : exit" in out
        assert "'42'" in out

    def test_run_detects_bug(self, buggy_file, capsys):
        rc = main(["run", buggy_file, "--scheme", "hwst128_tchk"])
        assert rc == errors.EXIT_TEMPORAL
        out = capsys.readouterr().out
        assert "temporal_violation" in out
        assert "TemporalViolation" in out  # trap line

    def test_run_with_stats(self, clean_file, capsys):
        assert main(["run", clean_file, "--stats"]) == 0
        assert "loads" in capsys.readouterr().out

    def test_run_with_trace(self, buggy_file, capsys):
        rc = main(["run", buggy_file, "--scheme", "sbcets",
                   "--trace", "8"])
        assert rc == errors.EXIT_TEMPORAL
        assert "last retired instructions" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent.c"]) == errors.EXIT_FAILURE

    def test_compile_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text("int main(void) { return undeclared; }")
        assert main(["run", str(path)]) == errors.EXIT_TOOLCHAIN
        assert "error" in capsys.readouterr().err


class TestCompile:
    def test_compile_summary(self, clean_file, capsys):
        assert main(["compile", clean_file]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out
        assert "entry" in out

    def test_disasm(self, clean_file, capsys):
        assert main(["compile", clean_file, "--disasm"]) == 0
        out = capsys.readouterr().out
        assert "main:" in out
        assert "jalr" in out

    def test_encode_writes_binary(self, clean_file, tmp_path, capsys):
        out_bin = str(tmp_path / "prog.bin")
        assert main(["compile", clean_file, "--encode", out_bin]) == 0
        blob = open(out_bin, "rb").read()
        assert len(blob) % 4 == 0 and len(blob) > 100

    def test_encoded_binary_decodes(self, clean_file, tmp_path):
        out_bin = str(tmp_path / "prog.bin")
        main(["compile", clean_file, "--encode", out_bin,
              "--scheme", "hwst128_tchk"])
        from repro.isa.encoding import decode_program

        instrs = decode_program(open(out_bin, "rb").read())
        assert any(i.op == "tchk" for i in instrs)


class TestListings:
    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "hwst128_tchk" in out and "sbcets" in out

    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "treeadd" in out and "bzip2" in out

    def test_workload_run(self, capsys):
        assert main(["workloads", "--run", "treeadd",
                     "--scale", "small"]) == 0
        assert "cycles" in capsys.readouterr().out

    def test_workload_unknown(self, capsys):
        assert main(["workloads", "--run", "nope"]) == 1


class TestJuliet:
    def test_juliet_show(self, capsys):
        assert main(["juliet", "--cwe", "415", "--limit", "1",
                     "--show"]) == 0
        out = capsys.readouterr().out
        assert "CWE415" in out and "free(p)" in out

    def test_juliet_run(self, capsys):
        assert main(["juliet", "--cwe", "476", "--limit", "1",
                     "--scheme", "sbcets"]) == 0
        assert "DETECTED" in capsys.readouterr().out


class TestExperimentsPassthrough:
    def test_hwcost(self, capsys):
        assert main(["experiments", "hwcost"]) == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        assert "fig4" in capsys.readouterr().out


class TestExitCodes:
    """Every ReproError class maps to a distinct documented exit code."""

    def _run(self, tmp_path, source, *argv):
        path = tmp_path / "prog.c"
        path.write_text(source)
        return main(["run", str(path), *argv])

    def test_codes_are_distinct(self):
        codes = [errors.EXIT_OK, errors.EXIT_FAILURE, errors.EXIT_USAGE,
                 errors.EXIT_TOOLCHAIN, errors.EXIT_SPATIAL,
                 errors.EXIT_TEMPORAL, errors.EXIT_MEMFAULT,
                 errors.EXIT_SIMLIMIT, errors.EXIT_ABORT,
                 errors.EXIT_ILLEGAL, errors.EXIT_SHADOW_OOM]
        assert len(set(codes)) == len(codes)

    def test_exit_code_for_walks_mro(self):
        assert errors.exit_code_for(
            errors.ParseError("x", 1, 1)) == errors.EXIT_TOOLCHAIN
        assert errors.exit_code_for(
            errors.SemanticError("x")) == errors.EXIT_TOOLCHAIN
        assert errors.exit_code_for(
            errors.SpatialViolation(0, 0, 0, 8)) == errors.EXIT_SPATIAL
        assert errors.exit_code_for(
            errors.TemporalViolation(0, 1, 2, 3)) == errors.EXIT_TEMPORAL
        assert errors.exit_code_for(
            errors.MemoryFault(0)) == errors.EXIT_MEMFAULT
        assert errors.exit_code_for(
            errors.SimLimitExceeded(9)) == errors.EXIT_SIMLIMIT
        assert errors.exit_code_for(
            errors.ReproError("generic")) == errors.EXIT_FAILURE

    def test_toolchain_error(self, tmp_path):
        rc = self._run(tmp_path, "int main(void) { return nope; }")
        assert rc == errors.EXIT_TOOLCHAIN

    def test_spatial_violation(self, tmp_path):
        src = """
        int main(void) {
            long *a = (long*)malloc(8);
            a[3] = 1;
            return 0;
        }
        """
        rc = self._run(tmp_path, src, "--scheme", "hwst128")
        assert rc == errors.EXIT_SPATIAL

    def test_temporal_violation(self, tmp_path):
        src = """
        int main(void) {
            long *p = (long*)malloc(8);
            free(p);
            return (int)(p[0] & 0);
        }
        """
        rc = self._run(tmp_path, src, "--scheme", "hwst128_tchk")
        assert rc == errors.EXIT_TEMPORAL

    def test_memory_fault(self, tmp_path):
        src = """
        int main(void) {
            long *p = 0;
            return (int)(p[0] & 0);
        }
        """
        rc = self._run(tmp_path, src, "--scheme", "baseline")
        assert rc == errors.EXIT_MEMFAULT

    def test_sim_limit(self, tmp_path):
        src = "int main(void) { while (1) {} return 0; }"
        rc = self._run(tmp_path, src, "--max-instructions", "1000")
        assert rc == errors.EXIT_SIMLIMIT

    def test_nonzero_exit_is_generic_failure(self, tmp_path):
        rc = self._run(tmp_path, "int main(void) { return 3; }")
        assert rc == errors.EXIT_FAILURE

    def test_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run"])  # missing file operand
        assert exc.value.code == errors.EXIT_USAGE


class TestFaultCampaign:
    def test_smoke_and_report(self, tmp_path, capsys):
        out = str(tmp_path / "report.json")
        rc = main(["faultcampaign", "--scheme", "hwst128", "--n", "6",
                   "--seed", "5", "--out", out])
        assert rc == 0
        text = capsys.readouterr().out
        assert "fault campaign" in text
        import json

        report = json.loads(open(out).read())
        assert report["schema"] == "repro.faultinject/v1"
        assert sum(report["scoreboard"].values()) == 6
        assert report["scoreboard"]["crash"] == 0
        assert report["scoreboard"]["hang"] == 0

    def test_unknown_family_is_usage_error(self, capsys):
        rc = main(["faultcampaign", "--faults", "nope", "--n", "1"])
        assert rc == errors.EXIT_USAGE
        assert "unknown fault families" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# robustness exit codes + signal handling (repro serve / campaigns)
# ---------------------------------------------------------------------------

import json
import os
import signal
import subprocess
import sys

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


class TestRobustnessExitCodes:
    def test_new_codes_are_stable(self):
        assert errors.EXIT_INTERRUPTED == 12
        assert errors.EXIT_OVERLOAD_SHED == 13
        assert errors.EXIT_DRAIN_TIMEOUT == 14

    def test_error_classes_map_to_their_codes(self):
        assert errors.exit_code_for(
            errors.CampaignInterrupted(3, 10)) == errors.EXIT_INTERRUPTED
        assert errors.exit_code_for(
            errors.OverloadShed("queue full")) == \
            errors.EXIT_OVERLOAD_SHED
        assert errors.exit_code_for(
            errors.DrainTimeout(2, 5.0)) == errors.EXIT_DRAIN_TIMEOUT

    def test_status_mapping_is_shared_with_serve(self):
        # The serve envelope's cli_exit_code uses this same function,
        # so the CLI and the service can never disagree.
        assert errors.exit_code_for_status("exit", 0) == errors.EXIT_OK
        assert errors.exit_code_for_status("exit", 3) == \
            errors.EXIT_FAILURE
        assert errors.exit_code_for_status("temporal_violation") == \
            errors.EXIT_TEMPORAL
        assert errors.exit_code_for_status("limit") == \
            errors.EXIT_SIMLIMIT


class TestGracefulInterrupt:
    def test_sigterm_flushes_truncated_faultcampaign(self, tmp_path):
        """SIGTERM mid-campaign: the current chunk finishes, a valid
        truncated report reaches --out, and the exit code is 12."""
        out = tmp_path / "report.json"
        env = dict(os.environ, PYTHONPATH=_SRC)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "faultcampaign",
             "--n", "200", "--heartbeat", "0.1", "--out", str(out)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True)
        try:
            first = proc.stderr.readline()   # first heartbeat tick
            assert first.strip(), "campaign produced no heartbeat"
            proc.send_signal(signal.SIGTERM)
            _, stderr_rest = proc.communicate(timeout=180)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == errors.EXIT_INTERRUPTED
        assert "interrupt" in (first + stderr_rest)
        report = json.loads(out.read_text())
        assert report["interrupted"] is True
        assert report["completed"] == len(report["injections"])
        assert 0 < report["completed"] < 200
