"""Golden tests for RV64 arithmetic corner cases in the ISS.

Each case executes one instruction on the machine and compares against
the architecturally defined result — the corners where Python integer
semantics and two's-complement hardware diverge.
"""

import pytest

from repro.isa.instructions import Instr, li_sequence
from repro.sim.machine import Machine
from repro.sim.memory import DEFAULT_LAYOUT
from repro.sim.program import Program

INT64_MIN = -(1 << 63)
INT32_MIN = -(1 << 31)
U64 = (1 << 64) - 1


def compute(op, a, b):
    machine = Machine()
    instrs = (li_sequence(5, a) + li_sequence(6, b) +
              [Instr(op, rd=10, rs1=5, rs2=6),
               Instr("addi", rd=17, rs1=0, imm=93),
               Instr("ecall")])
    program = Program(instrs=instrs, entry=DEFAULT_LAYOUT.text_base)
    result = machine.run(program)
    assert result.status == "exit"
    return result.exit_code  # sign-extended 64-bit value


CASES = [
    # op, a, b, expected (signed 64-bit)
    ("add", INT64_MIN, -1, (1 << 63) - 1),          # wraps
    ("sub", INT64_MIN, 1, (1 << 63) - 1),
    ("mul", 1 << 62, 4, 0),                          # low 64 bits
    ("mulh", 1 << 62, 4, 1),                         # high 64 bits
    ("mulhu", -1, -1, -2),                           # (2^64-1)^2 >> 64
    ("div", INT64_MIN, -1, INT64_MIN),               # overflow case
    ("div", 7, 0, -1),                               # div by zero
    ("divu", 7, 0, -1),                              # all ones
    ("rem", INT64_MIN, -1, 0),
    ("rem", 7, 0, 7),
    ("remu", 7, 0, 7),
    ("div", -7, 2, -3),                              # trunc toward zero
    ("rem", -7, 2, -1),
    ("sll", 1, 63, INT64_MIN),
    ("sll", 1, 64, 1),                               # shamt mod 64
    ("srl", -1, 1, (1 << 63) - 1),                   # logical
    ("sra", -8, 1, -4),                              # arithmetic
    ("slt", -1, 0, 1),
    ("sltu", -1, 0, 0),                              # unsigned: huge > 0
    ("addw", (1 << 31) - 1, 1, INT32_MIN),           # 32-bit wrap
    ("subw", INT32_MIN, 1, (1 << 31) - 1),
    ("mulw", 1 << 20, 1 << 20, 0),                   # 2^40 mod 2^32
    ("divw", INT32_MIN, -1, INT32_MIN),              # 32-bit overflow
    ("divw", 7, 0, -1),
    ("remw", INT32_MIN, -1, 0),
    ("remw", 9, 0, 9),
    ("divuw", 7, 0, -1),
    ("remuw", 9, 0, 9),
    ("sllw", 1, 31, INT32_MIN),                      # sign-extends
    ("srlw", INT32_MIN, 1, 1 << 30),
    ("sraw", INT32_MIN, 31, -1),
]


@pytest.mark.parametrize("op,a,b,expected", CASES,
                         ids=[f"{c[0]}_{i}" for i, c in enumerate(CASES)])
def test_arithmetic_corner(op, a, b, expected):
    assert compute(op, a, b) == expected


class TestImmediates:
    def run_prog(self, instrs):
        program = Program(
            instrs=list(instrs) + [Instr("addi", rd=17, rs1=0, imm=93),
                                   Instr("ecall")],
            entry=DEFAULT_LAYOUT.text_base)
        result = Machine().run(program)
        assert result.status == "exit"
        return result.exit_code

    def test_addiw_wraps(self):
        value = self.run_prog(
            li_sequence(5, (1 << 31) - 1) +
            [Instr("addiw", rd=10, rs1=5, imm=1)])
        assert value == INT32_MIN

    def test_sraiw_on_negative(self):
        value = self.run_prog(
            li_sequence(5, -64) + [Instr("sraiw", rd=10, rs1=5, imm=3)])
        assert value == -8

    def test_srli_vs_srai(self):
        logical = self.run_prog(
            li_sequence(5, -2) + [Instr("srli", rd=10, rs1=5, imm=1)])
        arithmetic = self.run_prog(
            li_sequence(5, -2) + [Instr("srai", rd=10, rs1=5, imm=1)])
        assert logical == (1 << 63) - 1
        assert arithmetic == -1

    def test_sltiu_with_negative_imm(self):
        # sltiu compares against the sign-extended immediate as unsigned:
        # anything but all-ones is < 0xFFFF...FFFF.
        value = self.run_prog(
            li_sequence(5, 12345) + [Instr("sltiu", rd=10, rs1=5, imm=-1)])
        assert value == 1

    def test_lui_sign_extends(self):
        value = self.run_prog([Instr("lui", rd=10, imm=0x80000)])
        assert value == -(1 << 31)

    def test_auipc_is_pc_relative(self):
        value = self.run_prog([Instr("auipc", rd=10, imm=0)])
        assert value == DEFAULT_LAYOUT.text_base
