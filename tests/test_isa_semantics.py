"""Golden tests for RV64 arithmetic corner cases — ISS *and* spec.

Each case executes one instruction and compares against the
architecturally defined result — the corners where Python integer
semantics and two's-complement hardware diverge. Every case runs on
two independent implementations:

* the ISS (``repro.sim.machine.Machine``), and
* the executable specification (``repro.spec`` via
  :func:`repro.spec.lockstep.run_spec`, which shares no code with the
  simulator).

A failure therefore names the wrong side: if only one implementation
misses the hand-written expectation, that implementation has the bug;
if both miss it identically, the expectation (or the architecture
reading) is wrong. See ``docs/conformance.md``.
"""

import pytest

from repro.isa.instructions import Instr, li_sequence
from repro.sim.machine import Machine
from repro.sim.memory import DEFAULT_LAYOUT
from repro.sim.program import Program
from repro.spec.lockstep import run_spec

INT64_MIN = -(1 << 63)
INT32_MIN = -(1 << 31)
U64 = (1 << 64) - 1

#: (base, range, lock, key) of the default platform geometry — the
#: spec-side twin of ``HwstConfig().widths``.
WIDTHS = (35, 29, 20, 44)
LOCK_BASE = DEFAULT_LAYOUT.shadow_offset
LOCK_LIMIT = LOCK_BASE + 8 * (1 << 20)


def _program(instrs):
    return Program(
        instrs=list(instrs) + [Instr("addi", rd=17, rs1=0, imm=93),
                               Instr("ecall")],
        entry=DEFAULT_LAYOUT.text_base)


def compute_both(instrs):
    """Exit code of the instruction sequence on the ISS and the spec."""
    program = _program(instrs)
    iss = Machine().run(program)
    assert iss.status == "exit"
    spec_outcome, _ = run_spec(program, widths=WIDTHS,
                               lock_base=LOCK_BASE, lock_limit=LOCK_LIMIT)
    assert spec_outcome.status == "exit"
    return iss.exit_code, spec_outcome.exit_code


def assert_both(instrs, expected):
    """Both implementations must produce ``expected``; a mismatch
    names the side (or sides) that got it wrong."""
    iss_value, spec_value = compute_both(instrs)
    wrong = []
    if iss_value != expected:
        wrong.append(f"ISS produced {iss_value}")
    if spec_value != expected:
        wrong.append(f"spec produced {spec_value}")
    assert not wrong, (f"expected {expected}: " + "; ".join(wrong) +
                       " (only one side wrong -> that implementation "
                       "has the bug; both wrong -> re-derive the "
                       "expectation)")


def binop(op, a, b):
    return (li_sequence(5, a) + li_sequence(6, b) +
            [Instr(op, rd=10, rs1=5, rs2=6)])


CASES = [
    # op, a, b, expected (signed 64-bit)
    ("add", INT64_MIN, -1, (1 << 63) - 1),          # wraps
    ("sub", INT64_MIN, 1, (1 << 63) - 1),
    ("mul", 1 << 62, 4, 0),                          # low 64 bits
    ("mulh", 1 << 62, 4, 1),                         # high 64 bits
    ("mulhu", -1, -1, -2),                           # (2^64-1)^2 >> 64
    ("div", INT64_MIN, -1, INT64_MIN),               # overflow case
    ("div", 7, 0, -1),                               # div by zero
    ("divu", 7, 0, -1),                              # all ones
    ("rem", INT64_MIN, -1, 0),
    ("rem", 7, 0, 7),
    ("remu", 7, 0, 7),
    ("div", -7, 2, -3),                              # trunc toward zero
    ("rem", -7, 2, -1),
    # Mixed-sign division beyond 2^53: float-based truncation loses
    # precision here (caught by spec lockstep; keep as regression).
    ("div", INT64_MIN + 1, 3, -3074457345618258602),
    ("rem", INT64_MIN + 1, 3, -1),
    ("div", 3, INT64_MIN + 2, 0),
    ("rem", (1 << 62) + 1, -3, 2),
    ("sll", 1, 63, INT64_MIN),
    ("sll", 1, 64, 1),                               # shamt mod 64
    ("srl", -1, 1, (1 << 63) - 1),                   # logical
    ("sra", -8, 1, -4),                              # arithmetic
    ("slt", -1, 0, 1),
    ("sltu", -1, 0, 0),                              # unsigned: huge > 0
    ("addw", (1 << 31) - 1, 1, INT32_MIN),           # 32-bit wrap
    ("subw", INT32_MIN, 1, (1 << 31) - 1),
    ("mulw", 1 << 20, 1 << 20, 0),                   # 2^40 mod 2^32
    ("divw", INT32_MIN, -1, INT32_MIN),              # 32-bit overflow
    ("divw", 7, 0, -1),
    ("remw", INT32_MIN, -1, 0),
    ("remw", 9, 0, 9),
    ("divuw", 7, 0, -1),
    ("remuw", 9, 0, 9),
    ("sllw", 1, 31, INT32_MIN),                      # sign-extends
    ("srlw", INT32_MIN, 1, 1 << 30),
    ("sraw", INT32_MIN, 31, -1),
]


@pytest.mark.parametrize("op,a,b,expected", CASES,
                         ids=[f"{c[0]}_{i}" for i, c in enumerate(CASES)])
def test_arithmetic_corner(op, a, b, expected):
    assert_both(binop(op, a, b), expected)


class TestImmediates:
    def test_addiw_wraps(self):
        assert_both(li_sequence(5, (1 << 31) - 1) +
                    [Instr("addiw", rd=10, rs1=5, imm=1)], INT32_MIN)

    def test_sraiw_on_negative(self):
        assert_both(li_sequence(5, -64) +
                    [Instr("sraiw", rd=10, rs1=5, imm=3)], -8)

    def test_srli_vs_srai(self):
        assert_both(li_sequence(5, -2) +
                    [Instr("srli", rd=10, rs1=5, imm=1)], (1 << 63) - 1)
        assert_both(li_sequence(5, -2) +
                    [Instr("srai", rd=10, rs1=5, imm=1)], -1)

    def test_sltiu_with_negative_imm(self):
        # sltiu compares against the sign-extended immediate as unsigned:
        # anything but all-ones is < 0xFFFF...FFFF.
        assert_both(li_sequence(5, 12345) +
                    [Instr("sltiu", rd=10, rs1=5, imm=-1)], 1)

    def test_lui_sign_extends(self):
        assert_both([Instr("lui", rd=10, imm=0x80000)], -(1 << 31))

    def test_auipc_is_pc_relative(self):
        assert_both([Instr("auipc", rd=10, imm=0)],
                    DEFAULT_LAYOUT.text_base)


class TestDisagreementNamesTheWrongSide:
    """The helper's failure message must identify which implementation
    missed the expectation (satellite contract of the dual-oracle
    refactor)."""

    def test_wrong_expectation_blames_both(self):
        with pytest.raises(AssertionError) as excinfo:
            assert_both(binop("add", 2, 2), 5)
        message = str(excinfo.value)
        assert "ISS produced 4" in message
        assert "spec produced 4" in message
