"""Tests for the set-associative data-cache model."""

import pytest
from hypothesis import given, strategies as st

from repro.pipeline.cache import CacheParams, DataCache


class TestGeometry:
    def test_default_sets(self):
        params = CacheParams()
        assert params.sets == 16 * 1024 // (4 * 64)

    def test_bad_line_size(self):
        with pytest.raises(ValueError):
            CacheParams(line_bytes=48)

    def test_bad_total_size(self):
        with pytest.raises(ValueError):
            CacheParams(size_bytes=1000, ways=3, line_bytes=64)


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        cache = DataCache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.access(0x1008) is True  # same line

    def test_different_lines(self):
        cache = DataCache()
        cache.access(0x1000)
        assert cache.access(0x1040) is False

    def test_lru_within_set(self):
        params = CacheParams(size_bytes=2 * 64, ways=2, line_bytes=64)
        cache = DataCache(params)  # a single set, two ways
        cache.access(0 * 64)
        cache.access(1 * 64)
        cache.access(0 * 64)      # line 0 is MRU
        cache.access(2 * 64)      # evicts line 1
        assert cache.access(0 * 64) is True
        assert cache.access(1 * 64) is False

    def test_flush(self):
        cache = DataCache()
        cache.access(0x1000)
        cache.flush()
        assert cache.access(0x1000) is False

    def test_hit_rate(self):
        cache = DataCache()
        cache.access(0x0)
        cache.access(0x0)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_sequential_streaming_hit_rate(self):
        """Sequential byte accesses hit 63/64 of the time (64 B lines)."""
        cache = DataCache()
        for addr in range(0, 64 * 64):
            cache.access(addr)
        assert cache.misses == 64
        assert cache.hits == 64 * 64 - 64

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                    min_size=1, max_size=500))
    def test_repeat_access_always_hits(self, addrs):
        """Property: accessing the same address twice in a row hits."""
        cache = DataCache()
        for addr in addrs:
            cache.access(addr)
            assert cache.access(addr) is True

    def test_reset_stats(self):
        cache = DataCache()
        cache.access(0)
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0
