"""Tests for the mini-C tokenizer."""

import pytest

from repro.errors import LexError
from repro.minic.lexer import (
    TOK_CHAR, TOK_EOF, TOK_IDENT, TOK_INT, TOK_KEYWORD, TOK_OP,
    TOK_STRING, tokenize,
)


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == TOK_EOF

    def test_identifiers(self):
        assert values("foo _bar baz123") == ["foo", "_bar", "baz123"]

    def test_keywords_vs_identifiers(self):
        toks = tokenize("int integer")
        assert toks[0].kind == TOK_KEYWORD
        assert toks[1].kind == TOK_IDENT

    def test_decimal_numbers(self):
        assert values("0 42 1234567890") == [0, 42, 1234567890]

    def test_hex_numbers(self):
        assert values("0x0 0xFF 0xdeadBEEF") == [0, 255, 0xDEADBEEF]

    def test_integer_suffixes_swallowed(self):
        assert values("10L 10UL 10u") == [10, 10, 10]

    def test_empty_hex_rejected(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_char_literals(self):
        assert values("'a' '0' ' '") == [97, 48, 32]

    def test_char_escapes(self):
        assert values(r"'\n' '\t' '\0' '\\' '\''") == [10, 9, 0, 92, 39]

    def test_hex_escape(self):
        assert values(r"'\x41'") == [0x41]

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'ab'")

    def test_empty_char(self):
        with pytest.raises(LexError):
            tokenize("''")


class TestStrings:
    def test_simple_string(self):
        assert values('"hello"') == [b"hello"]

    def test_string_escapes(self):
        assert values(r'"a\nb\0"') == [b"a\nb\x00"]

    def test_adjacent_concatenation(self):
        assert values('"foo" "bar"') == [b"foobar"]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"ab\ncd"')


class TestOperators:
    def test_maximal_munch(self):
        assert values("<<= >>= == <= >= != && || -> ++ --") == \
            ["<<=", ">>=", "==", "<=", ">=", "!=", "&&", "||", "->",
             "++", "--"]

    def test_compound_assign(self):
        assert values("+= -= *= /= %= &= |= ^=") == \
            ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="]

    def test_single_char_ops(self):
        assert values("+ - * / % < > ! ~ & | ^ ( ) { } [ ] ; , . ? :") \
            == list("+-*/%<>!~&|^(){}[];,.?:")

    def test_arrow_vs_minus(self):
        assert values("a->b - c") == ["a", "->", "b", "-", "c"]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestComments:
    def test_line_comment(self):
        assert values("a // comment here\n b") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_comment_not_nested(self):
        assert values("a /* /* */ b") == ["a", "b"]


class TestPositions:
    def test_line_tracking(self):
        toks = tokenize("a\nbb\n  c")
        assert toks[0].line == 1
        assert toks[1].line == 2
        assert toks[2].line == 3
        assert toks[2].col == 3

    def test_error_position(self):
        try:
            tokenize("ab\n  @")
        except LexError as err:
            assert err.line == 2 and err.col == 3
        else:  # pragma: no cover
            raise AssertionError("expected LexError")
