"""Tests for repro.analyze: CFG and dominators, the generic dataflow
engine, the interval/pointer domain, the static memory-safety linter,
and redundant-check elision (including the Juliet cross-validation:
static findings must agree with the dynamic oracle)."""

import json

from repro.analyze import (
    CFG, Interval, ReachingDefinitions, analyze_module, analyze_source,
    elide_module, run_forward,
)
from repro.analyze.dataflow import EdgeStates, ForwardAnalysis
from repro.core.config import HwstConfig
from repro.harness.runner import detected, run_program, run_workload
from repro.ir.instrument import instrument_module
from repro.ir.ir import Br, Function, IConst, Jmp, Ret
from repro.ir.irgen import lower_unit
from repro.minic import analyze as sema_analyze
from repro.minic import tokenize
from repro.minic.parser import Parser
from repro.minic.types import INT
from repro.workloads.juliet import generate_corpus


def build_fn(blocks):
    """Skeleton function from (label, terminator-spec) pairs; specs are
    ("jmp", target), ("br", then, else) or ("ret",)."""
    fn = Function("f", INT, [])
    for label, spec in blocks:
        blk = fn.add_block(label)
        if spec[0] == "jmp":
            blk.instrs.append(Jmp(spec[1]))
        elif spec[0] == "br":
            v = fn.new_vreg()
            blk.instrs.append(IConst(v, 1))
            blk.instrs.append(Br(v, spec[1], spec[2]))
        else:
            v = fn.new_vreg()
            blk.instrs.append(IConst(v, 0))
            blk.instrs.append(Ret(v))
    return fn


def lower(source, name="m"):
    unit = Parser(tokenize(source)).parse_translation_unit()
    return lower_unit(sema_analyze(unit), name)


# ---------------------------------------------------------------------------
# CFG / dominators
# ---------------------------------------------------------------------------

class TestCFG:
    def test_diamond(self):
        fn = build_fn([
            ("entry", ("br", "a", "b")),
            ("a", ("jmp", "join")),
            ("b", ("jmp", "join")),
            ("join", ("ret",)),
        ])
        cfg = CFG(fn)
        assert cfg.entry == "entry"
        assert set(cfg.succs["entry"]) == {"a", "b"}
        assert sorted(cfg.preds["join"]) == ["a", "b"]
        assert cfg.rpo[0] == "entry" and cfg.rpo[-1] == "join"
        assert cfg.idom["join"] == "entry"
        assert cfg.idom["a"] == "entry"
        assert cfg.idom["entry"] is None
        assert cfg.dominates("entry", "join")
        assert not cfg.dominates("a", "join")
        assert cfg.back_edges() == []

    def test_loop(self):
        fn = build_fn([
            ("entry", ("jmp", "head")),
            ("head", ("br", "body", "exit")),
            ("body", ("jmp", "head")),
            ("exit", ("ret",)),
        ])
        cfg = CFG(fn)
        assert cfg.back_edges() == [("body", "head")]
        assert cfg.loop_heads() == {"head"}
        assert cfg.idom["body"] == "head"
        assert cfg.idom["exit"] == "head"
        assert cfg.dominates("head", "body")
        tree = cfg.dominator_tree()
        assert sorted(tree["head"]) == ["body", "exit"]

    def test_unreachable_blocks(self):
        fn = build_fn([
            ("entry", ("jmp", "live")),
            ("live", ("ret",)),
            ("dead.1", ("jmp", "live")),
        ])
        cfg = CFG(fn)
        assert cfg.unreachable_blocks() == ["dead.1"]
        assert "dead.1" not in cfg.rpo
        assert not cfg.dominates("entry", "dead.1")
        assert not cfg.dominates("dead.1", "live")

    def test_same_label_branch_single_successor(self):
        fn = build_fn([
            ("entry", ("br", "next", "next")),
            ("next", ("ret",)),
        ])
        cfg = CFG(fn)
        assert cfg.succs["entry"] == ("next",)
        assert cfg.preds["next"] == ["entry"]


# ---------------------------------------------------------------------------
# Dataflow engine
# ---------------------------------------------------------------------------

class _LoopCount(ForwardAnalysis):
    """Counts body executions as an Interval — infinite-height domain,
    so convergence exercises the widening hook."""

    def initial_state(self, cfg):
        return Interval.const(0)

    def join(self, a, b):
        return a.join(b)

    def widen(self, old, new):
        return old.widen(new)

    def transfer(self, cfg, label, state):
        if label == "body":
            return state.add(Interval.const(1))
        return state


class TestEngine:
    def _loop_fn(self):
        return build_fn([
            ("entry", ("jmp", "head")),
            ("head", ("br", "body", "exit")),
            ("body", ("jmp", "head")),
            ("exit", ("ret",)),
        ])

    def test_loop_terminates_with_widening(self):
        result = run_forward(_LoopCount(), self._loop_fn())
        head = result.block_in["head"]
        assert head.lo == 0 and head.hi >= 3
        # Far fewer iterations than the safety valve allows.
        assert result.iterations < 64 * 4 * 5

    def test_infeasible_edge_skips_successor(self):
        class DeadElse(_LoopCount):
            def transfer(self, cfg, label, state):
                if label == "entry":
                    return EdgeStates({"then": state, "else": None})
                return state

        fn = build_fn([
            ("entry", ("br", "then", "else")),
            ("then", ("jmp", "join")),
            ("else", ("jmp", "join")),
            ("join", ("ret",)),
        ])
        result = run_forward(DeadElse(), fn)
        assert "else" not in result.block_in
        assert result.edge_out[("entry", "else")] is None
        assert result.block_in["join"] == Interval.const(0)

    def test_reaching_definitions_diamond(self):
        module = lower("""
int main(void) {
    int x = 1;
    if (rand_next() > 0) {
        x = 2;
    } else {
        x = 3;
    }
    return x;
}
""")
        fn = module.functions["main"]
        result = run_forward(ReachingDefinitions(fn), fn)
        ret_label = next(
            blk.label for blk in fn.blocks
            if blk.instrs and isinstance(blk.instrs[-1], Ret)
            and blk.label in result.block_in)
        sites = result.block_in[ret_label].get("x", frozenset())
        # Both arm definitions reach the join; the entry def is killed.
        assert len(sites) == 2


# ---------------------------------------------------------------------------
# Interval domain
# ---------------------------------------------------------------------------

class TestInterval:
    def test_arithmetic(self):
        a = Interval(2, 5)
        b = Interval(-1, 3)
        assert a.add(b) == Interval(1, 8)
        assert a.sub(b) == Interval(-1, 6)
        assert a.neg() == Interval(-5, -2)
        assert a.mul(Interval.const(4)) == Interval(8, 20)

    def test_definitely(self):
        assert Interval(0, 3).definitely("slt", Interval(4, 9))
        assert not Interval(0, 5).definitely("slt", Interval(4, 9))
        assert Interval.const(7).definitely("eq", Interval.const(7))

    def test_join_meet(self):
        assert Interval(0, 2).join(Interval(5, 9)) == Interval(0, 9)
        assert Interval(0, 5).meet(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 2).meet(Interval(5, 9)) is None

    def test_widen_uses_thresholds(self):
        widened = Interval(0, 10).widen(Interval(0, 11))
        assert widened == Interval(0, 127)
        down = Interval(-5, 0).widen(Interval(-6, 0))
        assert down == Interval(-128, 0)
        # A stable bound is untouched.
        assert Interval(0, 10).widen(Interval(0, 10)) == Interval(0, 10)

    def test_clamp_width(self):
        assert Interval(0, 100).clamp_width(8, True) == Interval(0, 100)
        assert Interval(0, 300).clamp_width(8, True) == \
            Interval(-128, 127)
        assert Interval(0, 300).clamp_width(8, False) == Interval(0, 255)


# ---------------------------------------------------------------------------
# Static linter
# ---------------------------------------------------------------------------

class TestLinter:
    def _kinds(self, source):
        report = analyze_source(source)
        return {f.kind for f in report.findings}

    def test_oob_store(self):
        report = analyze_source("""
int main(void) {
    int buf[4];
    buf[4] = 1;
    return 0;
}
""")
        finding = next(f for f in report.findings if f.kind == "oob")
        assert finding.severity == "error"
        assert finding.function == "main"
        assert finding.line == 4

    def test_use_after_free_and_double_free(self):
        kinds = self._kinds("""
int main(void) {
    int *p = (int*)malloc(16);
    free(p);
    int x = *p;
    free(p);
    return x;
}
""")
        assert "uaf" in kinds
        assert "double-free" in kinds

    def test_invalid_free_of_stack_pointer(self):
        assert "invalid-free" in self._kinds("""
int main(void) {
    int x = 5;
    int *p = &x;
    free(p);
    return 0;
}
""")

    def test_uninit_pointer_deref(self):
        assert "uninit-deref" in self._kinds("""
int main(void) {
    int *p;
    return *p;
}
""")

    def test_scope_escape_warning(self):
        report = analyze_source("""
int *leak(void) {
    int local = 3;
    return &local;
}
int main(void) {
    return 0;
}
""")
        finding = next(f for f in report.findings
                       if f.kind == "scope-escape")
        assert finding.severity == "warning"
        assert finding.function == "leak"

    def test_null_deref_of_failing_malloc(self):
        # A request beyond user_top can never succeed in the simulated
        # machine, so the unchecked deref is a definite null deref.
        assert "null-deref" in self._kinds("""
int main(void) {
    long *p = (long*)malloc(900000000);
    *p = 1;
    return 0;
}
""")

    def test_dead_code_reported_as_info(self):
        report = analyze_source("""
int main(void) {
    return 1;
    return 2;
}
""")
        finding = next(f for f in report.findings
                       if f.kind == "dead-code")
        assert finding.severity == "info"

    def test_clean_programs_stay_quiet(self):
        report = analyze_source("""
int sum(int *data, int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i = i + 1) {
        acc = acc + data[i];
    }
    return acc;
}
int main(void) {
    int buf[8];
    int i;
    for (i = 0; i < 8; i = i + 1) {
        buf[i] = i;
    }
    int *heap = (int*)malloc(8 * sizeof(int));
    if (heap == 0) {
        return 1;
    }
    heap[7] = buf[7];
    int total = sum(heap, 8) + sum(buf, 8);
    free(heap);
    return total;
}
""")
        assert report.findings == [], report.text()
        assert report.ok

    def test_json_schema(self):
        report = analyze_source("""
int main(void) {
    int buf[2];
    return buf[3];
}
""", name="prog.c")
        data = json.loads(report.to_json())
        assert data["schema"] == "repro.analyze/v1"
        assert data["name"] == "prog.c"
        assert data["ok"] is False
        assert data["counts"].get("oob") == 1
        first = data["findings"][0]
        assert {"kind", "severity", "function", "block", "line",
                "message"} <= set(first)


# ---------------------------------------------------------------------------
# Juliet cross-validation: static findings vs the dynamic oracle
# ---------------------------------------------------------------------------

JULIET_SAMPLE = generate_corpus(fraction=1.0, max_per_subtype=1,
                                cwes=[121, 122, 415, 416, 476])


class TestJulietCrossValidation:
    def test_linter_flags_a_meaningful_subset(self):
        flagged = sum(
            1 for case in JULIET_SAMPLE
            if analyze_source(case.bad_source, case.case_id).errors())
        assert flagged >= len(JULIET_SAMPLE) // 3, \
            f"only {flagged}/{len(JULIET_SAMPLE)} bad variants flagged"

    def test_no_false_positives_on_good_variants(self):
        for case in JULIET_SAMPLE:
            report = analyze_source(case.good_source, case.case_id)
            assert not report.errors(), \
                (case.case_id, report.text())

    def test_static_errors_imply_dynamic_traps(self):
        """Every statically-reported bad variant must also trap under
        the SBCETS oracle — the linter must not invent violations.
        ``intra-oob`` is exempt by design: the access escapes a struct
        *field* but stays inside the allocation, which object-
        granularity metadata cannot trap (that blind spot is why the
        finding exists)."""
        for case in JULIET_SAMPLE:
            report = analyze_source(case.bad_source, case.case_id)
            if not [e for e in report.errors()
                    if e.kind != "intra-oob"]:
                continue
            result = run_program(case.bad_source, "sbcets",
                                 timing=False,
                                 max_instructions=3_000_000)
            assert detected("sbcets", result), \
                (case.case_id, report.text(), result.status)


# ---------------------------------------------------------------------------
# Redundant-check elision
# ---------------------------------------------------------------------------

CLEAN_LOOP = """
int main(void) {
    int buf[16];
    int i;
    int sum = 0;
    for (i = 0; i < 16; i = i + 1) {
        buf[i] = i;
    }
    for (i = 0; i < 16; i = i + 1) {
        sum = sum + buf[i];
    }
    return sum;
}
"""


class TestElision:
    def _elide(self, source, pass_name):
        from repro.analyze.memsafety import (analyze_function,
                                             compute_may_free)

        config = HwstConfig(elide_checks=True)
        module = lower(source)
        may_free = compute_may_free(module)
        for fn in module.functions.values():
            analyze_function(module, fn, config, may_free, stamp=True)
        instrument_module(module, pass_name, config=config)
        return module, elide_module(module, config)

    def test_proven_checks_removed(self):
        module, stats = self._elide(CLEAN_LOOP, "hwst128_tchk")
        assert stats.checks_total == 2
        assert stats.checks_elided == 2
        assert stats.spatial_elided == 2
        assert stats.temporal_elided == 2
        assert stats.ops_removed > 0
        assert stats.by_function["main"] == stats.ops_removed
        # The accesses were downgraded to unchecked loads/stores.
        from repro.ir.ir import Load, Store
        for fn in module.functions.values():
            for blk in fn.blocks:
                for ins in blk.instrs:
                    if isinstance(ins, (Load, Store)) and \
                            ins.needs_check:
                        assert not ins.checked

    def test_unproven_checks_kept(self):
        module, stats = self._elide("""
int main(void) {
    int buf[4];
    int idx = rand_next();
    buf[idx] = 1;
    return 0;
}
""", "hwst128_tchk")
        assert stats.checks_total == 1
        assert stats.spatial_elided == 0

    def test_non_elidable_pass_is_untouched(self):
        module, stats = self._elide(CLEAN_LOOP, "wdl_narrow")
        assert stats.checks_total == 0
        assert stats.ops_removed == 0

    def test_elision_preserves_output_and_saves_instructions(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.schemes import run_source

        config = HwstConfig(elide_checks=True)
        wins = 0
        for scheme in ("hwst128_tchk", "sbcets"):
            base = run_source(CLEAN_LOOP, scheme)
            registry = MetricsRegistry()
            elided = run_source(CLEAN_LOOP, scheme, config=config,
                                metrics=registry)
            assert elided.status == base.status
            assert elided.exit_code == base.exit_code
            assert elided.output == base.output
            assert elided.instret <= base.instret
            snapshot = registry.snapshot()
            if snapshot["compile.analyze.checks_elided"] > 0:
                assert elided.instret < base.instret
                wins += 1
        assert wins > 0

    def test_elision_preserves_workload_results(self):
        config = HwstConfig(elide_checks=True)
        for name in ("sha", "stringsearch"):
            base = run_workload(name, "hwst128_tchk", scale="small",
                                timing=False)
            elided = run_workload(name, "hwst128_tchk", scale="small",
                                  timing=False, config=config)
            assert elided.output == base.output, name
            assert elided.exit_code == base.exit_code, name
            assert elided.instret < base.instret, name

    def test_elision_preserves_juliet_detection(self):
        config = HwstConfig(elide_checks=True)
        for case in JULIET_SAMPLE:
            for scheme in ("hwst128_tchk", "sbcets"):
                base = run_program(case.bad_source, scheme,
                                   timing=False,
                                   max_instructions=3_000_000)
                elided = run_program(case.bad_source, scheme,
                                     config=config, timing=False,
                                     max_instructions=3_000_000)
                assert detected(scheme, base) == \
                    detected(scheme, elided), (case.case_id, scheme)
                good = run_program(case.good_source, scheme,
                                   config=config, timing=False,
                                   max_instructions=3_000_000)
                assert good.ok, (case.case_id, scheme, good.status)

    def test_compile_pipeline_emits_analyze_counters(self):
        from repro.obs import MetricsRegistry, PhaseTimers
        from repro.schemes import compile_source

        registry = MetricsRegistry()
        phases = PhaseTimers(metrics=registry)
        compile_source(CLEAN_LOOP, "hwst128_tchk",
                       HwstConfig(elide_checks=True), phases=phases)
        snapshot = registry.snapshot()
        assert snapshot["compile.analyze.checks_total"] == 2
        assert snapshot["compile.analyze.checks_elided"] == 2
        assert snapshot["compile.analyze.ops_removed"] > 0
        assert "analyze" in phases.seconds

    def test_non_elidable_scheme_skips_analysis(self):
        from repro.obs import MetricsRegistry, PhaseTimers
        from repro.schemes import compile_source

        registry = MetricsRegistry()
        phases = PhaseTimers(metrics=registry)
        compile_source(CLEAN_LOOP, "asan",
                       HwstConfig(elide_checks=True), phases=phases)
        snapshot = registry.snapshot()
        assert "compile.analyze.checks_total" not in snapshot
        assert "analyze" not in phases.seconds


# ---------------------------------------------------------------------------
# Interprocedural analysis: summaries, contexts, SARIF
# ---------------------------------------------------------------------------

class TestInterproc:
    def _kinds(self, source):
        report = analyze_source(source)
        return {f.kind for f in report.findings}

    def test_oob_through_helper(self):
        """The callee's bounds effect (a deref at a constant offset)
        surfaces at the call site passing a too-small object."""
        assert "oob" in self._kinds("""
int peek(int *p) {
    return p[6];
}
int main(void) {
    int buf[4];
    return peek(buf);
}
""")

    def test_uaf_through_helper(self):
        assert "uaf" in self._kinds("""
int get(int *p) {
    return *p;
}
int main(void) {
    int *p = (int*)malloc(16);
    free(p);
    return get(p);
}
""")

    def test_callee_frees_argument(self):
        """A helper that frees its argument makes the caller's second
        free a double free."""
        assert "double-free" in self._kinds("""
void release(int *p) {
    free(p);
}
int main(void) {
    int *p = (int*)malloc(16);
    release(p);
    free(p);
    return 0;
}
""")

    def test_null_argument_to_derefing_helper(self):
        assert "null-deref" in self._kinds("""
int get(int *p) {
    return *p;
}
int main(void) {
    int *p = 0;
    return get(p);
}
""")

    def test_helpers_stay_quiet_on_clean_calls(self):
        report = analyze_source("""
int get(int *p) {
    return *p;
}
void put(int *p, int v) {
    *p = v;
}
int main(void) {
    int *p = (int*)malloc(16);
    if (p == 0) {
        return 1;
    }
    put(p, 7);
    int v = get(p);
    free(p);
    return v;
}
""")
        assert report.ok, report.text()

    def test_interproc_counters_in_report(self):
        report = analyze_source("""
int get(int *p) {
    return *p;
}
int main(void) {
    int x = 3;
    return get(&x);
}
""")
        assert report.interproc["functions"] == 2
        assert report.interproc["sccs"] == 2
        assert report.interproc["callsites_refined"] >= 1
        assert report.interproc["contexts_applied"] >= 1

    def test_recursion_stays_sound(self):
        """Cyclic call graphs fall back to conservative summaries
        without findings exploding or the fixpoint diverging."""
        report = analyze_source("""
int down(int *p, int n) {
    if (n <= 0) {
        return *p;
    }
    return down(p, n - 1);
}
int main(void) {
    int x = 1;
    return down(&x, 4);
}
""")
        assert report.ok, report.text()


class TestSarif:
    def test_sarif_export(self):
        report = analyze_source("""
int main(void) {
    int buf[2];
    int *p = (int*)malloc(8);
    free(p);
    return buf[3] + *p;
}
""", name="prog.c")
        doc = report.to_sarif()
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "REPRO-MS-OOB" in rules
        assert "REPRO-MS-UAF" in rules
        for res in run["results"]:
            assert res["ruleId"] in rules
            assert run["tool"]["driver"]["rules"][
                res["ruleIndex"]]["id"] == res["ruleId"]
            loc = res["locations"][0]
            assert loc["physicalLocation"]["artifactLocation"][
                "uri"] == "prog.c"
        levels = {res["level"] for res in run["results"]}
        assert "error" in levels

    def test_rule_ids_are_stable(self):
        from repro.analyze.linter import RULE_IDS
        assert RULE_IDS["oob"] == "REPRO-MS-OOB"
        assert RULE_IDS["intra-oob"] == "REPRO-MS-INTRA-OOB"
        assert RULE_IDS["uaf"] == "REPRO-MS-UAF"


# ---------------------------------------------------------------------------
# Juliet recall ratchet (tests/data/juliet_ratchet.json)
# ---------------------------------------------------------------------------

class TestJulietRatchet:
    def test_sample_recall_meets_ratchet(self):
        import os
        from collections import defaultdict

        path = os.path.join(os.path.dirname(__file__), "data",
                            "juliet_ratchet.json")
        with open(path, encoding="utf-8") as fh:
            ratchet = json.load(fh)
        sample = ratchet["sample"]
        corpus = generate_corpus(fraction=sample["fraction"])
        flagged = defaultdict(int)
        false_positives = []
        for case in corpus:
            bad = analyze_source(case.bad_source, case.case_id)
            if bad.errors():
                flagged[case.cwe] += 1
            good = analyze_source(case.good_source, case.case_id)
            if good.errors():
                false_positives.append(case.case_id)
        assert len(false_positives) <= \
            ratchet["good_false_positives_max"], false_positives
        total = sum(flagged.values())
        assert total >= sample["total_flagged_min"], \
            f"{total} flagged < ratchet {sample['total_flagged_min']}"
        for cwe, floor in sample["per_cwe_flagged_min"].items():
            assert flagged[int(cwe)] >= floor, \
                f"CWE{cwe}: {flagged[int(cwe)]} < ratchet {floor}"


# ---------------------------------------------------------------------------
# Loop-invariant temporal-check hoisting
# ---------------------------------------------------------------------------

HOIST_LOOP = """
int *g;
void setup(void) {
    g = (int *)malloc(40);
    int i = 0;
    while (i < 10) { g[i] = i; i = i + 1; }
}
int main(void) {
    setup();
    int s = 0;
    int i = 0;
    while (i < 10) {
        s = s + g[i];
        i = i + 1;
    }
    print_int(s);
    return 0;
}
"""


class TestHoist:
    def _compile_counters(self, source, scheme):
        from repro.obs import MetricsRegistry, PhaseTimers
        from repro.schemes import compile_source

        registry = MetricsRegistry()
        phases = PhaseTimers(metrics=registry)
        compile_source(source, scheme, HwstConfig(elide_checks=True),
                       phases=phases)
        return registry.snapshot()

    def test_hoist_fires_on_loop_invariant_global_pointer(self):
        snap = self._compile_counters(HOIST_LOOP, "hwst128_tchk")
        assert snap["compile.analyze.summary.checks_hoisted"] >= 1
        assert snap["compile.analyze.temporal_elided"] >= 1

    def test_hoist_preserves_output_and_saves_instructions(self):
        from repro.schemes import run_source

        config = HwstConfig(elide_checks=True)
        for scheme in ("hwst128_tchk", "hwst128", "sbcets"):
            base = run_source(HOIST_LOOP, scheme)
            elided = run_source(HOIST_LOOP, scheme, config=config)
            assert elided.status == base.status, scheme
            assert elided.output == base.output, scheme
            assert elided.instret < base.instret, scheme

    def test_hoist_preserves_temporal_trap_on_dangling_loop(self):
        from repro.schemes import run_source

        dangling = HOIST_LOOP.replace("setup();",
                                      "setup();\n    free(g);")
        config = HwstConfig(elide_checks=True)
        for scheme in ("hwst128_tchk", "sbcets"):
            base = run_source(dangling, scheme)
            elided = run_source(dangling, scheme, config=config)
            assert base.status == "temporal_violation", scheme
            assert elided.status == "temporal_violation", scheme

    def test_no_hoist_for_conditional_access(self):
        """An access that only executes on some iterations must keep
        its own check: hoisting it could trap where the original
        program never checks."""
        source = """
int *g;
int flag;
int main(void) {
    g = (int *)malloc(40);
    int s = 0;
    int i = 0;
    while (i < 10) {
        if (flag > 0) {
            s = s + g[i];
        }
        i = i + 1;
    }
    return s;
}
"""
        snap = self._compile_counters(source, "hwst128_tchk")
        assert snap["compile.analyze.summary.checks_hoisted"] == 0

    def test_no_hoist_when_loop_calls_impure_helper(self):
        source = """
int *g;
void rotate(void) {
    free(g);
    g = (int *)malloc(40);
}
int main(void) {
    g = (int *)malloc(40);
    int s = 0;
    int i = 0;
    while (i < 10) {
        s = s + g[0];
        rotate();
        i = i + 1;
    }
    return s;
}
"""
        snap = self._compile_counters(source, "hwst128_tchk")
        assert snap["compile.analyze.summary.checks_hoisted"] == 0
