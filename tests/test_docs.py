"""Documentation consistency checks."""

import pathlib
import re

from repro.isa.instructions import SPEC_TABLE
from repro.schemes import SCHEMES
from repro.workloads import WORKLOADS

ROOT = pathlib.Path(__file__).parent.parent


def read(name):
    return (ROOT / name).read_text()


class TestIsaReference:
    def test_every_mnemonic_documented(self):
        doc = read("docs/isa.md")
        for mnemonic in SPEC_TABLE:
            assert mnemonic in doc, f"{mnemonic} missing from docs/isa.md"

    def test_no_phantom_hwst_mnemonics(self):
        """Every backtick-quoted hwst-looking mnemonic in the doc
        exists in the spec table."""
        doc = read("docs/isa.md")
        for match in re.findall(r"`(\w+\.chk|bndr[st]|tchk|sbd[lu]|"
                                r"lbd[lu]s|lbas|lbnd|lkey|lloc|bndc[lu]|"
                                r"bndldx|bndstx|vld256|vst256|vchk)[ ,`]",
                                doc):
            assert match in SPEC_TABLE, match

    def test_csr_addresses_match(self):
        from repro.isa import csr

        doc = read("docs/isa.md")
        for addr, name in ((csr.HWST_SM_OFFSET, "hwst.sm.offset"),
                           (csr.HWST_META_WIDTHS, "hwst.meta.widths"),
                           (csr.HWST_LOCK_BASE, "hwst.lock.base"),
                           (csr.HWST_LOCK_LIMIT, "hwst.lock.limit")):
            assert f"{addr:#x}" in doc.lower()
            assert name in doc


class TestDesignDoc:
    def test_design_lists_every_bench(self):
        design = read("DESIGN.md")
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in design, \
                f"{bench.name} not in the DESIGN.md experiment index"

    def test_design_mentions_all_schemes(self):
        design = read("DESIGN.md")
        for name in ("sbcets", "hwst128", "bogo", "wdl", "asan", "gcc"):
            assert name in design


class TestReadme:
    def test_readme_examples_exist(self):
        readme = read("README.md")
        for line in readme.splitlines():
            match = re.match(r"python (examples/\w+\.py)", line.strip())
            if match:
                assert (ROOT / match.group(1)).exists(), match.group(1)

    def test_readme_mentions_experiments_cli(self):
        assert "repro.harness.experiments" in read("README.md")


class TestExperimentsDoc:
    def test_every_figure_covered(self):
        experiments = read("EXPERIMENTS.md")
        for artefact in ("FIG2", "FIG4", "FIG5", "FIG6", "TAB-HW",
                         "ABL-KB", "ABL-COMP", "ABL-LMSM"):
            assert artefact in experiments, artefact

    def test_paper_headline_numbers_present(self):
        experiments = read("EXPERIMENTS.md")
        for headline in ("441.45", "152.91", "94.89", "3.74",
                         "11.20", "58.08", "64.49", "63.63",
                         "1536", "112", "6.45"):
            assert headline in experiments, headline


class TestDocstrings:
    def test_public_modules_have_docstrings(self):
        import importlib

        for module_name in (
            "repro", "repro.bits", "repro.errors",
            "repro.isa", "repro.isa.instructions", "repro.isa.encoding",
            "repro.isa.asm", "repro.isa.csr", "repro.isa.registers",
            "repro.core", "repro.core.compression", "repro.core.shadow",
            "repro.core.locks", "repro.core.config", "repro.core.metadata",
            "repro.sim", "repro.sim.machine", "repro.sim.memory",
            "repro.sim.keybuffer", "repro.sim.program",
            "repro.pipeline", "repro.pipeline.timing",
            "repro.pipeline.cache", "repro.pipeline.hwcost",
            "repro.minic", "repro.minic.lexer", "repro.minic.parser",
            "repro.minic.sema", "repro.minic.types", "repro.minic.pretty",
            "repro.fuzz", "repro.fuzz.gen", "repro.fuzz.oracle",
            "repro.fuzz.coverage", "repro.fuzz.reduce",
            "repro.fuzz.campaign",
            "repro.ir", "repro.ir.ir", "repro.ir.irgen",
            "repro.ir.instrument", "repro.ir.verify",
            "repro.codegen", "repro.codegen.lower", "repro.codegen.link",
            "repro.codegen.runtime",
            "repro.schemes", "repro.schemes.compile",
            "repro.workloads", "repro.workloads.juliet",
            "repro.harness", "repro.harness.runner",
            "repro.harness.coverage", "repro.harness.experiments",
            "repro.cli",
        ):
            module = importlib.import_module(module_name)
            assert module.__doc__, f"{module_name} lacks a docstring"

    def test_schemes_and_workloads_described(self):
        for spec in SCHEMES.values():
            assert spec.description
        for workload in WORKLOADS.values():
            assert workload.description
