"""Tests for HwstConfig and the Eq. 3-6 field width derivation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.config import (
    FieldWidths, HwstConfig, derive_field_widths, SRF_BITS,
)


class TestFieldWidths:
    def test_paper_layout(self):
        """Fig. 2: 35-bit base, 29-bit range, 20-bit lock, 44-bit key."""
        widths = FieldWidths()
        assert (widths.base, widths.range, widths.lock, widths.key) == \
            (35, 29, 20, 44)
        assert widths.total == SRF_BITS

    def test_halves_must_pack(self):
        with pytest.raises(ValueError):
            FieldWidths(base=35, range=30, lock=20, key=44)
        with pytest.raises(ValueError):
            FieldWidths(base=35, range=29, lock=21, key=44)

    def test_positive_widths(self):
        with pytest.raises(ValueError):
            FieldWidths(base=0, range=64, lock=20, key=44)

    def test_max_values(self):
        widths = FieldWidths()
        assert widths.max_base() == ((1 << 35) - 1) << 3
        assert widths.max_range() == ((1 << 29) - 1) << 3
        assert widths.max_locks() == 1 << 20


class TestDerivation:
    def test_paper_parameters(self):
        """256 GiB memory + 1 M locks reproduce the paper's 35/29/20/44."""
        widths = derive_field_widths(256 << 30, 1 << 28, 1_000_000)
        assert (widths.base, widths.range, widths.lock, widths.key) == \
            (35, 29, 20, 44)

    def test_spec_minimum_range(self):
        """Paper: at least 25 range bits are needed for SPEC2006."""
        widths = derive_field_widths(256 << 30, 1 << 28, 1_000_000)
        assert widths.range >= 25

    def test_small_platform(self):
        widths = derive_field_widths(1 << 24, 1 << 16, 1 << 10)
        assert widths.base == 21
        assert widths.range == 43
        assert widths.lock == 10
        assert widths.key == 54

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            derive_field_widths(0, 1, 1)
        with pytest.raises(ValueError):
            derive_field_widths(1 << 30, -5, 1)

    def test_rejects_oversized_spatial(self):
        with pytest.raises(ValueError):
            derive_field_widths(1 << 62, 1 << 40, 16)

    @given(st.integers(min_value=20, max_value=45),
           st.integers(min_value=4, max_value=24),
           st.integers(min_value=1, max_value=24))
    def test_derivation_always_packs(self, mem_bits, obj_bits, lock_bits):
        widths = derive_field_widths(1 << mem_bits, 1 << obj_bits,
                                     1 << lock_bits)
        assert widths.total == SRF_BITS
        assert widths.base + widths.range == 64
        assert widths.lock + widths.key == 64
        # Derived widths must actually cover the inputs.
        assert widths.max_base() + 8 > (1 << mem_bits) - 8
        assert widths.max_range() >= (1 << obj_bits) - 8
        assert widths.max_locks() >= 1 << lock_bits


class TestHwstConfig:
    def test_defaults_consistent(self):
        config = HwstConfig()
        assert config.lock_limit == config.lock_base + 8 * config.lock_entries
        assert config.shadow_top == config.shadow_offset + (config.user_top << 2)

    def test_shadow_overlap_rejected(self):
        with pytest.raises(ValueError):
            HwstConfig(user_top=0x2000_0000, shadow_offset=0x1000_0000)

    def test_too_many_locks_rejected(self):
        with pytest.raises(ValueError):
            HwstConfig(lock_entries=1 << 21)  # exceeds 20 lock bits

    def test_csr_width_packing_roundtrip(self):
        from repro.isa import csr

        packed = csr.pack_meta_widths(35, 29, 20, 44)
        assert csr.unpack_meta_widths(packed) == (35, 29, 20, 44)

    def test_csr_width_overflow(self):
        from repro.isa import csr

        with pytest.raises(ValueError):
            csr.pack_meta_widths(64, 29, 20, 44)
