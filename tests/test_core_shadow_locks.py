"""Tests for the linear-mapped shadow memory (Eq. 1) and lock allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.core.compression import CompressedMetadata, MetadataCompressor
from repro.core.config import HwstConfig
from repro.core.locks import LockAllocator, LockTableFull
from repro.core.shadow import ShadowMap
from repro.errors import MemoryFault, ReproError
from repro.sim.memory import Memory

CONFIG = HwstConfig()


def make_memory() -> Memory:
    memory = Memory()
    memory.map_region(0, CONFIG.user_top, "user")
    memory.map_region(CONFIG.shadow_offset,
                      CONFIG.shadow_top - CONFIG.shadow_offset, "shadow")
    return memory


class TestShadowMap:
    def setup_method(self):
        self.shadow = ShadowMap.from_config(CONFIG)

    def test_eq1_mapping(self):
        """Addr_LMSM = (Addr_container << 2) + CSR_offset."""
        assert self.shadow.shadow_addr(0x40_0000) == \
            (0x40_0000 << 2) + CONFIG.shadow_offset

    def test_halves_are_adjacent(self):
        container = 0x40_0008
        assert self.shadow.upper_addr(container) == \
            self.shadow.lower_addr(container) + 8

    def test_distinct_containers_never_collide(self):
        a = self.shadow.shadow_addr(0x40_0000)
        b = self.shadow.shadow_addr(0x40_0008)
        assert b - a == 32  # 8-byte container -> 32-byte shadow span

    def test_out_of_user_space_rejected(self):
        with pytest.raises(MemoryFault):
            self.shadow.shadow_addr(CONFIG.user_top)

    def test_is_shadow_addr(self):
        assert self.shadow.is_shadow_addr(CONFIG.shadow_offset)
        assert not self.shadow.is_shadow_addr(CONFIG.shadow_offset - 1)
        assert not self.shadow.is_shadow_addr(0x40_0000)

    def test_container_of_inverse(self):
        container = 0x0042_1238
        assert self.shadow.container_of(
            self.shadow.shadow_addr(container)) == container

    def test_container_of_rejects_user_addr(self):
        with pytest.raises(MemoryFault):
            self.shadow.container_of(0x40_0000)

    @given(st.integers(min_value=0, max_value=CONFIG.user_top // 8 - 1))
    def test_mapping_is_injective(self, index):
        container = index * 8
        addr = self.shadow.shadow_addr(container)
        assert self.shadow.is_shadow_addr(addr)
        assert self.shadow.container_of(addr) == container

    def test_store_load_roundtrip(self):
        memory = make_memory()
        packed = CompressedMetadata(lower=0xDEAD_BEEF, upper=0xCAFE_F00D)
        self.shadow.store(memory, 0x40_0010, packed)
        assert self.shadow.load(memory, 0x40_0010) == packed

    def test_clear(self):
        memory = make_memory()
        packed = CompressedMetadata(lower=1, upper=2)
        self.shadow.store(memory, 0x40_0010, packed)
        self.shadow.clear(memory, 0x40_0010)
        cleared = self.shadow.load(memory, 0x40_0010)
        assert cleared.lower == 0 and cleared.upper == 0

    def test_untouched_slot_reads_zero(self):
        memory = make_memory()
        packed = self.shadow.load(memory, 0x40_0020)
        assert packed.lower == 0 and packed.upper == 0


class TestLockAllocator:
    def test_keys_are_unique_and_monotonic(self):
        allocator = LockAllocator(CONFIG)
        seen = set()
        for _ in range(100):
            _, key = allocator.allocate()
            assert key not in seen
            seen.add(key)

    def test_free_erases_key(self):
        memory = make_memory()
        allocator = LockAllocator(CONFIG, memory)
        lock, key = allocator.allocate()
        assert memory.load_u64(lock) == key
        allocator.free(lock)
        assert memory.load_u64(lock) == 0

    def test_check_semantics(self):
        memory = make_memory()
        allocator = LockAllocator(CONFIG, memory)
        lock, key = allocator.allocate()
        assert allocator.check(key, lock)
        allocator.free(lock)
        assert not allocator.check(key, lock)

    def test_recycled_lock_gets_fresh_key(self):
        """A dangling pointer can never be revalidated by reuse."""
        memory = make_memory()
        allocator = LockAllocator(CONFIG, memory)
        lock1, key1 = allocator.allocate()
        allocator.free(lock1)
        lock2, key2 = allocator.allocate()
        assert lock2 == lock1          # recycled lock_location
        assert key2 != key1            # but a different key
        assert not allocator.check(key1, lock1)
        assert allocator.check(key2, lock2)

    def test_double_free_detected(self):
        allocator = LockAllocator(CONFIG)
        lock, _ = allocator.allocate()
        allocator.free(lock)
        with pytest.raises(ReproError):
            allocator.free(lock)

    def test_table_exhaustion(self):
        small = HwstConfig(lock_entries=4)
        allocator = LockAllocator(small)
        for _ in range(4):
            allocator.allocate()
        with pytest.raises(LockTableFull):
            allocator.allocate()

    def test_null_lock_never_checks(self):
        allocator = LockAllocator(CONFIG)
        assert not allocator.check(5, 0)

    def test_stats(self):
        allocator = LockAllocator(CONFIG)
        locks = [allocator.allocate()[0] for _ in range(5)]
        for lock in locks[:2]:
            allocator.free(lock)
        assert allocator.stats_allocs == 5
        assert allocator.stats_frees == 2
        assert allocator.stats_max_live == 5
        assert allocator.live_count == 3

    def test_reset(self):
        allocator = LockAllocator(CONFIG)
        allocator.allocate()
        allocator.reset()
        assert allocator.live_count == 0
        assert allocator.stats_allocs == 0
        _, key = allocator.allocate()
        assert key == 1

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_live_set_invariant(self, operations):
        """Property: keys of live locks are always distinct and non-zero."""
        allocator = LockAllocator(CONFIG)
        live = []
        for do_alloc in operations:
            if do_alloc or not live:
                live.append(allocator.allocate())
            else:
                lock, _ = live.pop()
                allocator.free(lock)
            keys = [key for _, key in live]
            assert len(set(keys)) == len(keys)
            assert all(key != 0 for key in keys)
