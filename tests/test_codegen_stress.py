"""Code-generator stress tests: frames, spills, deep expressions."""

import pytest

from repro.schemes import run_source


def exit_code(source, scheme="baseline"):
    result = run_source(source, scheme, timing=False,
                        max_instructions=30_000_000)
    assert result.status == "exit", (result.status, result.detail)
    return result.exit_code


class TestLargeFrames:
    def test_frame_beyond_immediate_range(self):
        """A 4 KiB stack array pushes slot offsets past the 12-bit
        immediates: the gp-scratch addressing path must kick in."""
        assert exit_code("""
        int main(void){
            long big[512];
            int i;
            long sum = 0;
            for (i = 0; i < 512; i++) { big[i] = i; }
            for (i = 0; i < 512; i++) { sum += big[i]; }
            return sum == 511 * 512 / 2 ? 0 : 1;
        }""") == 0

    def test_two_big_arrays(self):
        assert exit_code("""
        int main(void){
            long a[400];
            long b[400];
            int i;
            for (i = 0; i < 400; i++) { a[i] = i; b[i] = 2 * i; }
            return (a[399] + b[399] == 1197) ? 0 : 1;
        }""") == 0

    def test_big_frame_under_protection(self):
        """Large frames with checked accesses and shadow traffic."""
        assert exit_code("""
        int main(void){
            long big[512];
            big[511] = 7;
            return (int)big[511] - 7;
        }""", scheme="hwst128_tchk") == 0

    def test_many_scalar_locals(self):
        decls = "\n".join(f"    long v{i} = {i};" for i in range(64))
        adds = " + ".join(f"v{i}" for i in range(64))
        assert exit_code(f"""
        int main(void) {{
{decls}
            return ({adds}) == 2016 ? 0 : 1;
        }}""") == 0


class TestExpressionPressure:
    def test_deep_expression_tree_spills(self):
        """More live temporaries than the 7-register pool."""
        expr = " + ".join(f"(a{i} * b{i})" for i in range(10))
        decls = "\n".join(
            f"    long a{i} = {i + 1}; long b{i} = {i + 2};"
            for i in range(10))
        expected = sum((i + 1) * (i + 2) for i in range(10))
        assert exit_code(f"""
        int main(void) {{
{decls}
            long r = {expr};
            return r == {expected} ? 0 : 1;
        }}""") == 0

    def test_deeply_nested_parens(self):
        inner = "1"
        for _ in range(12):
            inner = f"({inner} + 1)"
        assert exit_code(f"int main(void) {{ return {inner} - 13; }}") == 0

    def test_pointer_temp_spill_keeps_metadata(self):
        """A pointer temporary that gets spilled across a call must
        carry its SRF metadata through the spill slot (hw scheme)."""
        assert exit_code("""
        long touch(long a, long b, long c, long d) {
            return a + b + c + d;
        }
        int main(void){
            long *p = (long*)malloc(32);
            long acc;
            p[0] = 5;
            /* the call forces live temps to spill; p is reloaded and
               dereferenced afterwards with full checks */
            acc = touch(1, 2, 3, 4) + p[0];
            free(p);
            return (int)acc - 15;
        }""", scheme="hwst128_tchk") == 0

    def test_call_in_deep_expression(self):
        assert exit_code("""
        int sq(int x) { return x * x; }
        int main(void){
            int r = sq(2) + sq(3) * sq(4) - (sq(5) + sq(1));
            return r == 4 + 9 * 16 - 26 ? 0 : 1;
        }""") == 0

    def test_chained_comparisons_and_logic(self):
        assert exit_code("""
        int main(void){
            int a = 3;
            int b = 7;
            int r = (a < b) && (b < 10) && ((a + b == 10) || (a == 0));
            return r ? 0 : 1;
        }""") == 0


class TestControlFlowStress:
    def test_many_blocks(self):
        body = "\n".join(
            f"    if (x == {i}) {{ total += {i}; }}" for i in range(48))
        assert exit_code(f"""
        int main(void) {{
            int total = 0;
            int x;
            for (x = 0; x < 48; x++) {{
{body}
            }}
            return total == 48 * 47 / 2 ? 0 : 1;
        }}""") == 0

    def test_long_branch_distances(self):
        """Blocks far apart still link correctly (jal-based branches)."""
        filler = "\n".join(
            f"    acc = acc * 3 + {i}; acc = acc % 1000003;"
            for i in range(300))
        assert exit_code(f"""
        int main(void) {{
            long acc = 1;
            int flag = 1;
            if (flag) {{
{filler}
            }}
            return acc > 0 ? 0 : 1;
        }}""") == 0

    def test_recursion_depth(self):
        assert exit_code("""
        int depth(int n) {
            if (n == 0) { return 0; }
            return 1 + depth(n - 1);
        }
        int main(void){ return depth(200) - 200; }""") == 0

    def test_recursion_depth_under_protection(self):
        """Deep frames exercise frame-lock alloc/free pairing."""
        assert exit_code("""
        int depth(int n) {
            char tag[8];
            tag[0] = (char)n;
            if (n == 0) { return (int)tag[0]; }
            return depth(n - 1);
        }
        int main(void){ return depth(64); }""",
                         scheme="hwst128_tchk") == 0
