"""Encode/decode round-trip tests for the ISA, including HWST128 ops."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IllegalInstruction
from repro.isa.encoding import (
    decode, decode_program, encode, encode_program,
)
from repro.isa.instructions import (
    FMT_B, FMT_CSR, FMT_I, FMT_J, FMT_R, FMT_S, FMT_SYS, FMT_U,
    Instr, SPEC_TABLE, li_sequence,
)

REG = st.integers(min_value=0, max_value=31)


def _roundtrip(instr: Instr) -> Instr:
    return decode(encode(instr))


class TestBasicRoundtrips:
    def test_r_type(self):
        ins = _roundtrip(Instr("add", rd=1, rs1=2, rs2=3))
        assert (ins.op, ins.rd, ins.rs1, ins.rs2) == ("add", 1, 2, 3)

    def test_sub_vs_add_funct7(self):
        assert _roundtrip(Instr("sub", rd=4, rs1=5, rs2=6)).op == "sub"

    def test_i_type_negative_imm(self):
        ins = _roundtrip(Instr("addi", rd=7, rs1=8, imm=-2048))
        assert ins.imm == -2048

    def test_load_store(self):
        ld = _roundtrip(Instr("ld", rd=9, rs1=2, imm=-16))
        assert (ld.op, ld.imm) == ("ld", -16)
        sd = _roundtrip(Instr("sd", rs1=2, rs2=10, imm=24))
        assert (sd.op, sd.rs1, sd.rs2, sd.imm) == ("sd", 2, 10, 24)

    def test_branch(self):
        br = _roundtrip(Instr("bne", rs1=1, rs2=2, imm=-64))
        assert (br.op, br.imm) == ("bne", -64)

    def test_jal(self):
        j = _roundtrip(Instr("jal", rd=1, imm=2048))
        assert (j.op, j.rd, j.imm) == ("jal", 1, 2048)

    def test_lui(self):
        u = _roundtrip(Instr("lui", rd=3, imm=0xFFFFF))
        assert (u.op, u.imm) == ("lui", 0xFFFFF)

    def test_shift_immediates_rv64(self):
        for op in ("slli", "srli", "srai"):
            ins = _roundtrip(Instr(op, rd=1, rs1=2, imm=63))
            assert (ins.op, ins.imm) == (op, 63)

    def test_shift_immediates_w(self):
        for op in ("slliw", "srliw", "sraiw"):
            ins = _roundtrip(Instr(op, rd=1, rs1=2, imm=31))
            assert (ins.op, ins.imm) == (op, 31)

    def test_system(self):
        assert _roundtrip(Instr("ecall")).op == "ecall"
        assert _roundtrip(Instr("ebreak")).op == "ebreak"
        assert _roundtrip(Instr("fence")).op == "fence"

    def test_csr(self):
        ins = _roundtrip(Instr("csrrw", rd=1, rs1=2, imm=0x800))
        assert (ins.op, ins.imm) == ("csrrw", 0x800)


class TestHwstRoundtrips:
    def test_bind_instructions(self):
        for op in ("bndrs", "bndrt"):
            ins = _roundtrip(Instr(op, rd=10, rs1=11, rs2=12))
            assert (ins.op, ins.rd, ins.rs1, ins.rs2) == (op, 10, 11, 12)

    def test_tchk(self):
        ins = _roundtrip(Instr("tchk", rs1=14))
        assert (ins.op, ins.rs1) == ("tchk", 14)

    def test_shadow_moves(self):
        for op in ("sbdl", "sbdu"):
            ins = _roundtrip(Instr(op, rs1=2, rs2=10, imm=-40))
            assert (ins.op, ins.imm) == (op, -40)
        for op in ("lbdls", "lbdus", "lbas", "lbnd", "lkey", "lloc"):
            ins = _roundtrip(Instr(op, rd=10, rs1=2, imm=16))
            assert (ins.op, ins.imm) == (op, 16)

    def test_checked_accesses(self):
        for op in ("lb.chk", "lh.chk", "lw.chk", "ld.chk",
                   "lbu.chk", "lhu.chk", "lwu.chk"):
            assert _roundtrip(Instr(op, rd=5, rs1=6, imm=8)).op == op
        for op in ("sb.chk", "sh.chk", "sw.chk", "sd.chk"):
            assert _roundtrip(Instr(op, rs1=6, rs2=7, imm=-8)).op == op

    def test_comparator_extensions(self):
        for op in ("bndcl", "bndcu", "vchk"):
            ins = _roundtrip(Instr(op, rs1=3, rs2=4))
            assert (ins.op, ins.rs1, ins.rs2) == (op, 3, 4)
        assert _roundtrip(Instr("bndldx", rd=5, rs1=6, imm=0)).op == "bndldx"
        assert _roundtrip(Instr("bndstx", rs1=6, rs2=7, imm=8)).op == "bndstx"
        assert _roundtrip(Instr("vld256", rd=5, rs1=6, imm=0)).op == "vld256"
        assert _roundtrip(Instr("vst256", rs1=6, rs2=7, imm=0)).op == "vst256"


class TestEncodingValidation:
    def test_imm_out_of_range(self):
        with pytest.raises(ValueError):
            encode(Instr("addi", rd=1, rs1=1, imm=4096))

    def test_branch_must_be_even(self):
        with pytest.raises(ValueError):
            encode(Instr("beq", rs1=1, rs2=2, imm=3))

    def test_bad_register(self):
        with pytest.raises(ValueError):
            encode(Instr("add", rd=32, rs1=0, rs2=0))

    def test_unknown_mnemonic(self):
        with pytest.raises(ValueError):
            encode(Instr("bogus"))

    def test_decode_garbage(self):
        with pytest.raises(IllegalInstruction):
            decode(0xFFFF_FFFF)

    def test_decode_zero_word(self):
        with pytest.raises(IllegalInstruction):
            decode(0)


class TestProgramBlob:
    def test_roundtrip_program(self):
        prog = [
            Instr("addi", rd=10, rs1=0, imm=5),
            Instr("addi", rd=11, rs1=0, imm=7),
            Instr("add", rd=12, rs1=10, rs2=11),
            Instr("ecall"),
        ]
        blob = encode_program(prog)
        assert len(blob) == 16
        back = decode_program(blob)
        assert [i.op for i in back] == ["addi", "addi", "add", "ecall"]

    def test_bad_length(self):
        with pytest.raises(ValueError):
            decode_program(b"\x00\x00\x00")


# Property-based round-trip over every encodable mnemonic -------------------

_R_OPS = sorted(m for m, s in SPEC_TABLE.items() if s.fmt == FMT_R)
_I_OPS = sorted(m for m, s in SPEC_TABLE.items()
                if s.fmt == FMT_I and m not in
                ("slli", "srli", "srai", "slliw", "srliw", "sraiw"))
_S_OPS = sorted(m for m, s in SPEC_TABLE.items() if s.fmt == FMT_S)
_B_OPS = sorted(m for m, s in SPEC_TABLE.items() if s.fmt == FMT_B)


@given(st.sampled_from(_R_OPS), REG, REG, REG)
def test_r_format_roundtrip(op, rd, rs1, rs2):
    ins = _roundtrip(Instr(op, rd=rd, rs1=rs1, rs2=rs2))
    assert (ins.op, ins.rd, ins.rs1, ins.rs2) == (op, rd, rs1, rs2)


@given(st.sampled_from(_I_OPS), REG, REG,
       st.integers(min_value=-2048, max_value=2047))
def test_i_format_roundtrip(op, rd, rs1, imm):
    ins = _roundtrip(Instr(op, rd=rd, rs1=rs1, imm=imm))
    assert (ins.op, ins.rd, ins.rs1, ins.imm) == (op, rd, rs1, imm)


@given(st.sampled_from(_S_OPS), REG, REG,
       st.integers(min_value=-2048, max_value=2047))
def test_s_format_roundtrip(op, rs1, rs2, imm):
    ins = _roundtrip(Instr(op, rs1=rs1, rs2=rs2, imm=imm))
    assert (ins.op, ins.rs1, ins.rs2, ins.imm) == (op, rs1, rs2, imm)


@given(st.sampled_from(_B_OPS), REG, REG,
       st.integers(min_value=-2048, max_value=2047))
def test_b_format_roundtrip(op, rs1, rs2, imm):
    imm *= 2
    ins = _roundtrip(Instr(op, rs1=rs1, rs2=rs2, imm=imm))
    assert (ins.op, ins.rs1, ins.rs2, ins.imm) == (op, rs1, rs2, imm)


# Exhaustive round-trip: EVERY mnemonic in SPEC_TABLE ----------------------

_SHIFT_OPS = frozenset(("slli", "srli", "srai", "slliw", "srliw", "sraiw"))

_FMT_OPERANDS = {
    FMT_R: dict(rd=1, rs1=2, rs2=3),
    FMT_S: dict(rs1=2, rs2=3, imm=-16),
    FMT_B: dict(rs1=1, rs2=2, imm=-64),
    FMT_U: dict(rd=3, imm=0x12345),
    FMT_J: dict(rd=1, imm=2048),
    FMT_SYS: dict(),
    FMT_CSR: dict(rd=1, rs1=2, imm=0x800),
}


def _representative(op, spec) -> Instr:
    if spec.fmt == FMT_I:
        imm = 13 if op in _SHIFT_OPS else -16
        return Instr(op, rd=4, rs1=5, imm=imm)
    return Instr(op, **_FMT_OPERANDS[spec.fmt])


@pytest.mark.parametrize("op", sorted(SPEC_TABLE))
def test_every_mnemonic_roundtrips(op):
    """encode(decode) is the identity for every instruction we define."""
    spec = SPEC_TABLE[op]
    original = _representative(op, spec)
    decoded = _roundtrip(original)
    assert decoded.op == op
    for fld in ("rd", "rs1", "rs2", "imm"):
        assert getattr(decoded, fld) == getattr(original, fld), \
            f"{op}.{fld} mangled by encode/decode"


def test_spec_table_fully_covered():
    """Guard: the per-format operand table knows every format in use."""
    known = set(_FMT_OPERANDS) | {FMT_I}
    assert {s.fmt for s in SPEC_TABLE.values()} <= known


@given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
def test_li_sequence_materialises_constant(value):
    """li_sequence must reconstruct any 64-bit constant when executed."""
    from repro import bits as b

    reg = 0
    for ins in li_sequence(5, value):
        if ins.op == "lui":
            reg = b.to_u64(b.sext(ins.imm << 12, 32))
        elif ins.op == "addiw":
            reg = b.to_u64(b.sext(reg + ins.imm, 32))
        elif ins.op == "addi":
            reg = b.to_u64(reg + ins.imm)
        elif ins.op == "slli":
            reg = b.to_u64(reg << ins.imm)
        else:  # pragma: no cover
            raise AssertionError(f"unexpected op {ins.op}")
    assert b.to_s64(reg) == value
