"""Tests for the TLB-like keybuffer (Section 3.5)."""

from hypothesis import given, strategies as st

import pytest

from repro.sim.keybuffer import KeyBuffer


class TestBasics:
    def test_miss_then_hit(self):
        kb = KeyBuffer(entries=4)
        assert kb.lookup(0x1000) is None
        kb.fill(0x1000, 42)
        assert kb.lookup(0x1000) == 42
        assert kb.hits == 1 and kb.misses == 1

    def test_lru_eviction(self):
        kb = KeyBuffer(entries=2)
        kb.fill(1, 11)
        kb.fill(2, 22)
        kb.lookup(1)           # 1 becomes MRU
        kb.fill(3, 33)         # evicts 2
        assert kb.lookup(2) is None
        assert kb.lookup(1) == 11
        assert kb.lookup(3) == 33

    def test_clear_on_free(self):
        """Paper: the keybuffer is cleared whenever a pointer is freed."""
        kb = KeyBuffer(entries=4)
        kb.fill(1, 11)
        kb.fill(2, 22)
        kb.clear()
        assert kb.lookup(1) is None
        assert kb.lookup(2) is None
        assert kb.clears == 1

    def test_invalidate_single(self):
        kb = KeyBuffer(entries=4)
        kb.fill(1, 11)
        kb.fill(2, 22)
        kb.invalidate(1)
        assert kb.lookup(1) is None
        assert kb.lookup(2) == 22

    def test_fill_updates_existing(self):
        kb = KeyBuffer(entries=4)
        kb.fill(1, 11)
        kb.fill(1, 99)
        assert kb.lookup(1) == 99
        assert len(kb) == 1

    def test_zero_entries_always_misses(self):
        """A size-0 keybuffer degenerates to the no-tchk behaviour."""
        kb = KeyBuffer(entries=0)
        kb.fill(1, 11)
        assert kb.lookup(1) is None
        assert kb.misses == 1

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            KeyBuffer(entries=-1)

    def test_hit_rate(self):
        kb = KeyBuffer(entries=2)
        assert kb.hit_rate == 0.0
        kb.fill(1, 1)
        kb.lookup(1)
        kb.lookup(2)
        assert kb.hit_rate == pytest.approx(0.5)

    def test_reset_stats(self):
        kb = KeyBuffer(entries=2)
        kb.fill(1, 1)
        kb.lookup(1)
        kb.reset_stats()
        assert kb.hits == 0 and kb.misses == 0 and kb.clears == 0
        assert kb.lookup(1) == 1  # contents survive a stats reset


class TestReplacementPolicies:
    def test_fifo_evicts_insertion_order(self):
        kb = KeyBuffer(entries=2, policy="fifo")
        kb.fill(1, 11)
        kb.fill(2, 22)
        kb.lookup(1)          # would refresh under LRU, not under FIFO
        kb.fill(3, 33)        # evicts 1 (oldest insertion)
        assert kb.lookup(1) is None
        assert kb.lookup(2) == 22

    def test_lru_vs_fifo_differ(self):
        lru = KeyBuffer(entries=2, policy="lru")
        fifo = KeyBuffer(entries=2, policy="fifo")
        for kb in (lru, fifo):
            kb.fill(1, 11)
            kb.fill(2, 22)
            kb.lookup(1)
            kb.fill(3, 33)
        assert lru.lookup(1) == 11      # survived: it was MRU
        assert fifo.lookup(1) is None   # evicted: oldest insertion

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            KeyBuffer(entries=2, policy="random")

    def test_fifo_update_keeps_age(self):
        kb = KeyBuffer(entries=2, policy="fifo")
        kb.fill(1, 11)
        kb.fill(2, 22)
        kb.fill(1, 99)        # update, not a re-insertion
        kb.fill(3, 33)        # evicts 1 still
        assert kb.lookup(1) is None
        assert kb.lookup(2) == 22


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=9),
                          st.integers(min_value=1, max_value=100)),
                max_size=200),
       st.integers(min_value=1, max_value=8))
def test_capacity_invariant(fills, entries):
    """Property: the buffer never exceeds its capacity and a lookup
    after fill returns the most recently filled value."""
    kb = KeyBuffer(entries=entries)
    last = {}
    for lock, key in fills:
        kb.fill(lock, key)
        last[lock] = key
        assert len(kb) <= entries
    for lock, key in last.items():
        found = kb.lookup(lock)
        assert found is None or found == key
