"""Tests for the sweep executor, compile cache and failure envelopes."""

import os
from dataclasses import dataclass
from typing import Optional

import pytest

from repro.core.config import HwstConfig
from repro.harness.compile_cache import (
    CACHE_FORMAT, CompileCache, config_fingerprint, process_cache,
)
from repro.harness.experiments import fig4_overhead, fig5_speedup, main
from repro.harness.parallel import (
    CellResult, CellSpec, STATUS_WORKER_DIED, SweepExecutor, run_cells,
)
from repro.obs.metrics import MetricsRegistry
from repro.workloads import WORKLOADS
from repro.workloads.base import Workload, register

GOOD = """
int main() {
  int *p = malloc(32);
  p[0] = 7;
  int v = p[0];
  free(p);
  return v - 7;
}
"""

BROKEN = "int main( {"  # parse error -> infrastructure failure


def _inject_workload(name, source):
    """Register a throwaway workload; caller must pop it."""
    return register(Workload(name=name, group="test",
                             source_template=source))


class TestCellSpec:
    def test_needs_exactly_one_source(self):
        with pytest.raises(ValueError):
            CellSpec(scheme="baseline")
        with pytest.raises(ValueError):
            CellSpec(scheme="baseline", workload="treeadd", source=GOOD)

    def test_group_key_defaults_to_workload(self):
        assert CellSpec(scheme="baseline",
                        workload="treeadd").group_key == "treeadd"
        assert CellSpec(scheme="baseline", source=GOOD,
                        tag="t", group="g").group_key == "g"


class TestFailureEnvelopes:
    def test_crashing_cell_completes_sweep(self):
        """A cell that cannot compile yields an error envelope, and the
        other cells in the sweep still run."""
        cells = [
            CellSpec(scheme="baseline", source=BROKEN, timing=False,
                     tag="broken"),
            CellSpec(scheme="baseline", source=GOOD, timing=False,
                     tag="good"),
        ]
        results = run_cells(cells, jobs=1)
        assert [r.tag for r in results] == ["broken", "good"]
        broken, good = results
        assert not broken.ok
        assert broken.status == "error"
        assert not broken.measured
        assert "Traceback" in broken.error
        assert good.ok and good.measured and good.error == ""

    def test_failure_line_rendering(self):
        cell = CellResult(tag="t", workload="w", scheme="s", ok=False,
                          status="error",
                          error="Traceback ...\nBoom: bad parse")
        assert cell.failure_line() == "w/s: Boom: bad parse"
        trap = CellResult(tag="t", workload="w", scheme="s", ok=False,
                          status="spatial_violation", detail="oob")
        assert trap.measured
        assert "spatial_violation" in trap.failure_line()

    def test_executor_counts_infrastructure_failures_only(self):
        with SweepExecutor(jobs=1) as executor:
            executor.run([
                CellSpec(scheme="baseline", source=BROKEN, timing=False,
                         tag="broken"),
                # hwst128_tchk trap on a use-after-free is a
                # *measurement*, not a failed cell.
                CellSpec(scheme="hwst128_tchk", timing=False, tag="uaf",
                         source="""
                         int main() {
                           int *p = malloc(16);
                           free(p);
                           return p[0];
                         }
                         """),
            ])
            assert executor.cells_run == 2
            assert executor.cells_failed == 1
            assert "failed=1" in executor.summary()

    def test_injected_failing_workload_lands_in_failures(self):
        _inject_workload("crashme", BROKEN)
        try:
            data = fig4_overhead(scale="small",
                                 workloads=["treeadd", "crashme"])
        finally:
            WORKLOADS.pop("crashme")
        assert [row["workload"] for row in data["rows"]] == ["treeadd"]
        assert any("crashme" in line for line in data["failures"])
        assert data["geomean"]["hwst128_tchk"] > 0


class TestDeterminism:
    def test_fig4_jobs4_matches_serial(self):
        serial = fig4_overhead(scale="small",
                               workloads=["treeadd", "sha"])
        with SweepExecutor(jobs=4) as executor:
            parallel = fig4_overhead(scale="small",
                                     workloads=["treeadd", "sha"],
                                     executor=executor)
        assert parallel == serial

    def test_fig5_jobs2_matches_serial(self):
        serial = fig5_speedup(scale="small", workloads=["hmmer"])
        with SweepExecutor(jobs=2) as executor:
            parallel = fig5_speedup(scale="small", workloads=["hmmer"],
                                    executor=executor)
        assert parallel == serial

    def test_all_green_dict_has_no_failures_key(self):
        data = fig4_overhead(scale="small", workloads=["treeadd"])
        assert "failures" not in data


class TestCompileCache:
    def test_program_hit_on_identical_request(self):
        cache = CompileCache()
        config = HwstConfig()
        first = cache.compile(GOOD, "hwst128_tchk", config)
        second = cache.compile(GOOD, "hwst128_tchk", config)
        assert cache.program_hits == 1
        # Hits hand back a *fresh* object graph, never a shared one.
        assert first is not second

    def test_config_change_invalidates_program_tier(self):
        cache = CompileCache()
        cache.compile(GOOD, "hwst128_tchk", HwstConfig())
        cache.compile(GOOD, "hwst128_tchk",
                      HwstConfig(elide_checks=True))
        cache.compile(GOOD, "hwst128_tchk",
                      HwstConfig(keybuffer_entries=4))
        assert cache.program_hits == 0
        assert cache.misses == 3
        # ... but the front-end unit tier is config-independent, so
        # the re-instrumentations reuse the parsed modules.
        assert cache.unit_hits > 0

    def test_fingerprint_distinguishes_configs(self):
        base = config_fingerprint(HwstConfig())
        assert config_fingerprint(HwstConfig(elide_checks=True)) != base
        assert config_fingerprint(HwstConfig(keybuffer_entries=4)) != base
        assert config_fingerprint(HwstConfig()) == base

    def test_scheme_is_part_of_the_key(self):
        cache = CompileCache()
        config = HwstConfig()
        cache.compile(GOOD, "baseline", config)
        cache.compile(GOOD, "hwst128_tchk", config)
        assert cache.program_hits == 0

    def test_source_change_invalidates(self):
        cache = CompileCache()
        config = HwstConfig()
        cache.compile(GOOD, "baseline", config)
        cache.compile(GOOD.replace("32", "64"), "baseline", config)
        assert cache.program_hits == 0

    def test_stats_snapshot_names(self):
        cache = CompileCache()
        cache.compile(GOOD, "baseline", HwstConfig())
        snap = cache.stats_snapshot()
        assert snap["compile.cache.misses"] == 1
        assert snap["compile.cache.hits"] == 0

    def test_cached_program_replays_elision_counters(self):
        """fig4's checks_elided field must survive a cache hit."""
        cache = CompileCache()
        config = HwstConfig(elide_checks=True)
        cache.compile(GOOD, "hwst128_tchk", config)
        registry = MetricsRegistry()
        cache.compile(GOOD, "hwst128_tchk", config, metrics=registry)
        assert cache.program_hits == 1
        snap = registry.snapshot()
        assert "compile.analyze.checks_total" in snap


class TestCacheReuseAcrossSweep:
    def test_fig4_reuses_frontend_per_workload(self):
        """Acceptance: >= 1 compile reuse per workload within one fig4.

        All five cells of a workload share one front end; grouping
        sends them to one worker, so each workload sees unit-tier hits.
        """
        with SweepExecutor(jobs=1) as executor:
            fig4_overhead(scale="small", workloads=["treeadd", "sha"],
                          executor=executor)
            hits = executor.registry.counter("compile.cache.hits").value
            assert hits >= 2   # >= 1 per workload
            assert executor.obs.get("compile.cache.hits", 0) >= 2

    def test_executor_survives_repeat_runs(self):
        with SweepExecutor(jobs=2) as executor:
            first = fig5_speedup(scale="small", workloads=["hmmer"],
                                 executor=executor)
            before = executor.registry.counter(
                "compile.cache.program_hits").value
            second = fig5_speedup(scale="small", workloads=["hmmer"],
                                  executor=executor)
            after = executor.registry.counter(
                "compile.cache.program_hits").value
        assert first == second
        # Worker-side caches persist across run() calls: the repeat
        # sweep is served from the program tier.
        assert after - before >= 5


class TestProcessCache:
    def test_singleton(self):
        assert process_cache() is process_cache()


class TestCli:
    def test_jobs_flag_round_trip(self, capsys):
        code = main(["fig4", "--scale", "small",
                     "--workloads", "treeadd", "--jobs", "2"])
        captured = capsys.readouterr()
        assert code == 0
        assert "treeadd" in captured.out
        assert "sweep: cells=" in captured.err

    def test_bad_jobs_rejected(self, capsys):
        assert main(["fig4", "--jobs", "0"]) == 2

    def test_unknown_workload_exits_cleanly(self, capsys):
        code = main(["fig4", "--scale", "small",
                     "--workloads", "notathing"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown workload" in captured.err

    def test_failing_cell_sets_exit_code(self, capsys):
        _inject_workload("cli_crash", BROKEN)
        try:
            code = main(["fig4", "--scale", "small",
                         "--workloads", "treeadd,cli_crash"])
        finally:
            WORKLOADS.pop("cli_crash")
        captured = capsys.readouterr()
        assert code == 1
        assert "failed cell(s)" in captured.err
        assert "cli_crash" in captured.err


# Module level so ProcessPoolExecutor can pickle it into workers.
@dataclass(frozen=True)
class DyingSpec:
    """Generic cell whose worker process dies until ``sentinel`` exists
    (dies forever when ``always`` is set)."""

    sentinel: str
    always: bool = False
    tag: str = "dying"
    scheme: str = "none"
    workload: Optional[str] = None
    wallclock_budget: Optional[float] = None
    group_key: str = "dying-group"

    def execute(self) -> CellResult:
        if self.always or not os.path.exists(self.sentinel):
            with open(self.sentinel, "w") as fh:
                fh.write("died once\n")
            os._exit(17)  # simulate a segfault/OOM-kill
        return CellResult(tag=self.tag, workload=None, scheme=self.scheme,
                          ok=True, status="exit")


class TestWorkerDeathRetry:
    def test_transient_death_retried_once(self, tmp_path):
        sentinel = str(tmp_path / "died")
        with SweepExecutor(jobs=2) as executor:
            result = executor.run([DyingSpec(sentinel=sentinel)])[0]
            retries = executor.registry.counter(
                "sweep.worker_retries").value
            summary = executor.summary()
        assert result.status == "exit" and result.ok
        assert retries == 1
        assert "worker-retries=1" in summary

    def test_second_death_yields_worker_died_envelope(self, tmp_path):
        sentinel = str(tmp_path / "died")
        with SweepExecutor(jobs=2) as executor:
            result = executor.run(
                [DyingSpec(sentinel=sentinel, always=True)])[0]
        assert result.status == STATUS_WORKER_DIED
        assert not result.measured
        assert "died twice" in result.error

    def test_healthy_groups_unaffected_by_a_dying_one(self, tmp_path):
        sentinel = str(tmp_path / "died")
        cells = [
            CellSpec(scheme="baseline", source=GOOD, timing=False,
                     tag="good", group="good-group"),
            DyingSpec(sentinel=sentinel, always=True),
        ]
        with SweepExecutor(jobs=2) as executor:
            results = executor.run(cells)
        by_tag = {result.tag: result for result in results}
        assert by_tag["good"].ok
        assert by_tag["dying"].status == STATUS_WORKER_DIED


class TestCacheIntegrity:
    def _prime(self):
        cache = CompileCache()
        cache.compile(GOOD, "baseline", HwstConfig())
        key = next(iter(cache._programs))
        return cache, key

    def test_tampered_blob_recompiles(self):
        cache, key = self._prime()
        version, fingerprint, blob = cache._programs[key]
        cache._programs[key] = (version, fingerprint,
                                blob[:-4] + b"\x00\x00\x00\x00")
        program = cache.compile(GOOD, "baseline", HwstConfig())
        assert program is not None
        assert cache.corrupt == 1
        assert cache.stats_snapshot()["compile.cache.corrupt"] == 1

    def test_stale_format_version_recompiles(self):
        cache, key = self._prime()
        _, fingerprint, blob = cache._programs[key]
        cache._programs[key] = (CACHE_FORMAT + 1, fingerprint, blob)
        assert cache.compile(GOOD, "baseline", HwstConfig()) is not None
        assert cache.corrupt == 1

    def test_corrupt_entry_is_evicted_then_reseeded(self):
        cache, key = self._prime()
        version, fingerprint, blob = cache._programs[key]
        cache._programs[key] = (version, "0" * 64, blob)
        cache.compile(GOOD, "baseline", HwstConfig())  # corrupt -> miss
        assert cache.corrupt == 1
        cache.compile(GOOD, "baseline", HwstConfig())  # fresh entry hits
        assert cache.corrupt == 1
        assert cache.program_hits >= 1

    def test_clean_entries_never_count_corrupt(self):
        cache, _ = self._prime()
        cache.compile(GOOD, "baseline", HwstConfig())
        assert cache.corrupt == 0


class TestProgressCallback:
    def _cells(self, count=4):
        return [CellSpec(scheme="baseline", source=GOOD, timing=False,
                         tag=f"p{i}", group=f"g{i}")
                for i in range(count)]

    def test_inline_progress_reaches_total(self):
        seen = []
        with SweepExecutor(jobs=1) as executor:
            executor.run(self._cells(), progress=lambda d, t:
                         seen.append((d, t)))
        assert seen[-1] == (4, 4)
        dones = [d for d, _ in seen]
        assert dones == sorted(dones)        # monotonic

    def test_pooled_progress_reaches_total(self):
        seen = []
        with SweepExecutor(jobs=2) as executor:
            executor.run(self._cells(), progress=lambda d, t:
                         seen.append((d, t)))
        assert seen[-1][0] == 4
        assert all(t == 4 for _, t in seen)

    def test_callback_cleared_between_runs(self):
        seen = []
        with SweepExecutor(jobs=1) as executor:
            executor.run(self._cells(2), progress=lambda d, t:
                         seen.append(d))
            executor.run(self._cells(2))     # no callback this time
        assert seen == [1, 2]


class TestParallelMergeOrderIndependence:
    def test_jobs1_and_jobs2_merge_to_same_counters(self):
        """Worker snapshots merge in completion order; the merged
        executor.obs counters must agree with a serial run."""
        cells = [CellSpec(scheme="baseline", source=GOOD, timing=False,
                          tag=f"m{i}", group=f"g{i}") for i in range(4)]
        snaps = {}
        for jobs in (1, 2):
            with SweepExecutor(jobs=jobs) as executor:
                executor.run(cells)
                snaps[jobs] = executor.registry.snapshot()
        for name, serial in snaps[1].items():
            if isinstance(serial, dict):     # histogram summary
                assert snaps[2][name]["count"] == serial["count"]
            elif name.startswith(("sim.", "compile.cache.")):
                assert snaps[2][name] == serial, name
