"""Edge-case and property tests for the machine and its extensions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import FieldWidths, HwstConfig
from repro.core.compression import MetadataCompressor, MetadataRangeError
from repro.isa.instructions import Instr, li_sequence
from repro.isa import csr as csrdef
from repro.sim.machine import Machine, SRF_INVALID
from repro.sim.memory import DEFAULT_LAYOUT
from repro.sim.program import Program, Segment

HEAP = DEFAULT_LAYOUT.heap_base


def make_program(instrs, segments=None):
    return Program(instrs=list(instrs), entry=DEFAULT_LAYOUT.text_base,
                   segments=segments or [])


def run(instrs, **kwargs):
    return Machine().run(make_program(instrs), **kwargs)


def exit_with(setup):
    return list(setup) + [Instr("addi", rd=17, rs1=0, imm=93),
                          Instr("ecall")]


class TestSrfPropagation:
    def bind(self, reg=5):
        seq = li_sequence(reg, HEAP) + li_sequence(6, HEAP + 64)
        seq.append(Instr("bndrs", rd=reg, rs1=reg, rs2=6))
        return seq

    def test_propagation_through_add_chain(self):
        machine = Machine()
        seq = self.bind() + [
            Instr("addi", rd=7, rs1=5, imm=8),
            Instr("add", rd=28, rs1=7, rs2=0),
            Instr("addi", rd=29, rs1=28, imm=8),
        ]
        machine.run(make_program(exit_with(seq)))
        base, bound, _, _ = machine.srf_metadata(29)
        assert (base, bound) == (HEAP, HEAP + 64)

    def test_lui_invalidates(self):
        machine = Machine()
        seq = self.bind() + [Instr("lui", rd=5, imm=4)]
        machine.run(make_program(exit_with(seq)))
        assert machine.srf[5] == SRF_INVALID

    def test_csr_read_invalidates(self):
        machine = Machine()
        seq = self.bind() + [
            Instr("csrrs", rd=5, rs1=0, imm=csrdef.CYCLE)]
        machine.run(make_program(exit_with(seq)))
        assert machine.srf[5] == SRF_INVALID

    def test_x0_never_carries_metadata(self):
        machine = Machine()
        seq = li_sequence(5, HEAP) + li_sequence(6, HEAP + 64) + [
            Instr("bndrs", rd=5, rs1=5, rs2=6),
            Instr("add", rd=0, rs1=5, rs2=0),   # write to x0
        ]
        machine.run(make_program(exit_with(seq)))
        assert machine.srf[0] == SRF_INVALID

    def test_second_operand_provides_metadata(self):
        machine = Machine()
        seq = self.bind() + [
            Instr("addi", rd=7, rs1=0, imm=16),   # plain integer
            Instr("add", rd=28, rs1=7, rs2=5),    # int + ptr
        ]
        machine.run(make_program(exit_with(seq)))
        base, bound, _, _ = machine.srf_metadata(28)
        assert (base, bound) == (HEAP, HEAP + 64)


class TestCsrSemantics:
    def test_csrrw_swaps(self):
        machine = Machine()
        seq = li_sequence(5, 0x1234) + [
            Instr("csrrw", rd=6, rs1=5, imm=csrdef.HWST_STATUS),
            Instr("csrrs", rd=10, rs1=0, imm=csrdef.HWST_STATUS),
        ]
        result = machine.run(make_program(exit_with(seq)))
        assert result.exit_code == 0x1234

    def test_csrrs_sets_bits(self):
        machine = Machine()
        seq = [
            Instr("addi", rd=5, rs1=0, imm=0b100),
            Instr("csrrw", rd=0, rs1=5, imm=csrdef.HWST_STATUS),
            Instr("addi", rd=6, rs1=0, imm=0b011),
            Instr("csrrs", rd=0, rs1=6, imm=csrdef.HWST_STATUS),
            Instr("csrrs", rd=10, rs1=0, imm=csrdef.HWST_STATUS),
        ]
        result = run(exit_with(seq))
        assert result.exit_code == 0b111

    def test_csrrc_clears_bits(self):
        seq = [
            Instr("addi", rd=5, rs1=0, imm=0b111),
            Instr("csrrw", rd=0, rs1=5, imm=csrdef.HWST_STATUS),
            Instr("addi", rd=6, rs1=0, imm=0b010),
            Instr("csrrc", rd=0, rs1=6, imm=csrdef.HWST_STATUS),
            Instr("csrrs", rd=10, rs1=0, imm=csrdef.HWST_STATUS),
        ]
        assert run(exit_with(seq)).exit_code == 0b101

    def test_lock_window_updates_snoop(self):
        """Re-programming HWST_LOCK_BASE/LIMIT moves the keybuffer
        snoop window."""
        machine = Machine()
        machine.reset()
        machine._csr_write(csrdef.HWST_LOCK_BASE, 0x2000_0000)
        machine._csr_write(csrdef.HWST_LOCK_LIMIT, 0x2000_1000)
        assert machine._lock_lo == 0x2000_0000
        assert machine._lock_hi == 0x2000_1000


class TestSegments:
    def test_data_segment_loaded(self):
        data = Segment(addr=DEFAULT_LAYOUT.data_base,
                       data=b"\x2a\x00\x00\x00\x00\x00\x00\x00")
        seq = li_sequence(5, DEFAULT_LAYOUT.data_base) + [
            Instr("ld", rd=10, rs1=5, imm=0)]
        program = make_program(exit_with(seq), segments=[data])
        result = Machine().run(program)
        assert result.exit_code == 42

    def test_program_helpers(self):
        program = make_program([Instr("ecall")])
        assert program.text_size == 4
        assert program.instr_at(program.text_base).op == "ecall"
        assert program.instr_at(program.text_base + 4) is None
        with pytest.raises(KeyError):
            program.pc_of("missing")


class TestTracing:
    def test_trace_ring_buffer(self):
        machine = Machine(trace_depth=3)
        seq = exit_with([Instr("addi", rd=5, rs1=0, imm=i)
                         for i in range(6)])
        machine.run(make_program(seq))
        text = machine.trace_text()
        assert len(text.splitlines()) == 3
        assert "ecall" in text

    def test_no_trace_by_default(self):
        machine = Machine()
        machine.run(make_program(exit_with([])))
        assert machine.trace_text() == ""


class TestCompressionConfigs:
    @given(base_bits=st.integers(min_value=20, max_value=40),
           lock_bits=st.integers(min_value=4, max_value=24))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_under_arbitrary_widths(self, base_bits, lock_bits):
        """Property: any legal width split round-trips aligned metadata."""
        widths = FieldWidths(base=base_bits, range=64 - base_bits,
                             lock=lock_bits, key=64 - lock_bits)
        config = HwstConfig(widths=widths,
                            lock_entries=min(1 << 10,
                                             widths.max_locks() - 1))
        comp = MetadataCompressor(config)
        base = 0x40_0000
        bound = base + 512
        lower = comp.compress_spatial(base, bound)
        assert comp.decompress_spatial(lower) == (base, bound)
        lock = config.lock_base + 8 * 5
        upper = comp.compress_temporal(3, lock)
        assert comp.decompress_temporal(upper) == (3, lock)

    def test_machine_respects_custom_widths(self):
        widths = FieldWidths(base=30, range=34, lock=12, key=52)
        config = HwstConfig(widths=widths, lock_entries=1 << 10)
        machine = Machine(config=config)
        seq = li_sequence(5, HEAP) + li_sequence(6, HEAP + 128) + [
            Instr("bndrs", rd=5, rs1=5, rs2=6),
            Instr("ld.chk", rd=10, rs1=5, imm=120),
        ]
        result = machine.run(make_program(exit_with(seq)))
        assert result.status == "exit"
        seq_bad = li_sequence(5, HEAP) + li_sequence(6, HEAP + 128) + [
            Instr("bndrs", rd=5, rs1=5, rs2=6),
            Instr("ld.chk", rd=10, rs1=5, imm=128),
        ]
        result = Machine(config=config).run(make_program(seq_bad))
        assert result.status == "spatial_violation"

    def test_key_overflow_raises_config_error(self):
        widths = FieldWidths(base=35, range=29, lock=60, key=4)
        config = HwstConfig(widths=widths, lock_entries=4)
        comp = MetadataCompressor(config)
        with pytest.raises(MetadataRangeError):
            comp.compress_temporal(key=16, lock=0)


class TestRunResultPlumbing:
    def test_stats_survive_into_result(self):
        seq = li_sequence(5, HEAP) + [
            Instr("sd", rs1=5, rs2=5, imm=0),
            Instr("ld", rd=6, rs1=5, imm=0),
        ]
        result = run(exit_with(seq))
        assert result.stats["loads"] == 1
        assert result.stats["stores"] == 1

    def test_output_text_replaces_garbage(self):
        from repro.sim.machine import RunResult

        result = RunResult(status="exit", output=b"\xff\xfeok")
        assert "ok" in result.output_text()

    def test_max_instruction_guard(self):
        result = run([Instr("jal", rd=0, imm=0)], max_instructions=50)
        assert result.status == "limit"
