"""Seed-plumbing audit: nothing consumes unseeded global random state.

Two layers of defence:

* behavioural — exercising the randomised subsystems (fault-injection
  planning/campaigns, Juliet corpus generation, workload rendering)
  must leave ``random.getstate()`` untouched, because they all draw
  from private ``random.Random(seed)`` instances;
* static — the sources of ``workloads/`` and ``faultinject/`` must not
  call module-level ``random.<fn>()`` at all (``random.Random(...)``
  construction is the only permitted use).
"""

import random
import re
from pathlib import Path

import repro
from repro.faultinject import plan_campaign, kinds_for, run_campaign
from repro.faultinject.oracle import RunProfile

SRC_ROOT = Path(repro.__file__).resolve().parent

#: module-level ``random.<something>`` that is not ``random.Random(``.
#: ``(?<![\w.])`` keeps ``self.rng.random()`` and ``numpy.random`` out.
_GLOBAL_RANDOM_USE = re.compile(r"(?<![\w.])random\.(?!Random\b)\w+\s*\(")


def _profile() -> RunProfile:
    return RunProfile(status="exit", exit_code=0, output=b"",
                      heap_digest="0" * 64, trap_class="",
                      trap_pc=None, instret=500)


class TestGlobalStateUntouched:
    def _snapshot(self):
        random.seed(0xC0FFEE)
        return random.getstate()

    def test_campaign_plan(self):
        state = self._snapshot()
        plan_campaign(64, 3, kinds_for(["metadata", "checks"]),
                      ["vecsum"], {"vecsum": _profile()})
        assert random.getstate() == state

    def test_full_campaign(self):
        state = self._snapshot()
        run_campaign(n=6, seed=1, jobs=1, wallclock_budget=None)
        assert random.getstate() == state

    def test_juliet_corpus(self):
        from repro.workloads.juliet import generate_corpus

        state = self._snapshot()
        generate_corpus(fraction=1.0, cwes=[416], max_per_subtype=2)
        assert random.getstate() == state

    def test_workload_rendering(self):
        from repro.workloads import WORKLOADS

        state = self._snapshot()
        for workload in WORKLOADS.values():
            workload.source("small")
        assert random.getstate() == state

    def test_fuzz_generation(self):
        from repro.fuzz import generate_program, plan_programs

        state = self._snapshot()
        for index, kind in plan_programs(5, 6):
            generate_program(5, index, kind)
        assert random.getstate() == state

    def test_fuzz_campaign(self):
        from repro.fuzz import run_fuzz

        state = self._snapshot()
        run_fuzz(4, seed=2, jobs=1)
        assert random.getstate() == state

    def test_spec_equiv_generation(self):
        from repro.spec.equiv import all_mnemonics, cases_for

        state = self._snapshot()
        for mnemonic in all_mnemonics():
            cases_for(mnemonic, 99)
        assert random.getstate() == state

    def test_conform_campaign(self):
        from repro.harness.conform import run_conform

        state = self._snapshot()
        run_conform(workloads=["treeadd"], schemes=["hwst128_tchk"],
                    fuzz_count=2, equiv=False, jobs=1, heartbeat_s=0)
        assert random.getstate() == state


class TestNoGlobalRandomInSources:
    @staticmethod
    def _violations(package: str):
        hits = []
        for path in sorted((SRC_ROOT / package).rglob("*.py")):
            for number, line in enumerate(
                    path.read_text().splitlines(), start=1):
                code = line.split("#", 1)[0]
                if _GLOBAL_RANDOM_USE.search(code):
                    hits.append(f"{path.name}:{number}: {line.strip()}")
        return hits

    def test_workloads_use_private_rngs_only(self):
        assert self._violations("workloads") == []

    def test_faultinject_uses_private_rngs_only(self):
        assert self._violations("faultinject") == []

    def test_fuzz_uses_private_rngs_only(self):
        assert self._violations("fuzz") == []

    def test_spec_uses_private_rngs_only(self):
        assert self._violations("spec") == []

    def test_the_audit_regex_catches_offenders(self):
        assert _GLOBAL_RANDOM_USE.search("x = random.randrange(4)")
        assert _GLOBAL_RANDOM_USE.search("random.seed(1)")
        assert not _GLOBAL_RANDOM_USE.search("rng = random.Random(7)")
        assert not _GLOBAL_RANDOM_USE.search("value = self.random.pick()")
        assert not _GLOBAL_RANDOM_USE.search("rng.random()")
