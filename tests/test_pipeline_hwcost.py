"""Tests for the Section 5.3 hardware cost model."""

import pytest

from repro.core.config import FieldWidths, HwstConfig
from repro.pipeline.hwcost import HardwareCostModel, rocket_baseline


class TestPaperNumbers:
    def setup_method(self):
        self.report = HardwareCostModel(HwstConfig()).report()

    def test_lut_overhead_close_to_paper(self):
        """Paper: +1536 LUTs (+4.11 %). Structural model should land
        within a few percent."""
        assert self.report.added_luts == pytest.approx(1536, rel=0.05)
        assert self.report.lut_overhead_pct == pytest.approx(4.11, abs=0.25)

    def test_ff_overhead_close_to_paper(self):
        """Paper: +112 FFs (+0.66 %)."""
        assert self.report.added_ffs == pytest.approx(112, rel=0.10)
        assert self.report.ff_overhead_pct == pytest.approx(0.66, abs=0.10)

    def test_critical_path_stretch(self):
        """Paper: 5.26 ns -> 6.45 ns, caused by the metadata bypass."""
        assert self.report.baseline_critical_path_ns == pytest.approx(5.26)
        assert self.report.critical_path_ns == pytest.approx(6.45, abs=0.15)
        assert self.report.critical_path_ns > self.report.baseline_critical_path_ns

    def test_baseline_derived_from_percentages(self):
        luts, ffs, _ = rocket_baseline()
        assert round(100 * 1536 / luts, 2) == pytest.approx(4.11, abs=0.02)
        assert round(100 * 112 / ffs, 2) == pytest.approx(0.66, abs=0.02)

    def test_component_breakdown_nonempty(self):
        names = [c.name for c in self.report.components]
        assert any("SRF" in n for n in names)
        assert any("keybuffer" in n for n in names)
        assert any("SMAC" in n for n in names)
        assert all(c.luts >= 0 and c.ffs >= 0 for c in self.report.components)

    def test_table_renders(self):
        text = self.report.table()
        assert "TOTAL" in text
        assert "critical path" in text


class TestModelScaling:
    def test_bigger_keybuffer_costs_more(self):
        small = HardwareCostModel(HwstConfig(keybuffer_entries=4)).report()
        large = HardwareCostModel(HwstConfig(keybuffer_entries=32)).report()
        assert large.added_luts > small.added_luts
        assert large.added_ffs > small.added_ffs

    def test_zero_entry_keybuffer_still_reports(self):
        report = HardwareCostModel(HwstConfig(keybuffer_entries=0)).report()
        assert report.added_luts > 0
