"""Tests for the paged memory model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryFault
from repro.sim.memory import DEFAULT_LAYOUT, Memory, MemoryLayout, PAGE_SIZE


def small_memory() -> Memory:
    memory = Memory()
    memory.map_region(0x1000, 0x10000, "test")
    return memory


class TestRegions:
    def test_unmapped_access_faults(self):
        memory = small_memory()
        with pytest.raises(MemoryFault):
            memory.load_u8(0x0)
        with pytest.raises(MemoryFault):
            memory.store_u8(0x2_0000, 1)

    def test_null_page_is_unmapped_by_default(self):
        """Page zero stays unmapped so baseline null derefs fault."""
        memory = Memory()
        memory.map_layout(DEFAULT_LAYOUT)
        with pytest.raises(MemoryFault):
            memory.load_u64(0)

    def test_access_straddling_region_end_faults(self):
        memory = small_memory()
        with pytest.raises(MemoryFault):
            memory.load_u64(0x1000 + 0x10000 - 4)

    def test_region_of(self):
        memory = Memory()
        memory.map_layout(DEFAULT_LAYOUT)
        assert memory.region_of(DEFAULT_LAYOUT.text_base) == "text"
        assert memory.region_of(DEFAULT_LAYOUT.heap_base) == "heap"
        assert memory.region_of(DEFAULT_LAYOUT.stack_top - 8) == "stack"
        assert memory.region_of(DEFAULT_LAYOUT.shadow_offset) == "shadow"
        assert memory.region_of(0) is None

    def test_bad_region_size(self):
        with pytest.raises(ValueError):
            Memory().map_region(0, 0)

    def test_access_spanning_adjacent_regions(self):
        """Two back-to-back regions behave as one mapped span."""
        memory = Memory()
        memory.map_region(0x1000, 0x1000, "lo")
        memory.map_region(0x2000, 0x1000, "hi")
        memory.store_u64(0x2000 - 4, 0x1122_3344_5566_7788)
        assert memory.load_u64(0x2000 - 4) == 0x1122_3344_5566_7788
        assert memory.is_mapped(0x2000 - 4, 8)

    def test_text_data_boundary_spans(self):
        """load_u64(data_base - 4): every byte mapped -> no fault."""
        memory = Memory()
        memory.map_layout(DEFAULT_LAYOUT)
        addr = DEFAULT_LAYOUT.data_base - 4
        memory.store_u64(addr, 0xDEAD_BEEF_CAFE_F00D)
        assert memory.load_u64(addr) == 0xDEAD_BEEF_CAFE_F00D

    def test_data_heap_boundary_spans(self):
        memory = Memory()
        memory.map_layout(DEFAULT_LAYOUT)
        addr = DEFAULT_LAYOUT.heap_base - 1
        memory.store_bytes(addr, b"\xAA\xBB")
        assert memory.load_bytes(addr, 2) == b"\xAA\xBB"

    def test_heap_top_edge_still_faults(self):
        """heap_top..stack_base is a hole: spanning it must fault."""
        memory = Memory()
        memory.map_layout(DEFAULT_LAYOUT)
        assert DEFAULT_LAYOUT.heap_top < DEFAULT_LAYOUT.stack_base
        with pytest.raises(MemoryFault):
            memory.load_u64(DEFAULT_LAYOUT.heap_top - 4)
        # The last fully-in-heap access still works.
        assert memory.load_u64(DEFAULT_LAYOUT.heap_top - 8) == 0

    def test_overlapping_regions_coalesce(self):
        memory = Memory()
        memory.map_region(0x1000, 0x2000, "a")
        memory.map_region(0x1800, 0x2000, "b")   # overlaps a
        assert memory.is_mapped(0x1000, 0x2800)
        with pytest.raises(MemoryFault):
            memory.load_u8(0x3800)


class TestScalars:
    def test_u64_roundtrip(self):
        memory = small_memory()
        memory.store_u64(0x1008, 0x1122_3344_5566_7788)
        assert memory.load_u64(0x1008) == 0x1122_3344_5566_7788

    def test_little_endian(self):
        memory = small_memory()
        memory.store_u32(0x1000, 0xAABBCCDD)
        assert memory.load_u8(0x1000) == 0xDD
        assert memory.load_u8(0x1003) == 0xAA

    def test_store_truncates(self):
        memory = small_memory()
        memory.store_u8(0x1000, 0x1FF)
        assert memory.load_u8(0x1000) == 0xFF

    def test_zero_initialised(self):
        memory = small_memory()
        assert memory.load_u64(0x2000) == 0

    def test_page_crossing_access(self):
        memory = Memory()
        memory.map_region(0, 4 * PAGE_SIZE, "span")
        addr = PAGE_SIZE - 3
        memory.store_u64(addr, 0x0102_0304_0506_0708)
        assert memory.load_u64(addr) == 0x0102_0304_0506_0708

    @given(st.integers(min_value=0, max_value=0xFFF8),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_u64_roundtrip_property(self, offset, value):
        memory = small_memory()
        addr = 0x1000 + (offset & ~7)
        memory.store_u64(addr, value)
        assert memory.load_u64(addr) == value


class TestBulk:
    def test_bytes_roundtrip(self):
        memory = small_memory()
        blob = bytes(range(256))
        memory.store_bytes(0x1100, blob)
        assert memory.load_bytes(0x1100, 256) == blob

    def test_cstring(self):
        memory = small_memory()
        memory.store_bytes(0x1200, b"hello\x00world")
        assert memory.load_cstring(0x1200) == b"hello"

    def test_cstring_unterminated_raises(self):
        """No NUL within the limit must not silently truncate."""
        memory = small_memory()
        memory.store_bytes(0x1300, b"a" * 64)
        with pytest.raises(MemoryFault, match="unterminated"):
            memory.load_cstring(0x1300, limit=16)

    def test_cstring_truncation_marker(self):
        memory = small_memory()
        memory.store_bytes(0x1300, b"a" * 64)
        out = memory.load_cstring(0x1300, limit=16, allow_truncated=True)
        assert out == b"a" * 16 + Memory.TRUNCATION_MARKER

    def test_cstring_nul_at_limit_is_complete(self):
        memory = small_memory()
        memory.store_bytes(0x1400, b"abc\x00")
        assert memory.load_cstring(0x1400, limit=4) == b"abc"

    def test_pages_allocated_lazily(self):
        memory = Memory()
        memory.map_region(0, 1 << 20, "big")
        assert memory.pages_allocated == 0
        memory.store_u8(0x8_0000, 1)
        assert memory.pages_allocated == 1


class TestShadowAccounting:
    def test_shadow_bytes_counted(self):
        memory = Memory()
        memory.map_layout(DEFAULT_LAYOUT)
        before = memory.shadow_bytes_touched
        memory.store_u64(DEFAULT_LAYOUT.shadow_offset + 64, 1)
        assert memory.shadow_bytes_touched == before + 8

    def test_user_bytes_not_counted(self):
        memory = Memory()
        memory.map_layout(DEFAULT_LAYOUT)
        memory.store_u64(DEFAULT_LAYOUT.heap_base, 1)
        assert memory.shadow_bytes_touched == 0


class TestLayout:
    def test_default_layout_is_consistent(self):
        layout = DEFAULT_LAYOUT
        assert layout.text_base < layout.data_base < layout.heap_base
        assert layout.heap_top <= layout.stack_base
        assert layout.stack_top <= layout.user_top
        assert layout.shadow_offset >= layout.user_top

    def test_lock_table_overlays_text_shadow_only(self):
        """The lock table must fit below the shadow of the data segment."""
        from repro.core.config import HwstConfig

        layout = DEFAULT_LAYOUT
        config = HwstConfig()
        data_shadow_start = (layout.data_base << 2) + layout.shadow_offset
        assert config.lock_limit <= data_shadow_start

    def test_stack_base(self):
        layout = MemoryLayout()
        assert layout.stack_base == layout.stack_top - layout.stack_size
