"""Property-based tests: the compiled machine code agrees with Python.

Hypothesis generates random arithmetic expressions and value sets; each
is compiled through the full toolchain (parse -> IR -> RV64 -> ISS) and
the result is compared with Python's evaluation under C int64
semantics. This is the strongest correctness net over the compiler and
the ISS arithmetic at once.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.schemes import run_source

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def _wrap64(value):
    value &= (1 << 64) - 1
    return value - (1 << 64) if value >> 63 else value


class _Expr:
    """Random expression tree over long variables a, b, c."""

    def __init__(self, text, evaluate):
        self.text = text
        self.evaluate = evaluate


def _leaf_var(name):
    return _Expr(name, lambda env, name=name: env[name])


def _leaf_const(value):
    return _Expr(str(value), lambda env, value=value: value)


def _binop(op, left, right):
    def evaluate(env):
        lhs = left.evaluate(env)
        rhs = right.evaluate(env)
        if op == "+":
            return _wrap64(lhs + rhs)
        if op == "-":
            return _wrap64(lhs - rhs)
        if op == "*":
            return _wrap64(lhs * rhs)
        if op == "&":
            return _wrap64(lhs & rhs)
        if op == "|":
            return _wrap64(lhs | rhs)
        if op == "^":
            return _wrap64(lhs ^ rhs)
        raise AssertionError(op)

    return _Expr(f"({left.text} {op} {right.text})", evaluate)


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return _leaf_var(draw(st.sampled_from(["a", "b", "c"])))
        return _leaf_const(draw(st.integers(min_value=-1000,
                                            max_value=1000)))
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    return _binop(op, left, right)


@settings(max_examples=25, deadline=None)
@given(expr=expressions(),
       a=st.integers(min_value=-(1 << 31), max_value=1 << 31),
       b=st.integers(min_value=-(1 << 31), max_value=1 << 31),
       c=st.integers(min_value=-100, max_value=100))
def test_expression_evaluation_matches_python(expr, a, b, c):
    source = f"""
    int main(void) {{
        long a = {a};
        long b = {b};
        long c = {c};
        long r = {expr.text};
        print_int(r);
        return 0;
    }}"""
    result = run_source(source, "baseline", timing=False)
    assert result.status == "exit", result.detail
    expected = expr.evaluate({"a": a, "b": b, "c": c})
    assert result.output_text() == str(expected), expr.text


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=255),
                min_size=1, max_size=24))
def test_bubble_sort_matches_python(values):
    array = ", ".join(str(v) for v in values)
    n = len(values)
    source = f"""
    int main(void) {{
        int data[{n}] = {{{array}}};
        int i;
        int j;
        for (i = 0; i < {n}; i++) {{
            for (j = 0; j + 1 < {n} - i; j++) {{
                if (data[j] > data[j + 1]) {{
                    int t = data[j];
                    data[j] = data[j + 1];
                    data[j + 1] = t;
                }}
            }}
        }}
        for (i = 0; i < {n}; i++) {{
            print_int(data[i]);
            print_char(' ');
        }}
        return 0;
    }}"""
    result = run_source(source, "hwst128_tchk", timing=False)
    assert result.ok, result.detail
    expected = "".join(f"{v} " for v in sorted(values))
    assert result.output_text() == expected


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=40),
       st.integers(min_value=1, max_value=12))
def test_division_identities(dividend_scale, divisor):
    """(a/b)*b + a%b == a under C semantics, for mixed signs."""
    source = f"""
    int main(void) {{
        long vals[4];
        long i;
        vals[0] = {dividend_scale * 7};
        vals[1] = -{dividend_scale * 7};
        vals[2] = {divisor};
        vals[3] = -{divisor};
        for (i = 0; i < 2; i++) {{
            long j;
            for (j = 2; j < 4; j++) {{
                long a = vals[i];
                long b = vals[j];
                if ((a / b) * b + a % b != a) {{ return 1; }}
            }}
        }}
        return 0;
    }}"""
    result = run_source(source, "baseline", timing=False)
    assert result.status == "exit" and result.exit_code == 0


@settings(max_examples=10, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=32,
                                      max_codepoint=126,
                                      blacklist_characters='"\\'),
               min_size=0, max_size=30))
def test_string_roundtrip(text):
    """String literals survive lexing, data layout and printing."""
    source = f"""
    int main(void) {{
        char *s = "{text}";
        print_str(s);
        return (int)strlen(s) - {len(text)};
    }}"""
    result = run_source(source, "sbcets", timing=False)
    assert result.status == "exit", result.detail
    assert result.exit_code == 0
    assert result.output_text() == text
