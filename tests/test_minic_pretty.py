"""Round-trip property tests for the deterministic mini-C pretty-printer.

The core contract: for any AST the printer accepts,
``parse(pretty(ast))`` is structurally equal to the original
(``ast_equal``), and printing is a *fixpoint* — pretty-printing the
reparsed tree reproduces the text byte-for-byte.  The property is
checked over every corpus the repo owns: the examples, every registered
workload at its default scale, a Juliet sample, and a slice of the
fuzzer's own generated programs.
"""

from pathlib import Path

import pytest

from repro.minic import ast
from repro.minic.parser import parse
from repro.minic.pretty import PrettyError, ast_equal, c_string, pretty
from repro.workloads import WORKLOADS

EXAMPLES = sorted(Path(__file__).resolve().parent.parent
                  .joinpath("examples", "c").glob("*.c"))


def assert_roundtrip(source: str, name: str = "<source>") -> None:
    unit = parse(source)
    text = pretty(unit)
    reparsed = parse(text)
    assert ast_equal(unit, reparsed), f"{name}: AST changed by round-trip"
    assert pretty(reparsed) == text, f"{name}: printing is not a fixpoint"


class TestCorpusRoundtrip:
    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.name for p in EXAMPLES])
    def test_examples(self, path):
        assert_roundtrip(path.read_text(), path.name)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workloads(self, name):
        assert_roundtrip(WORKLOADS[name].source("default"), name)

    def test_juliet_sample(self):
        from repro.workloads.juliet.generator import generate_corpus

        for case in generate_corpus(fraction=0.02, max_per_subtype=1):
            assert_roundtrip(case.bad_source, f"{case.case_id}/bad")
            assert_roundtrip(case.good_source, f"{case.case_id}/good")

    def test_fuzzer_corpus(self):
        from repro.fuzz.gen import generate_program, plan_programs

        for index, kind in plan_programs(3, 30):
            program = generate_program(3, index, kind)
            assert_roundtrip(program.source, program.name)


class TestExpressionFidelity:
    """Precedence/associativity shapes that naive printers get wrong."""

    CASES = [
        "long main(void) { return 1 - (2 - 3); }",
        "long main(void) { return (1 + 2) * 3; }",
        "long main(void) { return 8 / (4 / 2); }",
        "long main(void) { return 1 << (2 + 3); }",
        "long main(void) { return -(-5); }",
        "long main(void) { long x; x = 1 ? 2 : (3 ? 4 : 5); }",
        "long main(void) { long x; x = (1 ? 2 : 3) ? 4 : 5; }",
        "long main(void) { long a[3]; return *(a + 1) + (*a); }",
        "long main(void) { long x = 0; return &x == &x; }",
        "long main(void) { return sizeof(long) + sizeof(long *); }",
        "long main(void) { return (1 < 2) == (3 < 4); }",
    ]

    @pytest.mark.parametrize("src", CASES)
    def test_roundtrip(self, src):
        assert_roundtrip(src)


class TestDeclarations:
    CASES = [
        "long g = 4; long main(void) { return g; }",
        "long tab[2][3]; long main(void) { return tab[1][2]; }",
        "long *p; long **pp; long main(void) { return 0; }",
        "struct P { long x; long y; };\n"
        "struct P g; long main(void) { return g.x; }",
        "struct N { struct N *next; long v; };\n"
        "long main(void) { struct N n; n.next = 0; return n.v; }",
        'char msg[6] = "hello"; long main(void) { return msg[0]; }',
        "long main(void) { for (long i = 0, j = 9; i < j; i = i + 1) "
        "{ } return 0; }",
    ]

    @pytest.mark.parametrize("src", CASES)
    def test_roundtrip(self, src):
        assert_roundtrip(src)


class TestCString:
    def test_plain(self):
        assert c_string(b"hi") == '"hi"'

    def test_escapes_roundtrip(self):
        # Every byte value must re-lex to the same data (the parser
        # appends the implicit NUL terminator itself).
        data = bytes(range(1, 128))
        literal = c_string(data)
        unit = parse(f"char blob[{len(data) + 1}] = {literal}; "
                     "long main(void) { return 0; }")
        assert unit.globals[0].init_string == data + b"\x00"

    def test_hex_escape_adjacency(self):
        # "\x1" followed by 'f' must not fuse into "\x1f".
        data = b"\x01f"
        literal = c_string(data)
        unit = parse(f"char blob[3] = {literal}; "
                     "long main(void) { return 0; }")
        assert unit.globals[0].init_string == data + b"\x00"


class TestUnprintableShapes:
    def test_dangling_else_raises(self):
        # `if (a) if (b) s; else t;` — the else binds to the inner if;
        # reparsing a naive print would re-bind it, so the printer must
        # refuse rather than silently change meaning.
        def lit(value):
            return ast.IntLit(value=value)

        inner = ast.If(cond=lit(1), then=ast.ExprStmt(expr=lit(2)),
                       other=None)
        outer = ast.If(cond=lit(3), then=inner,
                       other=ast.ExprStmt(expr=lit(4)))
        template = parse("long main(void) { return 0; }").functions[0]
        func = ast.FuncDef(name="main", ret_type=template.ret_type,
                           params=[], body=ast.Block(stmts=[outer]))
        unit = ast.TranslationUnit(functions=[func], globals=[])
        with pytest.raises(PrettyError):
            pretty(unit)


class TestAstEqual:
    def test_detects_difference(self):
        a = parse("long main(void) { return 1; }")
        b = parse("long main(void) { return 2; }")
        assert not ast_equal(a, b)

    def test_ignores_positions(self):
        a = parse("long main(void) { return 1; }")
        b = parse("long main(void)\n{\n    return 1;\n}")
        assert ast_equal(a, b)
