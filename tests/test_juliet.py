"""Tests for the Juliet-style corpus generator and detection behaviour."""

import pytest

from repro.harness.runner import detected, run_program
from repro.workloads.juliet import (
    CWE_PLAN, SPATIAL_CWES, TEMPORAL_CWES, corpus_counts,
    generate_corpus, total_cases,
)
from repro.workloads.juliet.generator import _TEMPLATES, _build_case


class TestCorpusPlan:
    def test_totals_match_paper(self):
        """Section 4: 7074 spatial + 1292 temporal = 8366."""
        counts = corpus_counts()
        assert counts == {"spatial": 7074, "temporal": 1292,
                          "total": 8366}
        assert total_cases() == 8366

    def test_all_ten_cwes_present(self):
        assert set(CWE_PLAN) == set(SPATIAL_CWES) | set(TEMPORAL_CWES)

    def test_every_subtype_has_a_template(self):
        for plan in CWE_PLAN.values():
            for subtype, count in plan:
                assert subtype in _TEMPLATES
                assert count > 0

    def test_cwe122_odd_subtype_sized_for_hwst_gap(self):
        """The HWST-misses share is ~0.86% of the corpus (Fig. 6)."""
        odd = dict(CWE_PLAN[122])["odd_off_by_one"]
        assert abs(100.0 * odd / total_cases() - 0.86) < 0.05


class TestGeneration:
    def test_deterministic(self):
        a = _build_case(122, "heap_loop", 3)
        b = _build_case(122, "heap_loop", 3)
        assert a.bad_source == b.bad_source
        assert a.good_source == b.good_source

    def test_indices_vary_cases(self):
        sources = {_build_case(121, "loop_to_canary", i).bad_source
                   for i in range(10)}
        assert len(sources) > 1   # parameters/flows differ

    def test_flow_variants_cycle(self):
        flows = {_build_case(121, "loop_to_canary", i).flow
                 for i in range(7)}
        assert flows == {1, 2, 3, 4, 5, 6, 7}

    def test_fraction_sampling_preserves_proportions(self):
        sample = generate_corpus(fraction=0.01)
        full = total_cases()
        assert abs(len(sample) - full * 0.01) < 30
        cwes = {c.cwe for c in sample}
        assert cwes == set(CWE_PLAN)   # every family represented

    def test_full_corpus_size(self):
        assert len(generate_corpus(fraction=1.0)) == 8366

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            generate_corpus(fraction=0.0)
        with pytest.raises(ValueError):
            generate_corpus(fraction=1.5)

    def test_max_per_subtype(self):
        sample = generate_corpus(fraction=1.0, max_per_subtype=2)
        assert len(sample) == 2 * sum(len(p) for p in CWE_PLAN.values())

    def test_cwe_filter(self):
        sample = generate_corpus(fraction=0.01, cwes=[415, 476])
        assert {c.cwe for c in sample} == {415, 476}

    def test_case_metadata(self):
        case = _build_case(416, "uaf_fresh", 0)
        assert case.temporal
        assert case.expected["pointer"] is True
        spatial_case = _build_case(121, "far_write", 0)
        assert not spatial_case.temporal


# One case per subtype, executed for real across the Fig. 6 schemes;
# the designed expectations are the contract the coverage bench relies on.
_SUBTYPE_PARAMS = [(cwe, subtype) for cwe, plan in CWE_PLAN.items()
                   for subtype, _ in plan]


@pytest.mark.parametrize("cwe,subtype", _SUBTYPE_PARAMS)
def test_subtype_detection_contract(cwe, subtype):
    case = _build_case(cwe, subtype, 0)
    for scheme in ("sbcets", "hwst128_tchk", "asan", "gcc"):
        result = run_program(case.bad_source, scheme, timing=False,
                             max_instructions=3_000_000)
        if scheme == "sbcets":
            expected = case.expected["pointer"]
        elif scheme == "hwst128_tchk":
            expected = case.expected["pointer"] and \
                not case.expected.get("hwst_misses")
        else:
            expected = case.expected[scheme]
        assert detected(scheme, result) == expected, \
            (scheme, result.status, result.detail)


@pytest.mark.parametrize("cwe,subtype", _SUBTYPE_PARAMS)
def test_subtype_good_variant_is_clean(cwe, subtype):
    """No false positives on the paired good variants."""
    case = _build_case(cwe, subtype, 1)
    for scheme in ("sbcets", "hwst128_tchk", "asan", "gcc"):
        result = run_program(case.good_source, scheme, timing=False,
                             max_instructions=3_000_000)
        assert result.status == "exit" and result.exit_code == 0, \
            (scheme, result.status, result.detail)
