"""Cross-scheme tests: clean programs stay clean, bugs are classified.

The parametrised matrices here are the library-level contract behind
Figures 4 and 6: functional transparency (no false positives, identical
program output) and the per-scheme detection capabilities.
"""

import pytest

from repro.harness.runner import detected, run_program
from repro.schemes import SCHEMES, run_source, scheme_names

ALL_SCHEMES = scheme_names()

CLEAN_PROGRAM = r"""
typedef struct Node Node;
struct Node { long value; Node *next; };

Node *push(Node *head, long value) {
    Node *n = (Node*)malloc(sizeof(Node));
    n->value = value;
    n->next = head;
    return n;
}

int main(void) {
    Node *list = 0;
    long buf[6];
    char text[16];
    long sum = 0;
    int i;
    for (i = 0; i < 6; i++) { buf[i] = i * 3; }
    for (i = 0; i < 4; i++) { list = push(list, buf[i]); }
    strcpy(text, "check");
    while (list) {
        Node *next = list->next;
        sum += list->value;
        free(list);
        list = next;
    }
    sum += (long)strlen(text);
    print_int(sum);
    return sum == 23 ? 0 : 1;
}
"""


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_clean_program_passes(scheme):
    """Functional transparency: no scheme breaks a correct program."""
    result = run_source(CLEAN_PROGRAM, scheme, timing=False)
    assert result.status == "exit", (scheme, result.status, result.detail)
    assert result.exit_code == 0, (scheme, result.exit_code)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_output_identical_across_schemes(scheme):
    """Instrumentation must not change observable behaviour."""
    result = run_source(CLEAN_PROGRAM, scheme, timing=False)
    assert result.output == b"23"


# --- detection matrix ------------------------------------------------------

HEAP_OVERFLOW = """
int main(void){
    long *a = (long*)malloc(4 * sizeof(long));
    a[5] = 1;
    free(a);
    return 0;
}"""

HEAP_OFF_BY_ONE_BYTE = """
int main(void){
    char *p = (char*)malloc(9);
    p[9] = 1;
    free(p);
    return 0;
}"""

USE_AFTER_FREE = """
int main(void){
    long *p = (long*)malloc(16);
    free(p);
    return (int)(p[0] & 0);
}"""

DOUBLE_FREE = """
int main(void){
    long *p = (long*)malloc(16);
    free(p);
    free(p);
    return 0;
}"""

UNDERWRITE = """
int main(void){
    long *q = (long*)malloc(256);
    long *p = (long*)malloc(32);
    p[-1] = 5;
    q[0] = 0;
    return 0;
}"""

NULL_DEREF = """
int main(void){
    long *p = 0;
    return (int)(p[0] & 0);
}"""

FREE_OFFSET = """
int main(void){
    long *p = (long*)malloc(32);
    free(p + 1);
    return 0;
}"""

STACK_OVERREAD = """
int main(void){
    long buf[4];
    long v;
    buf[0] = 1;
    v = buf[6];
    return (int)(v & 0);
}"""

# (program, scheme) -> expected detection
MATRIX = [
    (HEAP_OVERFLOW, "sbcets", True),
    (HEAP_OVERFLOW, "hwst128", True),
    (HEAP_OVERFLOW, "hwst128_tchk", True),
    (HEAP_OVERFLOW, "bogo", True),
    (HEAP_OVERFLOW, "wdl_narrow", True),
    (HEAP_OVERFLOW, "wdl_wide", True),
    (HEAP_OVERFLOW, "asan", True),
    (HEAP_OVERFLOW, "gcc", False),
    (HEAP_OVERFLOW, "baseline", False),
    # Sub-alignment heap overflow: the compression padding blind spot.
    (HEAP_OFF_BY_ONE_BYTE, "sbcets", True),
    (HEAP_OFF_BY_ONE_BYTE, "hwst128", False),
    (HEAP_OFF_BY_ONE_BYTE, "hwst128_tchk", False),
    (HEAP_OFF_BY_ONE_BYTE, "wdl_narrow", True),
    (HEAP_OFF_BY_ONE_BYTE, "wdl_wide", True),
    (HEAP_OFF_BY_ONE_BYTE, "asan", True),
    (USE_AFTER_FREE, "sbcets", True),
    (USE_AFTER_FREE, "hwst128", True),
    (USE_AFTER_FREE, "hwst128_tchk", True),
    (USE_AFTER_FREE, "bogo", True),   # via nullified bounds
    (USE_AFTER_FREE, "asan", True),
    (USE_AFTER_FREE, "gcc", False),
    (DOUBLE_FREE, "sbcets", True),
    (DOUBLE_FREE, "hwst128_tchk", True),
    (DOUBLE_FREE, "bogo", False),     # BOGO is UAF-only (paper Sec. 2)
    (DOUBLE_FREE, "asan", True),
    (DOUBLE_FREE, "gcc", False),
    (UNDERWRITE, "sbcets", True),
    (UNDERWRITE, "hwst128_tchk", True),
    (UNDERWRITE, "asan", True),
    (NULL_DEREF, "sbcets", True),
    (NULL_DEREF, "hwst128_tchk", True),
    (NULL_DEREF, "bogo", True),
    (NULL_DEREF, "asan", True),       # SEGV report
    (NULL_DEREF, "gcc", False),       # crash without diagnostic
    (FREE_OFFSET, "sbcets", True),
    (FREE_OFFSET, "hwst128_tchk", True),
    (FREE_OFFSET, "asan", True),
    (STACK_OVERREAD, "sbcets", True),
    (STACK_OVERREAD, "hwst128_tchk", True),
    # The LMSM ablation variant must detect exactly like trie SBCETS.
    (HEAP_OVERFLOW, "sbcets_lmsm", True),
    (HEAP_OFF_BY_ONE_BYTE, "sbcets_lmsm", True),
    (USE_AFTER_FREE, "sbcets_lmsm", True),
    (DOUBLE_FREE, "sbcets_lmsm", True),
    (NULL_DEREF, "sbcets_lmsm", True),
    (FREE_OFFSET, "sbcets_lmsm", True),
]


@pytest.mark.parametrize("source,scheme,expected", MATRIX)
def test_detection_matrix(source, scheme, expected):
    result = run_program(source, scheme, timing=False,
                         max_instructions=5_000_000)
    assert detected(scheme, result) == expected, \
        (scheme, result.status, result.detail)


class TestViolationClassification:
    def test_spatial_vs_temporal_statuses(self):
        spatial = run_source(HEAP_OVERFLOW, "hwst128_tchk", timing=False)
        temporal = run_source(USE_AFTER_FREE, "hwst128_tchk",
                              timing=False)
        assert spatial.status == "spatial_violation"
        assert temporal.status == "temporal_violation"

    def test_sbcets_traps_are_classified_too(self):
        spatial = run_source(HEAP_OVERFLOW, "sbcets", timing=False)
        temporal = run_source(USE_AFTER_FREE, "sbcets", timing=False)
        assert spatial.status == "spatial_violation"
        assert temporal.status == "temporal_violation"

    def test_canary_detection_reason(self):
        smash = """
        int main(void){
            long buf[4];
            int i;
            for (i = 0; i < 7; i++) { buf[i] = -1; }
            return 0;
        }"""
        result = run_source(smash, "gcc", timing=False)
        assert result.status == "abort"
        assert "smash" in result.detail

    def test_detected_violation_property(self):
        result = run_source(HEAP_OVERFLOW, "hwst128_tchk", timing=False)
        assert result.detected_violation


class TestSchemeRegistry:
    def test_all_paper_schemes_present(self):
        for name in ("baseline", "sbcets", "hwst128", "hwst128_tchk",
                     "bogo", "wdl_narrow", "wdl_wide", "asan", "gcc"):
            assert name in SCHEMES

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            run_source("int main(void){ return 0; }", "nope")

    def test_descriptions_exist(self):
        for spec in SCHEMES.values():
            assert spec.description
