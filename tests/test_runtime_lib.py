"""Tests for the mini-C runtime library (allocator, strings, PRNG)."""

import pytest

from repro.schemes import run_source


def exit_code(source):
    result = run_source(source, "baseline", timing=False)
    assert result.status == "exit", (result.status, result.detail)
    return result.exit_code


class TestAllocator:
    def test_malloc_returns_distinct_aligned_blocks(self):
        assert exit_code("""
        int main(void){
            long a = (long)malloc(24);
            long b = (long)malloc(24);
            if (a == 0 || b == 0) { return 1; }
            if (a == b) { return 2; }
            if (a & 7) { return 3; }
            if (b & 7) { return 4; }
            return 0;
        }""") == 0

    def test_free_then_reuse(self):
        assert exit_code("""
        int main(void){
            long a = (long)malloc(32);
            long b;
            free((void*)a);
            b = (long)malloc(32);
            return a == b ? 0 : 1;   /* first-fit reuses the block */
        }""") == 0

    def test_free_null_is_noop(self):
        assert exit_code("int main(void){ free(0); return 0; }") == 0

    def test_malloc_zero_gives_usable_pointer(self):
        assert exit_code("""
        int main(void){
            char *p = (char*)malloc(0);
            return p != 0 ? 0 : 1;
        }""") == 0

    def test_malloc_exhaustion_returns_null(self):
        assert exit_code("""
        int main(void){
            void *p = malloc(900000000);
            return p == 0 ? 0 : 1;
        }""") == 0

    def test_calloc_zeroes(self):
        assert exit_code("""
        int main(void){
            long *p = (long*)calloc(8, sizeof(long));
            long sum = 0;
            int i;
            for (i = 0; i < 8; i++) { sum += p[i]; }
            free(p);
            return (int)sum;
        }""") == 0

    def test_many_alloc_free_cycles(self):
        assert exit_code("""
        int main(void){
            int i;
            for (i = 0; i < 200; i++) {
                long *p = (long*)malloc(8 + (i % 5) * 8);
                p[0] = i;
                free(p);
            }
            return 0;
        }""") == 0

    def test_first_fit_skips_small_blocks(self):
        assert exit_code("""
        int main(void){
            void *small = malloc(16);
            void *big;
            free(small);
            big = malloc(256);       /* cannot reuse the 16-byte block */
            return big != small ? 0 : 1;
        }""") == 0


class TestStringFunctions:
    def test_strlen(self):
        assert exit_code("""
        int main(void){ return (int)strlen("hello world"); }""") == 11

    def test_strcpy_and_strcmp(self):
        assert exit_code("""
        int main(void){
            char buf[16];
            strcpy(buf, "abc");
            return strcmp(buf, "abc");
        }""") == 0

    def test_strcmp_ordering(self):
        assert exit_code("""
        int main(void){
            int lt = strcmp("abc", "abd") < 0;
            int gt = strcmp("b", "a") > 0;
            int eq = strcmp("", "") == 0;
            return lt + gt + eq;
        }""") == 3

    def test_strncmp_stops_at_n(self):
        assert exit_code("""
        int main(void){ return strncmp("abcXYZ", "abcdef", 3); }""") == 0

    def test_strncpy_pads(self):
        assert exit_code("""
        int main(void){
            char buf[8];
            int i;
            for (i = 0; i < 8; i++) { buf[i] = 'x'; }
            strncpy(buf, "ab", 6);
            return buf[1] == 'b' && buf[5] == 0 && buf[7] == 'x' ? 0 : 1;
        }""") == 0

    def test_strcat(self):
        assert exit_code("""
        int main(void){
            char buf[16];
            strcpy(buf, "foo");
            strcat(buf, "bar");
            return strcmp(buf, "foobar");
        }""") == 0

    def test_memcmp(self):
        assert exit_code("""
        int main(void){
            char a[4] = {1, 2, 3, 4};
            char b[4] = {1, 2, 9, 4};
            return memcmp(a, b, 2) == 0 && memcmp(a, b, 3) < 0 ? 0 : 1;
        }""") == 0

    def test_memcpy_and_memset(self):
        assert exit_code("""
        int main(void){
            char src[8];
            char dst[8];
            int i;
            memset(src, 7, 8);
            memcpy(dst, src, 8);
            for (i = 0; i < 8; i++) {
                if (dst[i] != 7) { return 1; }
            }
            return 0;
        }""") == 0


class TestPrng:
    def test_deterministic_stream(self):
        source = """
        int main(void){
            long a;
            long b;
            rand_seed(5);
            a = rand_next();
            rand_seed(5);
            b = rand_next();
            return a == b ? 0 : 1;
        }"""
        assert exit_code(source) == 0

    def test_values_are_nonnegative(self):
        assert exit_code("""
        int main(void){
            int i;
            rand_seed(1);
            for (i = 0; i < 100; i++) {
                if (rand_next() < 0) { return 1; }
            }
            return 0;
        }""") == 0

    def test_stream_varies(self):
        assert exit_code("""
        int main(void){
            rand_seed(9);
            return rand_next() != rand_next() ? 0 : 1;
        }""") == 0

    def test_same_stream_across_schemes(self):
        source = """
        int main(void){
            rand_seed(123);
            print_int(rand_next() % 1000);
            return 0;
        }"""
        base = run_source(source, "baseline", timing=False)
        hwst = run_source(source, "hwst128_tchk", timing=False)
        assert base.output == hwst.output


class TestLockRuntime:
    def test_lock_alloc_free_cycle(self):
        # Exercised via the instrumented runtime: alloc/free churn under
        # a temporal scheme recycles lock_locations without exhaustion.
        source = """
        int main(void){
            int i;
            for (i = 0; i < 3000; i++) {
                void *p = malloc(16);
                free(p);
            }
            return 0;
        }"""
        result = run_source(source, "hwst128_tchk", timing=False,
                            max_instructions=20_000_000)
        assert result.ok, (result.status, result.detail)

    def test_abort_reports_as_abort(self):
        result = run_source("int main(void){ abort(); return 0; }",
                            "baseline", timing=False)
        assert result.status == "abort"

    def test_exit_code_propagates(self):
        result = run_source("int main(void){ exit(7); return 0; }",
                            "baseline", timing=False)
        assert result.status == "exit" and result.exit_code == 7
