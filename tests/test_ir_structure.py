"""Structural tests for IR generation and the verifier."""

import pytest

from repro.errors import IRError
from repro.ir import ir as irdef
from repro.ir.irgen import lower_unit
from repro.ir.verify import (unreachable_blocks, verify_function,
                             verify_module)
from repro.minic import analyze, parse
from repro.minic.types import LONG


def lower(source):
    module = lower_unit(analyze(parse(source)))
    verify_module(module)
    return module


class TestBasicLowering:
    def test_empty_main(self):
        module = lower("int main(void) { return 0; }")
        fn = module.functions["main"]
        assert fn.blocks[0].label == "entry"
        assert isinstance(fn.blocks[0].instrs[-1], irdef.Ret)

    def test_params_spilled_via_getparam(self):
        module = lower("int f(int a, int b) { return a + b; } "
                       "int main(void) { return f(1, 2); }")
        fn = module.functions["f"]
        getparams = [i for i in fn.blocks[0].instrs
                     if isinstance(i, irdef.GetParam)]
        assert [g.index for g in getparams] == [0, 1]

    def test_locals_registered(self):
        module = lower("""
        int main(void) { int a; long b[4]; return 0; }""")
        fn = module.functions["main"]
        assert "a" in fn.locals and "b" in fn.locals
        assert fn.locals["b"].is_object
        assert not fn.locals["a"].is_object

    def test_address_taken_scalar_becomes_object(self):
        module = lower("""
        int main(void) { int a; int *p = &a; return *p; }""")
        assert module.functions["main"].locals["a"].is_object

    def test_if_produces_blocks(self):
        module = lower("""
        int main(void) { if (1) { return 1; } return 0; }""")
        labels = [b.label for b in module.functions["main"].blocks]
        assert any(label.startswith("if.then") for label in labels)

    def test_loop_block_structure(self):
        module = lower("""
        int main(void) {
            int i;
            for (i = 0; i < 3; i++) { }
            return i;
        }""")
        labels = [b.label for b in module.functions["main"].blocks]
        for prefix in ("for.cond", "for.body", "for.step", "for.end"):
            assert any(label.startswith(prefix) for label in labels)

    def test_needs_check_flags(self):
        module = lower("""
        int main(void) {
            int a[4];
            int b = 1;
            a[0] = b;      /* array store: checked */
            b = 2;         /* scalar slot store: unchecked */
            return a[0];
        }""")
        fn = module.functions["main"]
        stores = [i for b in fn.blocks for i in b.instrs
                  if isinstance(i, irdef.Store)]
        assert any(s.needs_check for s in stores)
        assert any(not s.needs_check for s in stores)

    def test_ptr_flags_on_loads_stores(self):
        module = lower("""
        int main(void) {
            long *p = (long*)malloc(8);
            long *q = p;
            free(q);
            return 0;
        }""")
        fn = module.functions["main"]
        assert any(isinstance(i, irdef.Store) and i.ptr_value
                   for b in fn.blocks for i in b.instrs)
        assert any(isinstance(i, irdef.Load) and i.ptr_result
                   for b in fn.blocks for i in b.instrs)

    def test_string_literal_becomes_global(self):
        module = lower("""
        int main(void) { return (int)strlen("abc"); }""")
        strings = [g for g in module.globals.values() if g.is_string]
        assert len(strings) == 1
        assert strings[0].data == b"abc\x00"

    def test_width_annotations_for_int_math(self):
        module = lower("""
        int main(void) { int a = 1; int b = a * 3; return b; }""")
        fn = module.functions["main"]
        muls = [i for b in fn.blocks for i in b.instrs
                if isinstance(i, irdef.BinOp) and i.op == "mul"]
        assert muls and muls[0].width == 4

    def test_long_math_native_width(self):
        module = lower("""
        int main(void) { long a = 1; long b = a * 3; return (int)b; }""")
        fn = module.functions["main"]
        muls = [i for b in fn.blocks for i in b.instrs
                if isinstance(i, irdef.BinOp) and i.op == "mul"]
        assert muls and muls[0].width == 0


class TestBlockLocalInvariant:
    """Programs whose naive lowering would leak vregs across blocks."""

    CASES = [
        "int main(void) { int a = 1 ? 2 : 3; return a; }",
        "int main(void) { int a = 5; int b = a + (a > 2 ? 1 : 0); return b; }",
        "int main(void) { int x[4]; x[1 > 0 ? 0 : 1] = 2; return x[0]; }",
        """int f(int a, int b) { return a + b; }
           int main(void) { return f(1 ? 2 : 3, 4 && 5); }""",
        "int main(void) { int a = 1 && (2 || 0); return a; }",
        """int main(void) { long *p = (long*)malloc(8);
           p[0] = 1 ? 7 : 9; p[0] += 0 ? 1 : 2; free(p); return 0; }""",
        """int main(void) { int c = 1; int *p; int x = 4; int y = 5;
           p = c ? &x : &y; *p = 6; return x; }""",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_verifies(self, source):
        lower(source)


class TestVerifier:
    def make_fn(self):
        fn = irdef.Function("f", LONG, [])
        block = fn.add_block("entry")
        return fn, block

    def test_empty_block_rejected(self):
        fn, _ = self.make_fn()
        with pytest.raises(IRError):
            verify_function(fn)

    def test_missing_terminator(self):
        fn, block = self.make_fn()
        v = fn.new_vreg()
        block.instrs.append(irdef.IConst(v, 1))
        with pytest.raises(IRError):
            verify_function(fn)

    def test_terminator_in_middle(self):
        fn, block = self.make_fn()
        v = fn.new_vreg()
        block.instrs.append(irdef.IConst(v, 1))
        block.instrs.append(irdef.Ret(v))
        block.instrs.append(irdef.IConst(fn.new_vreg(), 2))
        with pytest.raises(IRError):
            verify_function(fn)

    def test_use_before_def(self):
        fn, block = self.make_fn()
        v = fn.new_vreg()
        w = fn.new_vreg()
        block.instrs.append(irdef.BinOp(w, "add", v, v))
        block.instrs.append(irdef.IConst(v, 1))
        block.instrs.append(irdef.Ret(w))
        with pytest.raises(IRError):
            verify_function(fn)

    def test_cross_block_use(self):
        fn, block = self.make_fn()
        v = fn.new_vreg()
        block.instrs.append(irdef.IConst(v, 1))
        block.instrs.append(irdef.Jmp("next"))
        nxt = fn.add_block("next")
        nxt.instrs.append(irdef.Ret(v))
        with pytest.raises(IRError):
            verify_function(fn)

    def test_double_definition(self):
        fn, block = self.make_fn()
        v = fn.new_vreg()
        block.instrs.append(irdef.IConst(v, 1))
        block.instrs.append(irdef.IConst(v, 2))
        block.instrs.append(irdef.Ret(v))
        with pytest.raises(IRError):
            verify_function(fn)

    def test_branch_to_missing_block(self):
        fn, block = self.make_fn()
        v = fn.new_vreg()
        block.instrs.append(irdef.IConst(v, 1))
        block.instrs.append(irdef.Br(v, "nowhere", "entry"))
        with pytest.raises(IRError):
            verify_function(fn)

    def test_unknown_local(self):
        fn, block = self.make_fn()
        v = fn.new_vreg()
        block.instrs.append(irdef.AddrLocal(v, "ghost"))
        block.instrs.append(irdef.Ret(v))
        with pytest.raises(IRError):
            verify_function(fn)

    def test_valid_function_passes(self):
        fn, block = self.make_fn()
        v = fn.new_vreg()
        block.instrs.append(irdef.IConst(v, 1))
        block.instrs.append(irdef.Ret(v))
        verify_function(fn)

    def test_case_shadowed_labels_rejected(self):
        """Labels differing only by case would shadow each other in
        any case-insensitive assembler; the verifier must name both."""
        fn, block = self.make_fn()
        v = fn.new_vreg()
        block.instrs.append(irdef.IConst(v, 1))
        block.instrs.append(irdef.Jmp("Loop"))
        upper = fn.add_block("Loop")
        upper.instrs.append(irdef.Jmp("loop"))
        lower_blk = fn.add_block("loop")
        w = fn.new_vreg()
        lower_blk.instrs.append(irdef.IConst(w, 0))
        lower_blk.instrs.append(irdef.Ret(w))
        with pytest.raises(IRError) as exc:
            verify_function(fn)
        message = str(exc.value)
        assert "'Loop'" in message and "'loop'" in message
        assert "case" in message

    def test_call_arity_mismatch_rejected(self):
        module = lower("int f(int a, int b) { return a + b; } "
                       "int main(void) { return f(1, 2); }")
        main = module.functions["main"]
        call = next(i for b in main.blocks for i in b.instrs
                    if isinstance(i, irdef.Call))
        call.args = call.args[:1]
        with pytest.raises(IRError) as exc:
            verify_function(main, module)
        assert "f" in str(exc.value)

    def test_call_arity_checked_at_module_level(self):
        module = lower("int f(int a) { return a; } "
                       "int main(void) { return f(1); }")
        fn = module.functions["main"]
        call = next(i for b in fn.blocks for i in b.instrs
                    if isinstance(i, irdef.Call))
        call.args = list(call.args) + [call.args[0]]
        with pytest.raises(IRError):
            verify_module(module)

    def test_unreachable_block_tolerated_by_default(self):
        fn, block = self.make_fn()
        v = fn.new_vreg()
        block.instrs.append(irdef.IConst(v, 1))
        block.instrs.append(irdef.Ret(v))
        dead = fn.add_block("dead")
        w = fn.new_vreg()
        dead.instrs.append(irdef.IConst(w, 2))
        dead.instrs.append(irdef.Ret(w))
        verify_function(fn)
        assert unreachable_blocks(fn) == ["dead"]
        with pytest.raises(IRError) as exc:
            verify_function(fn, allow_unreachable=False)
        assert "dead" in str(exc.value)

    def test_lowered_module_passes_module_checks(self):
        module = lower("int f(int a, int b) { return a + b; } "
                       "int main(void) { return f(3, 4); }")
        for fn in module.functions.values():
            verify_function(fn, module)


class TestModule:
    def test_merge_detects_duplicates(self):
        a = lower("int main(void) { return 0; }")
        b = lower("int main(void) { return 1; }")
        with pytest.raises(ValueError):
            a.merge(b)

    def test_dump_renders(self):
        module = lower("int main(void) { return 0; }")
        text = module.dump()
        assert "func main:" in text and "entry:" in text
