"""Tests for the experiment harness (Eq. 7/8 math, coverage, figures)."""

import pytest

from repro.harness.coverage import CoverageResult, evaluate_coverage
from repro.harness.experiments import (
    _geomean, abl_compression, abl_keybuffer, abl_shadow_map,
    fig2_compression, fig4_overhead, fig5_speedup, hwcost_table,
)
from repro.harness.runner import (
    detected, perf_overhead_pct, run_workload, speedup,
)
from repro.sim.machine import RunResult
from repro.workloads import WORKLOADS
from repro.workloads.base import Workload, register
from repro.workloads.juliet import generate_corpus


class TestMath:
    def test_eq7_perf_overhead(self):
        assert perf_overhead_pct(200, 100) == pytest.approx(100.0)
        assert perf_overhead_pct(100, 100) == pytest.approx(0.0)
        assert perf_overhead_pct(541, 100) == pytest.approx(441.0)

    def test_eq7_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            perf_overhead_pct(100, 0)

    def test_eq8_speedup(self):
        assert speedup(374, 100) == pytest.approx(3.74)

    def test_eq8_rejects_zero(self):
        with pytest.raises(ValueError):
            speedup(100, 0)


class TestDetectionClassification:
    def _result(self, status, detail=""):
        return RunResult(status=status, detail=detail)

    def test_pointer_schemes(self):
        for scheme in ("sbcets", "hwst128", "hwst128_tchk", "bogo",
                       "wdl_narrow", "wdl_wide"):
            assert detected(scheme, self._result("spatial_violation"))
            assert detected(scheme, self._result("temporal_violation"))
            assert not detected(scheme, self._result("memory_fault"))
            assert not detected(scheme, self._result("exit"))

    def test_asan_counts_segv_reports(self):
        assert detected("asan", self._result("abort", "asan-report"))
        assert detected("asan", self._result("memory_fault"))
        assert not detected("asan", self._result("abort", "other"))
        assert not detected("asan", self._result("exit"))

    def test_gcc_only_counts_canary(self):
        assert detected("gcc", self._result(
            "abort", "stack-smashing-detected"))
        assert not detected("gcc", self._result("memory_fault"))
        assert not detected("gcc", self._result("spatial_violation"))

    def test_baseline_never_detects(self):
        assert not detected("baseline", self._result("memory_fault"))
        assert not detected("baseline", self._result("abort"))


class TestCoverage:
    def test_tiny_corpus_evaluation(self):
        cases = generate_corpus(fraction=1.0, max_per_subtype=1,
                                cwes=[415, 476])
        results = evaluate_coverage(["hwst128_tchk", "gcc"],
                                    cases=cases)
        hwst = results["hwst128_tchk"]
        assert hwst.total == len(cases)
        assert hwst.coverage_pct == 100.0   # both CWEs fully detectable
        assert results["gcc"].coverage_pct == 0.0

    def test_per_cwe_breakdown(self):
        cases = generate_corpus(fraction=1.0, max_per_subtype=1,
                                cwes=[476])
        results = evaluate_coverage(["sbcets"], cases=cases)
        assert results["sbcets"].cwe_coverage_pct(476) == 100.0

    def test_good_variant_checking(self):
        cases = generate_corpus(fraction=1.0, max_per_subtype=1,
                                cwes=[415])
        results = evaluate_coverage(["hwst128_tchk"], cases=cases,
                                    check_good=True)
        assert results["hwst128_tchk"].failures == []

    def test_coverage_result_empty(self):
        result = CoverageResult(scheme="x")
        assert result.coverage_pct == 0.0
        assert result.cwe_coverage_pct(121) == 0.0


class TestExperiments:
    def test_fig2_small(self):
        data = fig2_compression(scale="small",
                                workloads=["treeadd", "sha"])
        assert data["paper_platform"] == {"base": 35, "range": 29,
                                          "lock": 20, "key": 44}
        assert data["census"]["max_object_bytes"] > 0
        assert data["census"]["lock_locations_used"] > 0

    def test_fig4_small(self):
        data = fig4_overhead(scale="small", workloads=["treeadd"])
        row = data["rows"][0]
        assert row["sbcets"] > row["hwst128"] > 0
        assert data["geomean"]["sbcets"] > 0

    def test_fig5_small(self):
        data = fig5_speedup(scale="small", workloads=["hmmer"])
        row = data["rows"][0]
        assert row["hwst128_tchk"] > 1.0

    def test_hwcost(self):
        data = hwcost_table()
        assert data["added_luts"] == pytest.approx(1536, rel=0.05)
        assert data["added_ffs"] == pytest.approx(112, rel=0.10)

    def test_abl_keybuffer_small(self):
        data = abl_keybuffer(sizes=(0, 8), workloads=("hmmer",),
                             scale="small")
        rows = {row["entries"]: row for row in data["rows"]}
        assert rows[8]["hmmer"]["cycles"] < rows[0]["hmmer"]["cycles"]

    def test_abl_compression_small(self):
        data = abl_compression(workloads=("tsp",), scale="small")
        row = data["rows"][0]
        assert row["uncompressed_shadow_bytes"] > \
            row["compressed_shadow_bytes"]

    def test_abl_shadow_small(self):
        data = abl_shadow_map(workloads=("tsp",), scale="small")
        row = data["rows"][0]
        assert row["trie_oh"] > row["linear_oh"]


class TestSelectionValidation:
    def test_geomean_of_empty_selection_raises(self):
        """Used to return 0.0, turning an empty sweep into -100%."""
        with pytest.raises(ValueError, match="empty selection"):
            _geomean([])

    def test_empty_workload_list_rejected(self):
        with pytest.raises(ValueError, match="empty workload"):
            fig4_overhead(scale="small", workloads=[])

    def test_unknown_workload_name_rejected(self):
        with pytest.raises(ValueError) as err:
            fig5_speedup(scale="small", workloads=["treadd"])  # typo
        assert "treadd" in str(err.value)
        assert "known:" in str(err.value)


class TestAblationFailureRouting:
    """abl_compression/abl_shadow_map used to read cycles off runs
    without ever checking RunResult.ok; a crashed cell now lands in
    ``failures`` and never feeds a row."""

    BROKEN = "int main( {"

    def _with_broken_workload(self, fn):
        register(Workload(name="abl_crash", group="test",
                          source_template=self.BROKEN))
        try:
            return fn()
        finally:
            WORKLOADS.pop("abl_crash")

    def test_abl_compression_reports_failed_cells(self):
        data = self._with_broken_workload(lambda: abl_compression(
            workloads=("tsp", "abl_crash"), scale="small"))
        assert [row["workload"] for row in data["rows"]] == ["tsp"]
        assert any("abl_crash" in line for line in data["failures"])

    def test_abl_shadow_reports_failed_cells(self):
        data = self._with_broken_workload(lambda: abl_shadow_map(
            workloads=("tsp", "abl_crash"), scale="small"))
        assert [row["workload"] for row in data["rows"]] == ["tsp"]
        assert any("abl_crash" in line for line in data["failures"])

    def test_abl_keybuffer_reports_failed_cells(self):
        data = self._with_broken_workload(lambda: abl_keybuffer(
            sizes=(0, 8), workloads=("hmmer", "abl_crash"),
            scale="small"))
        assert any("abl_crash" in line for line in data["failures"])
        rows = {row["entries"]: row for row in data["rows"]}
        assert "hmmer" in rows[8] and "abl_crash" not in rows[8]


class TestWorkloadRunner:
    def test_run_workload_by_name(self):
        result = run_workload("treeadd", "baseline", scale="small",
                              timing=False)
        assert result.ok

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            run_workload("notathing", "baseline")
