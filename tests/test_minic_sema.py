"""Tests for the semantic analyzer."""

import pytest

from repro.errors import SemanticError
from repro.minic import analyze, parse
from repro.minic.types import IntType, PointerType


def check(source):
    return analyze(parse(source))


def check_fails(source, fragment=""):
    with pytest.raises(SemanticError) as err:
        check(source)
    if fragment:
        assert fragment in str(err.value)


class TestScopes:
    def test_undeclared_identifier(self):
        check_fails("int main(void) { return x; }", "undeclared")

    def test_local_shadowing_gets_unique_names(self):
        result = check("""
        int main(void) {
            int v = 1;
            if (v) { int v = 2; v += 1; }
            return v;
        }""")
        locals_ = list(result.functions["main"].locals)
        assert len([n for n in locals_ if n.startswith("v")]) == 2

    def test_block_scope_ends(self):
        check_fails("""
        int main(void) {
            if (1) { int inner = 1; }
            return inner;
        }""")

    def test_redeclaration_in_same_scope(self):
        check_fails("int main(void) { int a; int a; return 0; }",
                    "redeclaration")

    def test_param_visible(self):
        check("int f(int a) { return a + 1; }")

    def test_global_visible_in_function(self):
        check("int g; int main(void) { return g; }")

    def test_global_redefined(self):
        check_fails("int g; long g;", "redefined")

    def test_function_redefined(self):
        check_fails("int f(void) { return 0; } int f(void) { return 1; }",
                    "redefined")

    def test_for_init_scope(self):
        check("""
        int main(void) {
            int total = 0;
            for (int i = 0; i < 3; i++) { total += i; }
            for (int i = 9; i > 0; i--) { total += i; }
            return total;
        }""")


class TestTypes:
    def test_void_variable_rejected(self):
        check_fails("int main(void) { void v; return 0; }")

    def test_deref_non_pointer(self):
        check_fails("int main(void) { int a; return *a; }")

    def test_deref_void_pointer(self):
        check_fails("int main(void) { void *p; return *p; }")

    def test_index_non_pointer(self):
        check_fails("int main(void) { int a; return a[0]; }")

    def test_member_of_non_struct(self):
        check_fails("int main(void) { int a; return a.x; }")

    def test_arrow_on_non_pointer(self):
        check_fails("""
        struct S { int x; };
        int main(void) { struct S s; return s->x; }""")

    def test_unknown_member(self):
        check_fails("""
        struct S { int x; };
        int main(void) { struct S s; return s.y; }""", "no member")

    def test_assign_to_rvalue(self):
        check_fails("int main(void) { 1 = 2; return 0; }", "lvalue")

    def test_assign_to_array(self):
        check_fails("""
        int main(void) { int a[4]; int b[4]; a = b; return 0; }""")

    def test_address_of_rvalue(self):
        check_fails("int main(void) { int *p = &1; return 0; }")

    def test_pointer_arith_annotations(self):
        result = check("""
        int main(void) { long *p = 0; long *q = p + 3; return 0; }""")
        assert result is not None

    def test_pointer_minus_pointer_is_long(self):
        check("""
        long main2(long *a, long *b) { return a - b; }
        int main(void) { return 0; }""")

    def test_mod_on_pointer_rejected(self):
        check_fails("int main(void) { int *p = 0; p = p * 2; return 0; }")

    def test_struct_assignment_same_type(self):
        check("""
        struct S { int x; long y; };
        int main(void) {
            struct S a;
            struct S b;
            a.x = 1;
            b = a;
            return b.x;
        }""")

    def test_break_outside_loop(self):
        check_fails("int main(void) { break; return 0; }")

    def test_continue_outside_loop(self):
        check_fails("int main(void) { continue; return 0; }")


class TestCalls:
    def test_undeclared_function(self):
        check_fails("int main(void) { return nothere(); }", "undeclared")

    def test_wrong_arity(self):
        check_fails("""
        int f(int a) { return a; }
        int main(void) { return f(1, 2); }""", "expects")

    def test_builtin_signatures_available(self):
        check("""
        int main(void) {
            void *p = malloc(8);
            memset(p, 0, 8);
            free(p);
            print_int(strlen("ab"));
            return 0;
        }""")

    def test_void_return_with_value(self):
        check_fails("void f(void) { return 5; }")

    def test_nonvoid_return_without_value(self):
        check_fails("int f(void) { return; } int main(void) { return 0; }")

    def test_forward_reference_within_unit(self):
        check("""
        int helper(int x);
        int main(void) { return helper(1); }
        int helper(int x) { return x + 1; }""")


class TestAnnotations:
    def test_expression_types_annotated(self):
        unit = parse("int main(void) { long v = 1; return (int)v; }")
        analyze(unit)
        decl = unit.functions[0].body.stmts[0]
        assert decl.init.ctype is not None

    def test_string_literal_gets_symbol(self):
        unit = parse('int main(void) { print_str("x"); return 0; }')
        result = analyze(unit)
        assert len(result.strings) == 1
        symbol, data = next(iter(result.strings.items()))
        assert data == b"x\x00"

    def test_ident_binding_recorded(self):
        unit = parse("int g; int main(void) { return g; }")
        analyze(unit)
        ret = unit.functions[0].body.stmts[0]
        assert ret.value.binding == "global"

    def test_param_binding(self):
        unit = parse("int f(int a) { return a; }")
        analyze(unit)
        ret = unit.functions[0].body.stmts[0]
        assert ret.value.binding == "param"

    def test_lvalue_flags(self):
        unit = parse("int main(void) { int a[4]; a[0] = 1; return 0; }")
        analyze(unit)
        assign = unit.functions[0].body.stmts[1].expr
        assert assign.target.is_lvalue
