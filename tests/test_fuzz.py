"""Tests for the repro.fuzz subsystem: generator, oracles, campaign,
reducer, and the determinism contract of the ``repro.fuzz/v1`` report.
"""

import json
import random

import pytest

from repro.fuzz import (
    BUG_KINDS, EXPECTED_CLASS, FuzzCoverage, generate_program,
    plan_programs, probe_program, classify_program, reduce_source,
    run_fuzz,
)
from repro.fuzz.campaign import FuzzCell, _crash_signature, _signatures_of
from repro.harness.parallel import SweepExecutor
from repro.sim.machine import STATUS_EXIT, STATUS_SPATIAL, STATUS_TEMPORAL


SCHEMES = ("gcc", "sbcets", "hwst128")


class TestGenerator:
    def test_deterministic(self):
        a = generate_program(5, 3, "safe")
        b = generate_program(5, 3, "safe")
        assert a.source == b.source and a.features == b.features

    def test_seed_changes_program(self):
        a = generate_program(5, 3, "safe")
        b = generate_program(6, 3, "safe")
        assert a.source != b.source

    def test_plan_is_deterministic_and_windowed(self):
        full = plan_programs(9, 20)
        tail = plan_programs(9, 12, start=8)
        assert full[8:] == tail
        assert [index for index, _ in full] == list(range(20))

    def test_plan_mixes_safe_and_planted(self):
        kinds = {kind for _, kind in plan_programs(0, 40)}
        assert "safe" in kinds
        assert kinds & set(BUG_KINDS)

    def test_expected_class_covers_bug_kinds(self):
        assert set(BUG_KINDS) == set(EXPECTED_CLASS)
        assert set(EXPECTED_CLASS.values()) == {"spatial", "temporal"}

    def test_global_rng_untouched(self):
        random.seed(1234)
        before = random.getstate()
        generate_program(7, 0, "safe")
        generate_program(7, 1, "oob_write")
        plan_programs(7, 10)
        assert random.getstate() == before


class TestOracles:
    def test_safe_program_agrees(self):
        program = generate_program(42, 0, "safe")
        probe = probe_program(program.source, SCHEMES)
        verdicts, divergences = classify_program(
            "safe", "", probe, SCHEMES)
        assert not divergences
        assert verdicts["scheme"] == "agree"
        assert probe.profiles["hwst128"].status == STATUS_EXIT

    @pytest.mark.parametrize("kind", ["oob_write", "uaf", "double_free"])
    def test_planted_bug_detected(self, kind):
        program = generate_program(42, 1, kind)
        probe = probe_program(program.source, SCHEMES)
        verdicts, divergences = classify_program(
            kind, program.expect, probe, SCHEMES)
        assert not [d for d in divergences if d.oracle == "scheme"]
        wanted = STATUS_SPATIAL if program.expect == "spatial" \
            else STATUS_TEMPORAL
        assert probe.profiles["hwst128"].status == wanted
        assert probe.profiles["sbcets"].status == wanted

    def test_misclassified_safe_program_diverges(self):
        # A planted bug classified as "safe" must trip the scheme oracle
        # (this is the seeded-divergence path the reducer test uses).
        program = generate_program(42, 3, "oob_write")
        probe = probe_program(program.source, SCHEMES)
        _, divergences = classify_program("safe", "", probe, SCHEMES)
        assert {d.kind for d in divergences} >= {
            "safe_trap.sbcets", "safe_trap.hwst128"}

    def test_crash_signature_parsing(self):
        trace = ("Traceback (most recent call last):\n"
                 "  ...\n"
                 "repro.errors.SemanticError: boom\n")
        assert _crash_signature(trace) == ("harness", "crash.SemanticError")


class TestCoverage:
    def test_weights_prefer_rare_productions(self):
        coverage = FuzzCoverage()
        coverage.observe(["stmt.if", "stmt.if", "stmt.for"], ["malloc"])
        weights = coverage.weights()
        assert weights["stmt.while"] > weights["stmt.if"]
        assert weights["stmt.for"] > weights["stmt.if"]

    def test_to_dict_sorted(self):
        coverage = FuzzCoverage()
        coverage.observe(["stmt.print", "stmt.if"], ["memset", "malloc"])
        snapshot = coverage.to_dict()
        assert list(snapshot["productions"]) == sorted(
            snapshot["productions"])
        assert list(snapshot["runtime_functions"]) == sorted(
            snapshot["runtime_functions"])


class TestCampaign:
    def test_small_campaign_is_clean(self):
        report = run_fuzz(8, seed=42, jobs=1)
        assert report.clean
        board = report.scoreboard()
        assert board["programs"] == 8
        assert board["oracles"]["scheme"].get("agree") == 8

    def test_report_byte_identical_across_jobs(self):
        with SweepExecutor(jobs=2) as executor:
            parallel = run_fuzz(8, seed=42, executor=executor)
        serial = run_fuzz(8, seed=42, jobs=1)
        assert parallel.to_json() == serial.to_json()

    def test_report_schema_and_shape(self):
        report = run_fuzz(4, seed=1, jobs=1)
        payload = json.loads(report.to_json())
        assert payload["schema"] == "repro.fuzz/v1"
        assert payload["seed"] == 1 and payload["n"] == 4
        assert len(payload["programs"]) == 4
        indices = [p["index"] for p in payload["programs"]]
        assert indices == sorted(indices)

    def test_campaign_global_rng_untouched(self):
        random.seed(99)
        before = random.getstate()
        run_fuzz(4, seed=3, jobs=1)
        assert random.getstate() == before

    def test_fuzz_cell_execute_roundtrip(self):
        program = generate_program(11, 0, "safe")
        cell = FuzzCell(index=0, name=program.name, kind="safe",
                        expect="", source=program.source)
        result = cell.execute()
        assert result.ok and result.status == "agree"
        assert result.extra["verdicts"]["scheme"] == "agree"


class TestFuzzerFoundRegressions:
    """Regressions for divergences the fuzzer actually found.

    Campaign ``--n 500 --seed 100`` (2026-08-06) surfaced three
    divergent programs with one root cause: the generator indexed a
    buffer with a loop variable whose bound exceeded the buffer's
    element count, so nominally safe programs trapped spatially and
    planted temporal bugs were pre-empted by a spatial trap.  The
    ddmin-reduced repros are pinned here verbatim.
    """

    # fuzz-100-108 reduced: countdown var t4 reaches 6 on a 6-long buf.
    REDUCED_COUNTDOWN = (
        "int main(void) {\n"
        "    long acc = 5;\n"
        "    long *h1 = (long *)malloc(6 * sizeof(long));\n"
        "    long t4 = 6;\n"
        "    h1[t4] *= acc | acc;\n"
        "}\n")
    # fuzz-100-242 reduced: for-loop bound 7 writing a 6-long buffer.
    REDUCED_FOR = (
        "int main(void) {\n"
        "    long *h0 = (long *)malloc(6 * sizeof(long));\n"
        "    long *h1 = (long *)malloc(8 * sizeof(long));\n"
        "    for (long i2 = 0; i2 < 7; i2++) {\n"
        "        h0[i2] = i2 >> 4 ^ h1[4] >> 4;\n"
        "    }\n"
        "}\n")

    @pytest.mark.parametrize("source", [REDUCED_COUNTDOWN, REDUCED_FOR],
                             ids=["countdown", "for"])
    def test_reduced_repros_do_trap(self, source):
        # The repros are genuinely unsafe — the checked schemes must
        # trap them spatially (this is what derailed the oracle).
        probe = probe_program(source, SCHEMES)
        assert probe.profiles["hwst128"].status == STATUS_SPATIAL
        assert probe.profiles["sbcets"].status == STATUS_SPATIAL

    def test_generator_never_reproduces_the_bug(self):
        # The exact (seed, index) triples that diverged must now be
        # oracle-clean: loop variables may only index a buffer when
        # their whole range fits it.
        plan = dict(plan_programs(100, 250))
        for index in (45, 108, 242):
            program = generate_program(100, index, plan[index])
            probe = probe_program(program.source, SCHEMES)
            _, divergences = classify_program(
                program.kind, program.expect, probe, SCHEMES)
            assert not divergences, (index, divergences)

    def test_loop_bounds_respect_buffer_counts(self):
        # Static check over a corpus slice: every `buf[var]` whose
        # index is a loop variable must sit under a bound that fits.
        import re

        for index, kind in plan_programs(17, 40):
            program = generate_program(17, index, kind)
            counts = {name: int(count) for name, count in re.findall(
                r"long (\w+)\[(\d+)\]", program.source)}
            counts.update({
                name: int(count) for name, count in re.findall(
                    r"long \*(\w+) = \(long \*\)malloc\((\d+) \* ",
                    program.source)})
            for match in re.finditer(r"(\w+)\[([a-z]\w*)\]",
                                     program.source):
                buf, var = match.groups()
                if buf not in counts or not var.startswith(("i", "t")):
                    continue
                bound = re.search(
                    rf"{var} = 0; {var} < (\d+)|long {var} = (\d+);",
                    program.source)
                if bound:
                    limit = int(bound.group(1) or bound.group(2))
                    maximum = limit - 1 if bound.group(1) else limit
                    assert maximum < counts[buf], \
                        (program.name, buf, var, maximum, counts[buf])


class TestReducer:
    def test_reduces_seeded_divergence_to_minimal_repro(self):
        # Mislabel a planted OOB write as "safe": the scheme oracle
        # reports safe_trap divergences, which the reducer must preserve
        # while shrinking the program to a handful of statements.
        program = generate_program(42, 3, "oob_write")
        target = _signatures_of(program.source, "safe", "",
                                SCHEMES, 2_000_000)
        assert target

        def predicate(candidate):
            return target <= _signatures_of(candidate, "safe", "",
                                            SCHEMES, 2_000_000)

        result = reduce_source(program.source, predicate, max_checks=200)
        assert result.reduced
        assert result.statements <= 10
        assert predicate(result.source)

    def test_budget_respected(self):
        program = generate_program(42, 3, "oob_write")
        target = _signatures_of(program.source, "safe", "",
                                SCHEMES, 2_000_000)

        def predicate(candidate):
            return target <= _signatures_of(candidate, "safe", "",
                                            SCHEMES, 2_000_000)

        result = reduce_source(program.source, predicate, max_checks=5)
        assert result.checks <= 5

    def test_vacuous_predicate_keeps_source(self):
        source = "long main(void) { return 0; }"
        result = reduce_source(source, lambda s: False)
        assert result.source == source and not result.reduced


class TestInterrupt:
    def test_stop_truncates_at_a_round_boundary(self):
        polls = []

        def stop():
            polls.append(True)
            return len(polls) > 1    # first round runs, then stop

        report = run_fuzz(75, seed=42, jobs=1, stop=stop)
        assert report.interrupted
        assert len(report.programs) == 25     # one ROUND_SIZE
        doc = report.to_dict()
        assert doc["interrupted"] is True
        assert doc["completed"] == 25

    def test_immediate_stop_yields_empty_valid_report(self):
        report = run_fuzz(50, seed=42, jobs=1, stop=lambda: True)
        assert report.interrupted
        assert report.programs == []
        doc = report.to_dict()
        assert doc["completed"] == 0

    def test_uninterrupted_report_carries_no_interrupt_keys(self):
        report = run_fuzz(8, seed=42, jobs=1, stop=lambda: False)
        assert not report.interrupted
        assert "interrupted" not in report.to_dict()
        assert "completed" not in report.to_dict()
