"""Tests for the benchmark workloads: registry + execution correctness.

Every kernel must be self-checking (exit 0) under the unprotected
baseline AND under full HWST128 protection (no false positives), with
identical output — the precondition for Eq. 7 to be meaningful.
"""

import pytest

from repro.harness.runner import run_workload
from repro.workloads import SPEC_FIG5, WORKLOADS, by_group

ALL = sorted(WORKLOADS)


class TestRegistry:
    def test_twentythree_workloads(self):
        assert len(WORKLOADS) == 23

    def test_groups(self):
        assert len(by_group("mibench")) == 9
        assert len(by_group("olden")) == 7
        assert len(by_group("spec")) == 7

    def test_fig5_subset_matches_paper(self):
        """Fig. 5 uses milc, lbm, sphinx3, sjeng, gobmk, bzip2, hmmer."""
        assert set(SPEC_FIG5) == {"milc", "lbm", "sphinx3", "sjeng",
                                  "gobmk", "bzip2", "hmmer"}
        for name in SPEC_FIG5:
            assert WORKLOADS[name].group == "spec"

    def test_paper_workload_names_present(self):
        for name in ("CRC32", "dijkstra", "sha", "FFT", "adpcm",
                     "susan", "tsp", "em3d", "health", "mst",
                     "perimeter", "bisort", "treeadd"):
            assert name in WORKLOADS, name

    def test_sources_render_with_params(self):
        for workload in WORKLOADS.values():
            source = workload.source("small")
            assert "@"not in source.replace("@", "", 0) or \
                "@" not in source, f"{workload.name}: unexpanded params"
            assert "int main" in source

    def test_descriptions(self):
        for workload in WORKLOADS.values():
            assert workload.description


@pytest.mark.parametrize("name", ALL)
def test_workload_baseline_self_check(name):
    result = run_workload(name, "baseline", scale="small", timing=False,
                          max_instructions=30_000_000)
    assert result.status == "exit", (name, result.status, result.detail)
    assert result.exit_code == 0, (name, result.exit_code)


@pytest.mark.parametrize("name", ALL)
def test_workload_clean_under_hwst(name):
    """Full protection must not fire on correct kernels."""
    base = run_workload(name, "baseline", scale="small", timing=False,
                        max_instructions=30_000_000)
    hwst = run_workload(name, "hwst128_tchk", scale="small",
                        timing=False, max_instructions=60_000_000)
    assert hwst.status == "exit", (name, hwst.status, hwst.detail)
    assert hwst.exit_code == 0, name
    assert hwst.output == base.output, name
    # instrumentation really ran:
    assert hwst.instret > base.instret, name
