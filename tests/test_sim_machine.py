"""Tests for the functional ISS: base ISA semantics + HWST128 extension."""

import pytest

from repro.core.config import HwstConfig
from repro.isa.instructions import Instr, li_sequence
from repro.isa import csr as csrdef
from repro.pipeline.timing import InOrderPipeline
from repro.sim.machine import (
    Machine, RunResult,
    STATUS_EXIT, STATUS_FAULT, STATUS_ILLEGAL, STATUS_LIMIT,
    STATUS_SPATIAL, STATUS_TEMPORAL,
)
from repro.sim.memory import DEFAULT_LAYOUT
from repro.sim.program import Program

HEAP = DEFAULT_LAYOUT.heap_base
LOCK0 = HwstConfig().lock_base  # first lock_location


def make_program(instrs, **meta) -> Program:
    return Program(instrs=list(instrs), entry=DEFAULT_LAYOUT.text_base,
                   meta=meta)


def run(instrs, timing=False, max_instructions=100_000) -> RunResult:
    machine = Machine(timing=InOrderPipeline() if timing else None)
    return machine.run(make_program(instrs),
                       max_instructions=max_instructions)


def exit_with(reg_setup):
    """Template: run `reg_setup`, then exit with code in a0."""
    return list(reg_setup) + [
        Instr("addi", rd=17, rs1=0, imm=93),   # a7 = SYS_EXIT
        Instr("ecall"),
    ]


class TestBaseIsa:
    def test_addi_and_exit_code(self):
        result = run(exit_with([Instr("addi", rd=10, rs1=0, imm=42)]))
        assert result.status == STATUS_EXIT
        assert result.exit_code == 42

    def test_arithmetic(self):
        result = run(exit_with([
            Instr("addi", rd=5, rs1=0, imm=100),
            Instr("addi", rd=6, rs1=0, imm=-30),
            Instr("add", rd=10, rs1=5, rs2=6),
        ]))
        assert result.exit_code == 70

    def test_sub_negative_result(self):
        result = run(exit_with([
            Instr("addi", rd=5, rs1=0, imm=10),
            Instr("addi", rd=6, rs1=0, imm=30),
            Instr("sub", rd=10, rs1=5, rs2=6),
        ]))
        assert result.exit_code == -20

    def test_mul_div_rem(self):
        result = run(exit_with([
            Instr("addi", rd=5, rs1=0, imm=37),
            Instr("addi", rd=6, rs1=0, imm=5),
            Instr("mul", rd=7, rs1=5, rs2=6),     # 185
            Instr("div", rd=8, rs1=7, rs2=6),     # 37
            Instr("rem", rd=9, rs1=7, rs2=5),     # 0
            Instr("add", rd=10, rs1=8, rs2=9),
        ]))
        assert result.exit_code == 37

    def test_div_by_zero_riscv_semantics(self):
        result = run(exit_with([
            Instr("addi", rd=5, rs1=0, imm=7),
            Instr("div", rd=10, rs1=5, rs2=0),
        ]))
        assert result.exit_code == -1

    def test_rem_by_zero_returns_dividend(self):
        result = run(exit_with([
            Instr("addi", rd=5, rs1=0, imm=7),
            Instr("rem", rd=10, rs1=5, rs2=0),
        ]))
        assert result.exit_code == 7

    def test_slt_sltu(self):
        result = run(exit_with([
            Instr("addi", rd=5, rs1=0, imm=-1),
            Instr("addi", rd=6, rs1=0, imm=1),
            Instr("slt", rd=7, rs1=5, rs2=6),     # -1 < 1 -> 1
            Instr("sltu", rd=8, rs1=5, rs2=6),    # huge > 1 -> 0
            Instr("slli", rd=7, rs1=7, imm=1),
            Instr("add", rd=10, rs1=7, rs2=8),
        ]))
        assert result.exit_code == 2

    def test_word_ops_sign_extend(self):
        result = run(exit_with([
            # 0x7FFFFFFF + 1 wraps to -2^31 under addw.
            Instr("lui", rd=5, imm=0x80000 >> 1),    # 0x4000_0000
            Instr("addiw", rd=5, rs1=5, imm=-1),     # 0x3FFF_FFFF
            Instr("addw", rd=5, rs1=5, rs2=5),       # 0x7FFF_FFFE
            Instr("addiw", rd=5, rs1=5, imm=2),      # wraps negative
            Instr("srai", rd=10, rs1=5, imm=31),     # -1
        ]))
        assert result.exit_code == -1

    def test_branch_loop_sums(self):
        # sum 1..10 via bne loop
        result = run(exit_with([
            Instr("addi", rd=5, rs1=0, imm=0),    # i = 0
            Instr("addi", rd=6, rs1=0, imm=0),    # acc = 0
            Instr("addi", rd=7, rs1=0, imm=10),   # limit
            # loop:
            Instr("addi", rd=5, rs1=5, imm=1),
            Instr("add", rd=6, rs1=6, rs2=5),
            Instr("bne", rs1=5, rs2=7, imm=-8),
            Instr("addi", rd=10, rs1=6, imm=0),
        ]))
        assert result.exit_code == 55

    def test_jal_jalr_call_return(self):
        text = DEFAULT_LAYOUT.text_base
        result = run(exit_with([
            Instr("jal", rd=1, imm=12),            # call +12
            Instr("addi", rd=10, rs1=10, imm=1),   # after return: a0 += 1
            Instr("jal", rd=0, imm=12),            # jump to exit sequence
            Instr("addi", rd=10, rs1=0, imm=41),   # callee: a0 = 41
            Instr("jalr", rd=0, rs1=1, imm=0),     # return
        ]))
        assert result.exit_code == 42

    def test_memory_roundtrip(self):
        setup = li_sequence(5, HEAP) + [
            Instr("addi", rd=6, rs1=0, imm=1234),
            Instr("sd", rs1=5, rs2=6, imm=16),
            Instr("ld", rd=10, rs1=5, imm=16),
        ]
        assert run(exit_with(setup)).exit_code == 1234

    def test_byte_halfword_sign_extension(self):
        setup = li_sequence(5, HEAP) + [
            Instr("addi", rd=6, rs1=0, imm=-1),
            Instr("sb", rs1=5, rs2=6, imm=0),
            Instr("lb", rd=7, rs1=5, imm=0),     # -1
            Instr("lbu", rd=8, rs1=5, imm=0),    # 255
            Instr("add", rd=10, rs1=7, rs2=8),   # 254
        ]
        assert run(exit_with(setup)).exit_code == 254

    def test_write_syscall_output(self):
        # store "hi\n" at heap and write(1, heap, 3)
        setup = li_sequence(5, HEAP) + [
            Instr("addi", rd=6, rs1=0, imm=ord("h")),
            Instr("sb", rs1=5, rs2=6, imm=0),
            Instr("addi", rd=6, rs1=0, imm=ord("i")),
            Instr("sb", rs1=5, rs2=6, imm=1),
            Instr("addi", rd=6, rs1=0, imm=10),
            Instr("sb", rs1=5, rs2=6, imm=2),
            Instr("addi", rd=10, rs1=0, imm=1),
            Instr("addi", rd=11, rs1=5, imm=0),
            Instr("addi", rd=12, rs1=0, imm=3),
            Instr("addi", rd=17, rs1=0, imm=64),
            Instr("ecall"),
            Instr("addi", rd=10, rs1=0, imm=0),
        ]
        result = run(exit_with(setup))
        assert result.output == b"hi\n"
        assert result.exit_code == 0

    def test_null_deref_faults(self):
        result = run([Instr("ld", rd=10, rs1=0, imm=0)])
        assert result.status == STATUS_FAULT

    def test_pc_off_text_faults(self):
        result = run([Instr("jal", rd=0, imm=-4096)])
        assert result.status == STATUS_FAULT

    def test_instruction_limit(self):
        result = run([Instr("jal", rd=0, imm=0)], max_instructions=100)
        assert result.status == STATUS_LIMIT

    def test_x0_is_hardwired_zero(self):
        result = run(exit_with([
            Instr("addi", rd=0, rs1=0, imm=55),
            Instr("addi", rd=10, rs1=0, imm=0),
        ]))
        assert result.exit_code == 0

    def test_csr_cycle_readable(self):
        result = run(exit_with([
            Instr("addi", rd=5, rs1=0, imm=1),
            Instr("addi", rd=5, rs1=5, imm=1),
            Instr("csrrs", rd=10, rs1=0, imm=csrdef.CYCLE),
        ]))
        assert result.status == STATUS_EXIT
        assert result.exit_code > 0


def bind_heap_object(size=64, key=7):
    """Instruction prelude: t0 = HEAP pointer bound to [HEAP, HEAP+size)
    with temporal metadata (key stored at LOCK0)."""
    seq = []
    seq += li_sequence(5, HEAP)                        # t0 = ptr
    seq += li_sequence(6, HEAP + size)                 # t1 = bound
    seq += [Instr("bndrs", rd=5, rs1=5, rs2=6)]
    seq += li_sequence(7, key)                         # t2 = key
    seq += li_sequence(28, LOCK0)                      # t3 = lock
    seq += [
        Instr("sd", rs1=28, rs2=7, imm=0),             # *lock = key
        Instr("bndrt", rd=5, rs1=7, rs2=28),
    ]
    return seq


class TestHwstExtension:
    def test_checked_load_in_bounds(self):
        seq = bind_heap_object() + [
            Instr("ld.chk", rd=10, rs1=5, imm=0),
        ]
        result = run(exit_with(seq))
        assert result.status == STATUS_EXIT

    def test_checked_load_out_of_bounds(self):
        seq = bind_heap_object(size=64) + [
            Instr("ld.chk", rd=10, rs1=5, imm=64),   # first OOB byte
        ]
        result = run(seq)
        assert result.status == STATUS_SPATIAL

    def test_checked_load_at_last_legal_byte(self):
        seq = bind_heap_object(size=64) + [
            Instr("lbu.chk", rd=10, rs1=5, imm=63),
        ]
        assert run(exit_with(seq)).status == STATUS_EXIT

    def test_checked_load_wide_access_at_edge(self):
        """An 8-byte access at bound-4 must trap even though the first
        byte is in bounds."""
        seq = bind_heap_object(size=64) + [
            Instr("ld.chk", rd=10, rs1=5, imm=60),
        ]
        assert run(seq).status == STATUS_SPATIAL

    def test_checked_store_out_of_bounds(self):
        seq = bind_heap_object(size=16) + [
            Instr("sd.chk", rs1=5, rs2=7, imm=-8),   # below base
        ]
        assert run(seq).status == STATUS_SPATIAL

    def test_checked_access_without_metadata_traps(self):
        seq = li_sequence(5, HEAP) + [
            Instr("ld.chk", rd=10, rs1=5, imm=0),
        ]
        assert run(seq).status == STATUS_SPATIAL

    def test_srf_propagation_through_mv(self):
        """Register moves carry the metadata (in-pipeline propagation)."""
        seq = bind_heap_object() + [
            Instr("addi", rd=6, rs1=5, imm=8),        # t1 = ptr + 8
            Instr("ld.chk", rd=10, rs1=6, imm=0),     # still checked
        ]
        assert run(exit_with(seq)).status == STATUS_EXIT

    def test_srf_propagation_r_type_picks_pointer_operand(self):
        seq = bind_heap_object() + [
            Instr("addi", rd=6, rs1=0, imm=16),
            Instr("add", rd=7, rs1=6, rs2=5),        # idx + ptr
            Instr("ld.chk", rd=10, rs1=7, imm=0),
        ]
        assert run(exit_with(seq)).status == STATUS_EXIT

    def test_plain_load_invalidates_srf(self):
        seq = bind_heap_object() + [
            Instr("ld", rd=5, rs1=5, imm=0),        # t0 now a data value
            Instr("ld.chk", rd=10, rs1=5, imm=0),
        ]
        assert run(seq).status == STATUS_SPATIAL

    def test_tchk_passes_for_live_pointer(self):
        seq = bind_heap_object(key=9) + [
            Instr("tchk", rs1=5),
            Instr("ld.chk", rd=10, rs1=5, imm=0),
        ]
        assert run(exit_with(seq)).status == STATUS_EXIT

    def test_tchk_fails_after_free(self):
        """Freeing erases the key: *lock = 0, then tchk must trap."""
        seq = bind_heap_object(key=9) + [
            Instr("sd", rs1=28, rs2=0, imm=0),       # *lock = 0 (free)
            Instr("tchk", rs1=5),
        ]
        assert run(seq).status == STATUS_TEMPORAL

    def test_tchk_fails_for_reassigned_key(self):
        seq = bind_heap_object(key=9) + li_sequence(29, 1234) + [
            Instr("sd", rs1=28, rs2=29, imm=0),      # new allocation's key
            Instr("tchk", rs1=5),
        ]
        assert run(seq).status == STATUS_TEMPORAL

    def test_keybuffer_serves_repeat_tchk(self):
        seq = bind_heap_object(key=9)
        seq += [Instr("tchk", rs1=5)] * 5
        machine = Machine()
        result = machine.run(make_program(exit_with(seq)))
        assert result.status == STATUS_EXIT
        assert result.stats["kb_hits"] == 4
        assert result.stats["kb_misses"] == 1

    def test_keybuffer_cleared_by_free_catches_stale_key(self):
        """The snoop on lock-table stores keeps the keybuffer coherent:
        a free between two tchks must not be masked by a cached key."""
        seq = bind_heap_object(key=9) + [
            Instr("tchk", rs1=5),                    # fills keybuffer
            Instr("sd", rs1=28, rs2=0, imm=0),       # free
            Instr("tchk", rs1=5),                    # must trap
        ]
        assert run(seq).status == STATUS_TEMPORAL

    def test_tchk_without_temporal_metadata(self):
        seq = li_sequence(5, HEAP) + li_sequence(6, HEAP + 64) + [
            Instr("bndrs", rd=5, rs1=5, rs2=6),
            Instr("tchk", rs1=5),
        ]
        assert run(seq).status == STATUS_TEMPORAL

    def test_shadow_roundtrip_through_memory(self):
        """sbdl/sbdu then lbdls/lbdus restores checked access rights."""
        seq = bind_heap_object(size=64, key=9)
        seq += li_sequence(29, HEAP + 0x100)           # container addr
        seq += [
            Instr("sbdl", rs1=29, rs2=5, imm=0),
            Instr("sbdu", rs1=29, rs2=5, imm=0),
            Instr("sd", rs1=29, rs2=5, imm=0),         # store the pointer
            Instr("ld", rd=6, rs1=29, imm=0),          # reload pointer
            Instr("lbdls", rd=6, rs1=29, imm=0),
            Instr("lbdus", rd=6, rs1=29, imm=0),
            Instr("tchk", rs1=6),
            Instr("ld.chk", rd=10, rs1=6, imm=8),
        ]
        assert run(exit_with(seq)).status == STATUS_EXIT

    def test_decompressing_gpr_loads(self):
        """lbas/lbnd/lkey/lloc recover the uncompressed fields."""
        seq = bind_heap_object(size=64, key=9)
        seq += li_sequence(29, HEAP + 0x100)
        seq += [
            Instr("sbdl", rs1=29, rs2=5, imm=0),
            Instr("sbdu", rs1=29, rs2=5, imm=0),
            Instr("lbas", rd=11, rs1=29, imm=0),     # base
            Instr("lbnd", rd=12, rs1=29, imm=0),     # bound
            Instr("lkey", rd=13, rs1=29, imm=0),     # key
            Instr("lloc", rd=14, rs1=29, imm=0),     # lock
            # a0 = (bound - base) + key  == 64 + 9
            Instr("sub", rd=10, rs1=12, rs2=11),
            Instr("add", rd=10, rs1=10, rs2=13),
        ]
        result = run(exit_with(seq))
        assert result.status == STATUS_EXIT
        assert result.exit_code == 64 + 9

    def test_lloc_recovers_lock_address(self):
        seq = bind_heap_object(size=64, key=9)
        seq += li_sequence(29, HEAP + 0x100)
        seq += [
            Instr("sbdu", rs1=29, rs2=5, imm=0),
            Instr("lloc", rd=10, rs1=29, imm=0),
            Instr("sub", rd=10, rs1=10, rs2=28),   # lock - LOCK0 == 0
        ]
        result = run(exit_with(seq))
        assert result.exit_code == 0

    def test_unknown_instruction_is_illegal(self):
        result = run([Instr("bogus")])
        assert result.status == STATUS_ILLEGAL

    def test_stats_count_hwst_ops(self):
        seq = bind_heap_object() + [
            Instr("tchk", rs1=5),
            Instr("ld.chk", rd=10, rs1=5, imm=0),
        ]
        result = run(exit_with(seq))
        assert result.stats["hwst_ops"] >= 4   # bndrs, bndrt, tchk, ld.chk
        assert result.stats["tchk"] == 1


class TestMpxAndAvxModels:
    def test_bndcl_bndcu_pass_and_fail(self):
        seq = bind_heap_object(size=64) + [
            Instr("bndcl", rs1=5, rs2=5),
            Instr("addi", rd=6, rs1=5, imm=63),
            Instr("bndcu", rs1=5, rs2=6),
        ]
        assert run(exit_with(seq)).status == STATUS_EXIT
        seq_bad = bind_heap_object(size=64) + [
            Instr("addi", rd=6, rs1=5, imm=64),
            Instr("bndcu", rs1=5, rs2=6),
        ]
        assert run(seq_bad).status == STATUS_SPATIAL

    def test_bndldx_bndstx_roundtrip(self):
        seq = bind_heap_object(size=64)
        seq += li_sequence(29, HEAP + 0x200)
        seq += [
            Instr("bndstx", rs1=29, rs2=5, imm=0),
            Instr("bndldx", rd=6, rs1=29, imm=0),
            Instr("addi", rd=7, rs1=5, imm=63),
            Instr("bndcu", rs1=6, rs2=7),
        ]
        assert run(exit_with(seq)).status == STATUS_EXIT

    def test_vld_vst_vchk_wide_metadata(self):
        """WDL wide mode: 256-bit uncompressed metadata + fused check."""
        seq = li_sequence(29, HEAP + 0x300)      # container
        # Write uncompressed metadata directly into the shadow span.
        seq += li_sequence(5, HEAP)              # base
        seq += li_sequence(6, HEAP + 64)         # bound
        seq += li_sequence(7, 9)                 # key
        seq += li_sequence(28, LOCK0)            # lock
        seq += [
            Instr("sd", rs1=28, rs2=7, imm=0),   # *lock = key
        ]
        # Build the 32-byte shadow image via vst256 from a wide SRF
        # loaded by hand: easiest is vld256 after storing fields with
        # plain stores through a shadow pointer.
        shadow_addr = (HEAP + 0x300 << 2) + HwstConfig().shadow_offset
        seq += li_sequence(30, shadow_addr)
        seq += [
            Instr("sd", rs1=30, rs2=5, imm=0),
            Instr("sd", rs1=30, rs2=6, imm=8),
            Instr("sd", rs1=30, rs2=7, imm=16),
            Instr("sd", rs1=30, rs2=28, imm=24),
            Instr("vld256", rd=5, rs1=29, imm=0),
            Instr("vchk", rs1=5, rs2=5),          # addr = base: in bounds
        ]
        assert run(exit_with(seq)).status == STATUS_EXIT

    def test_vchk_detects_temporal(self):
        shadow_addr = (HEAP + 0x300 << 2) + HwstConfig().shadow_offset
        seq = li_sequence(29, HEAP + 0x300)
        seq += li_sequence(5, HEAP)
        seq += li_sequence(6, HEAP + 64)
        seq += li_sequence(7, 9)
        seq += li_sequence(28, LOCK0)
        seq += li_sequence(30, shadow_addr)
        seq += [
            Instr("sd", rs1=30, rs2=5, imm=0),
            Instr("sd", rs1=30, rs2=6, imm=8),
            Instr("sd", rs1=30, rs2=7, imm=16),
            Instr("sd", rs1=30, rs2=28, imm=24),
            Instr("sd", rs1=28, rs2=0, imm=0),    # lock holds 0 != key
            Instr("vld256", rd=5, rs1=29, imm=0),
            Instr("vchk", rs1=5, rs2=5),
        ]
        assert run(seq).status == STATUS_TEMPORAL


class TestTimingIntegration:
    def test_cycles_exceed_instret(self):
        seq = bind_heap_object() + [
            Instr("ld.chk", rd=10, rs1=5, imm=0),
        ]
        result = run(exit_with(seq), timing=True)
        assert result.cycles > result.instret  # misses + redirects exist

    def test_keybuffer_saves_cycles(self):
        """Repeated tchk to the same lock must be cheaper with a
        keybuffer than without (the Fig. 4 HWST128_tchk vs HWST128 gap)."""
        def run_with_kb(entries):
            config = HwstConfig(keybuffer_entries=entries)
            machine = Machine(config=config, timing=InOrderPipeline())
            seq = bind_heap_object(key=3)
            seq += [Instr("tchk", rs1=5)] * 50
            return machine.run(make_program(exit_with(seq))).cycles

        assert run_with_kb(8) < run_with_kb(0)

    def test_taken_branch_costs_more(self):
        body_taken = [
            Instr("addi", rd=5, rs1=0, imm=1),
            Instr("beq", rs1=0, rs2=0, imm=8),   # taken, skips next
            Instr("addi", rd=6, rs1=0, imm=1),
        ]
        body_not = [
            Instr("addi", rd=5, rs1=0, imm=1),
            Instr("bne", rs1=0, rs2=0, imm=8),   # never taken
            Instr("addi", rd=6, rs1=0, imm=1),
        ]
        taken = run(exit_with(body_taken), timing=True)
        untaken = run(exit_with(body_not), timing=True)
        assert taken.cycles > untaken.cycles - 1  # same instret -1
        assert taken.stats["cyc_redirect"] > untaken.stats["cyc_redirect"]

    def test_load_use_stall_counted(self):
        seq = li_sequence(5, HEAP) + [
            Instr("ld", rd=6, rs1=5, imm=0),
            Instr("addi", rd=7, rs1=6, imm=1),   # immediate consumer
        ]
        result = run(exit_with(seq), timing=True)
        assert result.stats["cyc_load_use"] >= 1


class TestTrapMetadata:
    """RunResult.trap_class/trap_pc are populated uniformly for every
    SimTrap subclass, and stay empty on a clean exit."""

    def _run(self, source, scheme, **kwargs):
        from repro.harness.runner import run_program

        return run_program(source, scheme, timing=False, **kwargs)

    def test_clean_exit_has_no_trap(self):
        result = self._run("int main(void) { return 0; }", "baseline")
        assert result.status == "exit"
        assert result.trap_class == ""
        assert result.trap_pc is None

    def test_spatial_violation(self):
        result = self._run(
            """
            int main(void) {
                long *a = (long*)malloc(8);
                a[2] = 1;
                return 0;
            }
            """, "hwst128")
        assert result.status == "spatial_violation"
        assert result.trap_class == "SpatialViolation"
        # The trap carries its own pc: it must match the detail text.
        assert f"pc={result.trap_pc:#x}" in result.detail

    def test_temporal_violation(self):
        result = self._run(
            """
            int main(void) {
                long *p = (long*)malloc(8);
                free(p);
                return (int)(p[0] & 0);
            }
            """, "hwst128_tchk")
        assert result.status == "temporal_violation"
        assert result.trap_class == "TemporalViolation"
        assert result.trap_pc is not None

    def test_memory_fault(self):
        result = self._run(
            """
            int main(void) {
                long *p = 0;
                return (int)(p[0] & 0);
            }
            """, "baseline")
        assert result.status == "memory_fault"
        assert result.trap_class == "MemoryFault"
        # MemoryFault carries no pc attribute: the machine pc at the
        # moment the trap fired is recorded instead.
        assert result.trap_pc is not None

    def test_sim_limit(self):
        result = self._run("int main(void) { while (1) {} return 0; }",
                           "baseline", max_instructions=500)
        assert result.status == "limit"
        assert result.trap_class == "SimLimitExceeded"
        assert result.trap_pc is not None

    def test_abort(self):
        result = self._run(
            "int main(void) { abort(); return 0; }", "baseline")
        assert result.status == "abort"
        assert result.trap_class == "EcallAbort"
