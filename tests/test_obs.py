"""Tests for the unified telemetry layer (repro.obs).

Covers the metric primitives (counter/gauge/histogram, including the
percentile edge cases), registry snapshot/delta/merge semantics, the
trace ring buffer and its Chrome ``trace_event`` export, compile phase
timers, the cycle-attribution profiler, and the integration contract:
metric snapshots must agree with the legacy ``RunResult.stats`` keys.
"""

import json
import time

import pytest

from repro.obs import (
    COMPILE_PHASES, CycleProfiler, MetricsRegistry, NULL_PHASES,
    NULL_TRACER, PhaseTimers, TRACE_CATEGORIES, Tracer,
)
from repro.obs.metrics import (
    Counter, Gauge, Histogram, format_tree, merge_snapshots,
)
from repro.obs.stats import HitMissStats, derived_rates


# ---------------------------------------------------------------------------
# Metric primitives
# ---------------------------------------------------------------------------

class TestCounter:
    def test_inc_and_direct_bump(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        c.value += 2          # the hot-path idiom
        assert c.value == 7
        assert c.snapshot() == 7

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_reset(self):
        c = Counter("x")
        c.inc(5)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(10)
        g.set(3)
        assert g.snapshot() == 3


class TestHistogram:
    def test_empty_percentiles_are_zero(self):
        h = Histogram("h")
        assert h.count == 0
        assert h.percentile(50) == 0.0
        assert h.percentile(99) == 0.0
        assert h.mean == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["p50"] == 0.0

    def test_single_sample_every_percentile(self):
        h = Histogram("h")
        h.observe(42.0)
        for p in (0, 50, 95, 99, 100):
            assert h.percentile(p) == 42.0
        assert h.mean == 42.0

    def test_nearest_rank(self):
        h = Histogram("h")
        for value in range(1, 101):       # 1..100
            h.observe(value)
        assert h.percentile(50) == 50
        assert h.percentile(95) == 95
        assert h.percentile(99) == 99
        assert h.percentile(100) == 100

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)

    def test_sample_bound_keeps_moments(self):
        h = Histogram("h", max_samples=4)
        for value in (1, 2, 3, 4, 100, 200):
            h.observe(value)
        assert h.count == 6
        assert h.max == 200
        assert h.total == 310
        # percentiles approximate over the stored prefix
        assert h.percentile(100) == 4

    def test_merge_from_including_overflow(self):
        a = Histogram("a", max_samples=2)
        for value in (1, 2, 30):
            a.observe(value)
        b = Histogram("b")
        b.merge_from(a)
        assert b.count == 3
        assert b.max == 30
        assert b.total == pytest.approx(a.total)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_scope_prefixes(self):
        reg = MetricsRegistry()
        kb = reg.scope("sim").scope("kb")
        kb.counter("hits").inc(3)
        assert reg.counter("sim.kb.hits").value == 3
        assert reg.names("sim") == ["sim.kb.hits"]

    def test_reset_prefix_zeroes_in_place(self):
        reg = MetricsRegistry()
        hits = reg.counter("sim.kb.hits")
        other = reg.counter("pipeline.cycles.base")
        hits.inc(5)
        other.inc(7)
        reg.reset(prefix="sim")
        assert hits.value == 0          # same object, zeroed
        assert other.value == 7
        assert reg.counter("sim.kb.hits") is hits

    def test_snapshot_and_delta(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc(10)
        before = reg.snapshot()
        c.inc(5)
        assert reg.delta(before)["n"] == 5

    def test_merge_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        b.histogram("h").observe(3.0)
        a.merge(b)
        assert a.counter("c").value == 3
        assert a.gauge("g").value == 9
        assert a.histogram("h").count == 1

    def test_merge_snapshots_adds_scalars(self):
        merged = merge_snapshots({"a": 1, "h": {"count": 2, "sum": 4.0}},
                                 {"a": 2, "h": {"count": 1, "sum": 1.0}})
        assert merged["a"] == 3
        assert merged["h"]["count"] == 3

    def test_merge_snapshots_histogram_moments_exact(self):
        """Regression: the merge must combine min/max/sum, not let the
        last snapshot's values clobber the accumulated ones."""
        a = {"h": {"count": 2, "sum": 10.0, "min": 1.0, "max": 9.0,
                   "mean": 5.0, "p50": 5.0, "p95": 9.0, "p99": 9.0}}
        b = {"h": {"count": 2, "sum": 6.0, "min": 2.0, "max": 4.0,
                   "mean": 3.0, "p50": 3.0, "p95": 4.0, "p99": 4.0}}
        merged = merge_snapshots(a, b)["h"]
        assert merged["count"] == 4
        assert merged["sum"] == 16.0
        assert merged["min"] == 1.0          # not b's 2.0
        assert merged["max"] == 9.0          # not b's 4.0
        assert merged["mean"] == 4.0         # recomputed from moments
        assert merged["p50"] == 4.0          # count-weighted average

    def test_merge_snapshots_order_independent(self):
        """Snapshots arrive in worker-completion order under --jobs N;
        the merged summary must not depend on that order."""
        snaps = [
            {"c": 5, "h": {"count": 1, "sum": 2.0, "min": 2.0,
                           "max": 2.0, "mean": 2.0, "p50": 2.0,
                           "p95": 2.0, "p99": 2.0}},
            {"c": 7, "h": {"count": 3, "sum": 30.0, "min": 5.0,
                           "max": 20.0, "mean": 10.0, "p50": 5.0,
                           "p95": 20.0, "p99": 20.0}},
            {"c": 1, "h": {"count": 2, "sum": 8.0, "min": 1.0,
                           "max": 7.0, "mean": 4.0, "p50": 4.0,
                           "p95": 7.0, "p99": 7.0}},
        ]
        import itertools
        reference = merge_snapshots(*snaps)
        for perm in itertools.permutations(snaps):
            merged = merge_snapshots(*perm)
            assert merged["c"] == reference["c"]
            for key in ("count", "sum", "min", "max"):
                assert merged["h"][key] == reference["h"][key]
            for key in ("mean", "p50", "p95", "p99"):
                assert merged["h"][key] == \
                    pytest.approx(reference["h"][key])

    def test_merge_snapshots_associative(self):
        a = {"h": {"count": 1, "sum": 2.0, "min": 2.0, "max": 2.0,
                   "mean": 2.0, "p50": 2.0}}
        b = {"h": {"count": 3, "sum": 30.0, "min": 5.0, "max": 20.0,
                   "mean": 10.0, "p50": 5.0}}
        c = {"h": {"count": 2, "sum": 8.0, "min": 1.0, "max": 7.0,
                   "mean": 4.0, "p50": 4.0}}
        left = merge_snapshots(merge_snapshots(a, b), c)["h"]
        right = merge_snapshots(a, merge_snapshots(b, c))["h"]
        for key in ("count", "sum", "min", "max"):
            assert left[key] == right[key]
        for key in ("mean", "p50"):
            assert left[key] == pytest.approx(right[key])

    def test_merge_snapshots_empty_histogram_identity(self):
        empty = {"h": {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                       "mean": 0.0, "p50": 0.0}}
        full = {"h": {"count": 2, "sum": 6.0, "min": 2.0, "max": 4.0,
                      "mean": 3.0, "p50": 3.0}}
        assert merge_snapshots(empty, full)["h"] == full["h"]
        assert merge_snapshots(full, empty)["h"] == full["h"]

    def test_tree_and_format(self):
        reg = MetricsRegistry()
        reg.counter("sim.kb.hits").inc(2)
        reg.gauge("sim.cycles").set(100)
        reg.histogram("compile.lex.ms").observe(1.5)
        tree = reg.tree()
        assert tree["sim"]["kb"]["hits"] == 2
        text = format_tree(tree, derived={"cpi": 1.5})
        assert "hits" in text and "cpi" in text

    def test_metric_named_like_namespace(self):
        reg = MetricsRegistry()
        reg.gauge("pipeline.cycles").set(10)
        reg.counter("pipeline.cycles.base").inc(4)
        tree = reg.tree()
        assert tree["pipeline"]["cycles"][""] == 10
        assert tree["pipeline"]["cycles"]["base"] == 4

    def test_to_json_schema(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("sim.instret").inc(12)
        path = tmp_path / "m.json"
        reg.to_json(path, extra={"scheme": "baseline"})
        doc = json.load(open(path))
        assert doc["schema"] == "repro.obs.metrics/v1"
        assert doc["scheme"] == "baseline"
        assert doc["metrics"]["sim.instret"] == 12


# ---------------------------------------------------------------------------
# Hit/miss mixin
# ---------------------------------------------------------------------------

class _FakeCache(HitMissStats):
    def __init__(self, metrics=None):
        self._init_hit_miss(metrics)
        self._evictions = self._stat_counter("evictions")


class TestHitMissStats:
    def test_rates(self):
        cache = _FakeCache()
        cache._hits.value += 3
        cache._misses.value += 1
        assert cache.hits == 3 and cache.misses == 1
        assert cache.accesses == 4
        assert cache.hit_rate == 0.75

    def test_empty_hit_rate(self):
        assert _FakeCache().hit_rate == 0.0

    def test_reset_covers_extras(self):
        cache = _FakeCache()
        cache._hits.value += 1
        cache._evictions.value += 2
        cache.reset_stats()
        assert cache.hits == 0 and cache._evictions.value == 0

    def test_registry_backed(self):
        reg = MetricsRegistry()
        cache = _FakeCache(metrics=reg.scope("pipeline.dcache"))
        cache._hits.value += 2
        assert reg.snapshot()["pipeline.dcache.hits"] == 2

    def test_derived_rates(self):
        stats = {"kb_hits": 3, "kb_misses": 1, "dcache_hits": 0,
                 "dcache_misses": 0, "loads": 10, "stores": 10}
        rates = derived_rates(stats, instret=100, cycles=250)
        assert rates["kb_hit_rate"] == 0.75
        assert rates["dcache_hit_rate"] == 0.0
        assert rates["cpi"] == 2.5
        assert rates["mem_ops_per_kinstr"] == 200.0


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------

class TestTracer:
    def test_emit_and_filter(self):
        tracer = Tracer(categories=("kb",))
        assert tracer.wants("kb") and not tracer.wants("retire")
        tracer.emit("kb", "fill", ts=1, args={"lock": 7})
        tracer.emit("retire", "add", ts=2)     # filtered out
        assert tracer.emitted == 1
        assert tracer.events("kb")[0].args == {"lock": 7}

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            Tracer(categories=("bogus",))

    def test_ring_overflow_drops_oldest(self):
        tracer = Tracer(capacity=8)
        for i in range(20):
            tracer.emit("sim", f"e{i}", ts=i)
        assert len(tracer) == 8
        assert tracer.emitted == 20
        assert tracer.dropped == 12
        names = [e.name for e in tracer.events()]
        assert names == [f"e{i}" for i in range(12, 20)]

    def test_chrome_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.emit("retire", "add", ts=0, dur=1, args={"pc": 0x10000})
        tracer.emit("kb", "fill", ts=5)
        tracer.emit("compile", "lex", ts=0.0, dur=12.5)
        path = tmp_path / "trace.json"
        tracer.to_chrome_json(path)
        doc = json.load(open(path))
        events = [e for e in doc["traceEvents"] if e.get("ph") != "M"]
        cats = {e["cat"] for e in events}
        assert cats == {"retire", "kb", "compile"}
        span = next(e for e in events if e["name"] == "add")
        assert span["ph"] == "X" and span["dur"] == 1
        instant = next(e for e in events if e["name"] == "fill")
        assert instant["ph"] == "i"
        compile_span = next(e for e in events if e["name"] == "lex")
        assert compile_span["pid"] == 1      # wall clock process
        assert span["pid"] == 0              # simulated cycles process
        assert doc["otherData"]["dropped_events"] == 0

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.emit("sim", "run", ts=0, dur=10)
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(path)
        lines = [json.loads(line) for line in open(path)]
        assert lines == [{"ts": 0, "cat": "sim", "name": "run",
                          "dur": 10}]

    def test_null_tracer(self):
        NULL_TRACER.emit("sim", "x", ts=0)
        assert len(NULL_TRACER) == 0
        assert not NULL_TRACER.enabled
        assert not NULL_TRACER.wants("sim")


# ---------------------------------------------------------------------------
# Phase timers
# ---------------------------------------------------------------------------

class TestPhaseTimers:
    def test_accumulates_across_spans(self):
        timers = PhaseTimers()
        with timers.phase("lex"):
            pass
        with timers.phase("lex"):
            pass
        assert timers.calls["lex"] == 2
        assert timers.ms("lex") >= 0.0
        assert list(timers.summary()) == ["lex"]

    def test_metrics_and_tracer_attached(self):
        reg = MetricsRegistry()
        tracer = Tracer()
        timers = PhaseTimers(metrics=reg, tracer=tracer)
        with timers.phase("parse"):
            time.sleep(0.001)
        snap = reg.snapshot()
        assert snap["compile.parse.ms"]["count"] == 1
        assert snap["compile.parse.ms"]["mean"] > 0
        spans = tracer.events("compile")
        assert len(spans) == 1 and spans[0].name == "parse"
        assert spans[0].dur > 0

    def test_null_phases_is_noop(self):
        with NULL_PHASES.phase("anything"):
            pass
        assert NULL_PHASES.seconds == {}
        assert not NULL_PHASES.enabled

    def test_known_phase_names(self):
        assert set(COMPILE_PHASES) == {"lex", "parse", "sema", "irgen",
                                       "instrument", "analyze",
                                       "lower", "link"}


# ---------------------------------------------------------------------------
# Profiler
# ---------------------------------------------------------------------------

class TestProfiler:
    def test_per_pc_accumulation(self):
        prof = CycleProfiler()
        prof.record(0x100, 2)
        prof.record(0x100, 3)
        prof.record(0x104, 1)
        assert prof.total_cycles == 6
        assert prof.total_retired == 3
        assert prof.pc_cycles[0x100] == 5

    def test_report_without_program(self):
        prof = CycleProfiler()
        prof.record(0x100, 4)
        report = prof.report()
        assert report.functions[0].name == "?"
        assert report.attributed_fraction == 0.0
        assert "TOTAL" in report.table()

    def test_reset(self):
        prof = CycleProfiler()
        prof.record(0x100, 4)
        prof.reset()
        assert prof.total_cycles == 0 and not prof.pc_cycles

    def test_collapsed_stack_export(self):
        from repro.schemes import compile_source

        program = compile_source(SRC, "baseline")
        prof = CycleProfiler()
        from repro.sim.machine import Machine

        result = Machine(profiler=prof).run(program)
        assert result.ok
        report = prof.report(program)
        folded = report.to_collapsed()
        assert folded.endswith("\n")
        lines = folded.strip().splitlines()
        assert lines == sorted(lines)        # deterministic ordering
        by_name = {}
        for line in lines:
            name, cycles = line.rsplit(" ", 1)
            by_name[name] = int(cycles)
        assert "main" in by_name and by_name["main"] > 0
        # a root prefix produces flamegraph-style frame chains
        rooted = report.to_collapsed(root="all")
        assert all(line.startswith("all;")
                   for line in rooted.strip().splitlines())

    def test_function_summary_matches_report(self):
        prof = CycleProfiler()
        prof.record(0x100, 4)
        summary = prof.report().function_summary()
        assert summary == [{"name": "?", "cycles": 4, "retired": 1}]


# ---------------------------------------------------------------------------
# Host gauges + heartbeats
# ---------------------------------------------------------------------------

class TestHostGauges:
    def test_peak_rss_positive(self):
        from repro.obs import peak_rss_kb

        assert peak_rss_kb() > 0            # linux CI always has rusage

    def test_gc_collections_monotonic(self):
        import gc

        from repro.obs import gc_collections

        before = gc_collections()
        gc.collect()
        assert gc_collections() >= before + 1

    def test_observe_host_sets_gauges(self):
        from repro.obs import observe_host

        reg = MetricsRegistry()
        observe_host(reg.scope("host"))
        snap = reg.snapshot()
        assert snap["host.peak_rss_kb"] > 0
        assert snap["host.gc_collections"] >= 0


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestHeartbeat:
    def _make(self, stream, interval=10.0, metrics=None):
        from repro.obs import Heartbeat

        clock = _Clock()
        hb = Heartbeat(total=100, label="fuzz", interval_s=interval,
                       stream=stream, metrics=metrics, clock=clock)
        return hb, clock

    def test_rate_limited(self):
        import io

        stream = io.StringIO()
        hb, clock = self._make(stream)
        assert not hb.tick(1)               # interval not yet elapsed
        clock.now = 5.0
        assert not hb.tick(2)
        clock.now = 10.0
        assert hb.tick(3)                   # first emission
        assert hb.tick(4) is False          # immediately suppressed again
        assert hb.emitted == 1
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1

    def test_event_payload(self):
        import io

        stream = io.StringIO()
        hb, clock = self._make(stream)
        clock.now = 20.0
        assert hb.tick(40, divergent_programs=2, phase="probe")
        event = json.loads(stream.getvalue())
        assert event["event"] == "heartbeat"
        assert event["label"] == "fuzz"
        assert event["done"] == 40 and event["total"] == 100
        assert event["pct"] == 40.0
        assert event["elapsed_s"] == 20.0
        assert event["rate_per_s"] == 2.0
        assert event["eta_s"] == 30.0       # 60 left at 2/s
        assert event["divergent_programs"] == 2
        assert event["phase"] == "probe"
        assert event["peak_rss_kb"] > 0

    def test_disabled_when_interval_zero(self):
        import io

        stream = io.StringIO()
        hb, clock = self._make(stream, interval=0.0)
        clock.now = 1e9
        assert not hb.enabled
        assert not hb.tick(50)
        assert stream.getvalue() == ""

    def test_campaign_gauges(self):
        import io

        reg = MetricsRegistry()
        hb, clock = self._make(io.StringIO(), metrics=reg)
        clock.now = 10.0
        hb.tick(25)
        snap = reg.snapshot()
        assert snap["obs.campaign.done"] == 25
        assert snap["obs.campaign.total"] == 100
        assert snap["obs.campaign.heartbeats"] == 1

    def test_fuzz_campaign_emits_heartbeats(self):
        """End-to-end: a tiny fuzz campaign with a sub-millisecond
        interval emits progress without changing the report."""
        import io

        from repro.fuzz import run_fuzz
        from repro.obs import Heartbeat

        stream = io.StringIO()
        hb = Heartbeat(total=4, label="fuzz", interval_s=1e-9,
                       stream=stream)
        with_hb = run_fuzz(n=4, seed=3, reduce_divergences=False,
                           heartbeat=hb)
        without = run_fuzz(n=4, seed=3, reduce_divergences=False)
        assert with_hb.to_json() == without.to_json()  # byte-identity
        events = [json.loads(line) for line
                  in stream.getvalue().strip().splitlines()]
        assert events and all(e["event"] == "heartbeat" for e in events)
        assert events[-1]["done"] == 4


# ---------------------------------------------------------------------------
# Integration with the simulator
# ---------------------------------------------------------------------------

SRC = """
int work(int n) {
  int s = 0;
  for (int i = 0; i < n; i = i + 1) s = s + i;
  return s;
}
int main() {
  int *p = (int *)malloc(16);
  p[0] = work(50);
  int out = p[0];
  free(p);
  return out == 1225 ? 0 : 1;
}
"""


class TestIntegration:
    def test_metrics_match_legacy_stats(self):
        from repro.obs import MetricsRegistry
        from repro.schemes import run_source

        reg = MetricsRegistry()
        result = run_source(SRC, "hwst128_tchk", metrics=reg)
        assert result.ok
        snap = reg.snapshot()
        stats = result.stats
        assert snap["sim.kb.hits"] == stats["kb_hits"]
        assert snap["sim.kb.misses"] == stats["kb_misses"]
        assert snap["pipeline.dcache.hits"] == stats["dcache_hits"]
        assert snap["pipeline.dcache.misses"] == stats["dcache_misses"]
        assert snap["sim.loads"] == stats["loads"]
        assert snap["sim.stores"] == stats["stores"]
        assert snap["pipeline.dcache.miss_penalty_cycles"] == \
            stats["cyc_dmiss"]
        assert snap["sim.cycles"] == result.cycles
        assert snap["sim.instret"] == result.instret
        # compile phases rode along in the same registry
        for phase in ("lex", "parse", "sema", "irgen", "lower", "link"):
            assert snap[f"compile.{phase}.ms"]["count"] > 0
        # the result carries the same snapshot
        assert result.metrics["sim.kb.hits"] == stats["kb_hits"]

    def test_stats_always_has_dcache_keys(self):
        """Regression: without a timing model the dcache_*/cyc_* keys
        must still be present (zeroed), so downstream consumers never
        KeyError."""
        from repro.pipeline.timing import BREAKDOWN_KEYS
        from repro.schemes import run_source

        result = run_source(SRC, "baseline", timing=False)
        assert result.ok
        assert result.stats["dcache_hits"] == 0
        assert result.stats["dcache_misses"] == 0
        for key in BREAKDOWN_KEYS:
            assert result.stats[f"cyc_{key}"] == 0

    def test_trace_categories_from_run(self):
        from repro.schemes import run_source

        tracer = Tracer()
        result = run_source(SRC, "hwst128_tchk", tracer=tracer)
        assert result.ok
        cats = {e.cat for e in tracer.events()}
        assert {"retire", "kb", "shadow", "sim"} <= cats
        json.loads(tracer.to_chrome_json())   # exports stay valid JSON

    def test_host_gauges_in_run_result_metrics(self):
        from repro.obs import MetricsRegistry
        from repro.schemes import run_source

        reg = MetricsRegistry()
        result = run_source(SRC, "baseline", metrics=reg)
        assert result.ok
        assert result.metrics["host.peak_rss_kb"] > 0
        assert result.metrics["host.gc_collections"] >= 0

    def test_trace_dropped_counter_surfaces_overflow(self):
        from repro.obs import MetricsRegistry
        from repro.schemes import run_source

        reg = MetricsRegistry()
        tracer = Tracer(capacity=16)           # far too small
        result = run_source(SRC, "hwst128_tchk", metrics=reg,
                            tracer=tracer)
        assert result.ok
        assert tracer.dropped > 0
        assert result.metrics["obs.trace.dropped"] == tracer.dropped

    def test_trace_dropped_counter_zero_when_roomy(self):
        from repro.obs import MetricsRegistry
        from repro.schemes import run_source

        reg = MetricsRegistry()
        tracer = Tracer(capacity=1 << 20)
        result = run_source(SRC, "baseline", metrics=reg,
                            tracer=tracer)
        assert result.ok
        assert result.metrics["obs.trace.dropped"] == 0

    def test_profiler_attribution(self):
        from repro.schemes import compile_source
        from repro.sim.machine import Machine
        from repro.pipeline.timing import InOrderPipeline

        program = compile_source(SRC, "hwst128_tchk")
        prof = CycleProfiler()
        machine = Machine(timing=InOrderPipeline(), profiler=prof)
        result = machine.run(program)
        assert result.ok
        report = prof.report(program)
        assert report.total_cycles == result.cycles
        assert report.attributed_fraction >= 0.90
        names = {fn.name for fn in report.functions}
        assert "main" in names and "work" in names

    def test_disabled_telemetry_smoke_overhead(self):
        """A run without any obs hooks attached must not get grossly
        slower than the instrumented-but-disabled path would allow.
        (Coarse smoke bound — the precise <5 % budget is checked by
        the benchmark suite, not unit CI.)"""
        from repro.schemes import compile_source
        from repro.sim.machine import Machine
        from repro.pipeline.timing import InOrderPipeline

        program = compile_source(SRC, "hwst128_tchk")

        def run_plain():
            machine = Machine(timing=InOrderPipeline())
            return machine.run(program)

        def run_traced():
            machine = Machine(timing=InOrderPipeline(),
                              tracer=Tracer(), profiler=CycleProfiler())
            return machine.run(program)

        run_plain(), run_traced()      # warm caches
        t0 = time.perf_counter()
        base = run_plain()
        t_plain = time.perf_counter() - t0
        t0 = time.perf_counter()
        traced = run_traced()
        t_traced = time.perf_counter() - t0
        assert base.cycles == traced.cycles    # telemetry never skews
        # generous bound: full tracing+profiling < 20x a plain run
        # (catches accidental O(n^2) sinks, tolerates CI jitter)
        assert t_traced < max(t_plain * 20, 0.5), (t_plain, t_traced)
