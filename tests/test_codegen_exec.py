"""End-to-end execution tests for the compiler (C semantics).

Every test compiles a mini-C program under the *baseline* scheme and
checks the observable behaviour (exit code / output) on the ISS — the
compiler's conformance suite.
"""

import pytest

from repro.schemes import run_source


def run(source, **kwargs):
    result = run_source(source, "baseline", timing=False, **kwargs)
    assert result.status == "exit", (result.status, result.detail)
    return result


def exit_code(source):
    return run(source).exit_code


class TestArithmetic:
    def test_integer_division_truncates_toward_zero(self):
        assert exit_code("int main(void){ return -7 / 2; }") == -3
        assert exit_code("int main(void){ return 7 / -2; }") == -3

    def test_modulo_sign_follows_dividend(self):
        assert exit_code("int main(void){ return -7 % 2; }") == -1
        assert exit_code("int main(void){ return 7 % -2; }") == 1

    def test_unsigned_division(self):
        assert exit_code("""
        int main(void){ unsigned int a = 0xFFFFFFFE;
                        return (int)(a / 3) == 0x55555554 ? 0 : 1; }""") == 0

    def test_int_overflow_wraps_at_32_bits(self):
        assert exit_code("""
        int main(void){
            int big = 0x7FFFFFFF;
            big = big + 1;
            return big < 0 ? 0 : 1;
        }""") == 0

    def test_long_arithmetic_is_64_bit(self):
        assert exit_code("""
        int main(void){
            long big = 0x7FFFFFFF;
            big = big + 1;
            return big > 0 ? 0 : 1;
        }""") == 0

    def test_char_wraps_at_8_bits(self):
        assert exit_code("""
        int main(void){ char c = (char)200; return c < 0 ? 0 : 1; }""") == 0

    def test_unsigned_char_zero_extends(self):
        assert exit_code("""
        int main(void){ unsigned char c = (unsigned char)200;
                        return c == 200 ? 0 : 1; }""") == 0

    def test_short_conversions(self):
        assert exit_code("""
        int main(void){
            short s = (short)0x12345;
            unsigned short u = (unsigned short)0x12345;
            return (s == 0x2345 && u == 0x2345) ? 0 : 1;
        }""") == 0

    def test_shift_semantics(self):
        assert exit_code("""
        int main(void){
            int a = -8;
            unsigned int b = 0x80000000;
            if (a >> 1 != -4) { return 1; }
            if (b >> 4 != 0x08000000) { return 2; }
            if (1 << 10 != 1024) { return 3; }
            return 0;
        }""") == 0

    def test_bitwise_ops(self):
        assert exit_code("""
        int main(void){
            return ((0xF0 & 0x3C) | (0x0F ^ 0x03)) == 0x3C ? 0 : 1;
        }""") == 0

    def test_comparison_results_are_0_or_1(self):
        assert exit_code("""
        int main(void){ return (3 < 5) + (5 < 3) + (4 == 4); }""") == 2

    def test_unary_minus_and_not(self):
        assert exit_code("""
        int main(void){ return -(-5) + ~0 + !0 + !7; }""") == 5


class TestControlFlow:
    def test_nested_loops_with_break_continue(self):
        assert exit_code("""
        int main(void){
            int total = 0;
            int i;
            int j;
            for (i = 0; i < 5; i++) {
                if (i == 3) { continue; }
                for (j = 0; j < 5; j++) {
                    if (j > i) { break; }
                    total += 1;
                }
            }
            return total;  /* rows 0,1,2,4 -> 1+2+3+5 */
        }""") == 11

    def test_do_while_runs_once(self):
        assert exit_code("""
        int main(void){
            int n = 0;
            do { n++; } while (0);
            return n;
        }""") == 1

    def test_short_circuit_evaluation(self):
        assert exit_code("""
        int g = 0;
        int bump(void) { g++; return 1; }
        int main(void){
            int r = 0 && bump();
            int s = 1 || bump();
            return g * 10 + r + s;   /* bump never called */
        }""") == 1

    def test_ternary_nested(self):
        assert exit_code("""
        int main(void){
            int a = 7;
            return a > 10 ? 1 : a > 5 ? 2 : 3;
        }""") == 2

    def test_recursion_ackermann_like(self):
        assert exit_code("""
        int ack(int m, int n) {
            if (m == 0) { return n + 1; }
            if (n == 0) { return ack(m - 1, 1); }
            return ack(m - 1, ack(m, n - 1));
        }
        int main(void){ return ack(2, 3); }""") == 9

    def test_mutual_recursion(self):
        assert exit_code("""
        int is_odd(int n);
        int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
        int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
        int main(void){ return is_even(10) * 10 + is_odd(7); }""") == 11


class TestPointersAndArrays:
    def test_pointer_arithmetic_scaling(self):
        assert exit_code("""
        int main(void){
            long a[4];
            long *p = a;
            a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
            p = p + 2;
            return (int)(*p + p[1]);
        }""") == 7

    def test_pointer_difference(self):
        assert exit_code("""
        int main(void){
            int a[10];
            int *p = &a[2];
            int *q = &a[9];
            return (int)(q - p);
        }""") == 7

    def test_address_of_scalar(self):
        assert exit_code("""
        int main(void){
            int v = 5;
            int *p = &v;
            *p = 9;
            return v;
        }""") == 9

    def test_pointer_to_pointer(self):
        assert exit_code("""
        int main(void){
            int v = 3;
            int *p = &v;
            int **pp = &p;
            **pp = 8;
            return v;
        }""") == 8

    def test_array_of_pointers(self):
        assert exit_code("""
        int main(void){
            int a = 1;
            int b = 2;
            int *arr[2];
            arr[0] = &a;
            arr[1] = &b;
            return *arr[0] + *arr[1];
        }""") == 3

    def test_2d_array_row_major(self):
        assert exit_code("""
        int main(void){
            int grid[3][4];
            int i;
            int j;
            for (i = 0; i < 3; i++) {
                for (j = 0; j < 4; j++) { grid[i][j] = i * 10 + j; }
            }
            return grid[2][3];
        }""") == 23

    def test_pointer_increment_walk(self):
        assert exit_code("""
        int main(void){
            char s[6];
            char *p = s;
            int n = 0;
            strcpy(s, "hello");
            while (*p) { n++; p++; }
            return n;
        }""") == 5

    def test_null_comparisons(self):
        assert exit_code("""
        int main(void){
            int *p = 0;
            int q = 4;
            int r = 0;
            if (!p) { r += 1; }
            p = &q;
            if (p) { r += 2; }
            if (p != 0) { r += 4; }
            return r;
        }""") == 7


class TestStructs:
    def test_member_access_and_assignment(self):
        assert exit_code("""
        struct Point { int x; int y; };
        int main(void){
            struct Point p;
            p.x = 3;
            p.y = 4;
            return p.x * p.x + p.y * p.y;
        }""") == 25

    def test_struct_copy_is_by_value(self):
        assert exit_code("""
        struct S { long a; long b; };
        int main(void){
            struct S x;
            struct S y;
            x.a = 1; x.b = 2;
            y = x;
            y.a = 99;
            return (int)(x.a + y.b);
        }""") == 3

    def test_nested_struct(self):
        assert exit_code("""
        struct Inner { int v; };
        struct Outer { struct Inner inner; int pad; };
        int main(void){
            struct Outer o;
            o.inner.v = 42;
            return o.inner.v;
        }""") == 42

    def test_linked_list_traversal(self):
        assert exit_code("""
        typedef struct Node Node;
        struct Node { int v; Node *next; };
        int main(void){
            Node a;
            Node b;
            Node c;
            Node *cur = &a;
            int sum = 0;
            a.v = 1; a.next = &b;
            b.v = 2; b.next = &c;
            c.v = 4; c.next = 0;
            while (cur) { sum += cur->v; cur = cur->next; }
            return sum;
        }""") == 7

    def test_struct_in_array(self):
        assert exit_code("""
        struct P { int x; char tag; };
        int main(void){
            struct P ps[3];
            ps[0].x = 5;
            ps[1].x = 6;
            ps[2].x = 7;
            ps[1].tag = 'b';
            return ps[0].x + ps[2].x + (ps[1].tag == 'b');
        }""") == 13

    def test_pointer_to_struct_member_update(self):
        assert exit_code("""
        struct S { int a; int b; };
        void bump(struct S *s) { s->a += 10; s->b += 20; }
        int main(void){
            struct S s;
            s.a = 1;
            s.b = 2;
            bump(&s);
            return s.a + s.b;
        }""") == 33


class TestFunctions:
    def test_eight_arguments(self):
        assert exit_code("""
        long sum8(long a, long b, long c, long d,
                  long e, long f, long g, long h) {
            return a + b + c + d + e + f + g + h;
        }
        int main(void){ return (int)sum8(1,2,3,4,5,6,7,8); }""") == 36

    def test_pointer_return_value(self):
        assert exit_code("""
        long *pick(long *a, long *b, int which) {
            return which ? a : b;
        }
        int main(void){
            long x = 3;
            long y = 9;
            return (int)*pick(&x, &y, 1);
        }""") == 3

    def test_value_semantics_of_args(self):
        assert exit_code("""
        void tryset(int v) { v = 99; }
        int main(void){ int v = 5; tryset(v); return v; }""") == 5

    def test_global_state_across_calls(self):
        assert exit_code("""
        int counter = 100;
        void tick(void) { counter += 1; }
        int main(void){
            tick(); tick(); tick();
            return counter - 100;
        }""") == 3


class TestOutput:
    def test_print_int_negative(self):
        result = run("""
        int main(void){ print_int(-12345); return 0; }""")
        assert result.output_text() == "-12345"

    def test_print_hex(self):
        result = run("""
        int main(void){ print_hex(0xDEADBEEF); return 0; }""")
        assert result.output_text() == "deadbeef"

    def test_print_str_and_char(self):
        result = run("""
        int main(void){
            print_str("ab");
            print_char('c');
            print_char(10);
            return 0;
        }""")
        assert result.output_text() == "abc\n"

    def test_print_int_zero(self):
        result = run("int main(void){ print_int(0); return 0; }")
        assert result.output_text() == "0"


class TestGlobalInitialisers:
    def test_scalar_init(self):
        assert exit_code("int g = 41; int main(void){ return g + 1; }") == 42

    def test_array_init_list(self):
        assert exit_code("""
        int tab[4] = {10, 20, 30, 40};
        int main(void){ return tab[0] + tab[3]; }""") == 50

    def test_string_global(self):
        assert exit_code("""
        char msg[] = "hi";
        int main(void){ return (int)strlen(msg); }""") == 2

    def test_negative_and_expression_init(self):
        assert exit_code("""
        int a = -5;
        int b = 3 * 4 + 1;
        int main(void){ return a + b; }""") == 8

    def test_uninitialised_global_is_zero(self):
        assert exit_code("""
        long z[8];
        int main(void){ return (int)(z[0] + z[7]); }""") == 0
