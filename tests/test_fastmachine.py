"""Lockstep and engine tests for the fast superblock interpreter.

The fast engine's whole contract is *observational equivalence*: every
architecturally visible outcome — status, exit code, stdout, instret,
cycles, trap class and pc, the sim/pipeline counter census — must be
byte-identical to the reference interpreter's. These tests enforce the
contract over real workloads, fuzz-generated programs (including
planted bugs, which exercise every trap path), and hand-built
instruction sequences that hit the translation cache's edge cases:
stores into text, branches into the middle of a cached block,
superblock extension across ``jal``, traps inside a fused
``tchk``+checked-access pair, and CSR reads of the live instret.

The nightly CI job runs the same fuzz-lockstep loop at 200 programs
via ``REPRO_LOCKSTEP_FUZZ_N``; the tier-1 default keeps it small.
"""

import os

import pytest

from repro.core.config import HwstConfig
from repro.harness.runner import run_program
from repro.isa import csr as csrdef
from repro.isa.instructions import Instr, li_sequence
from repro.schemes import compile_source
from repro.sim import ENGINES, FastMachine, make_machine
from repro.sim.machine import (
    Machine, STATUS_EXIT, STATUS_FAULT, STATUS_LIMIT, STATUS_SPATIAL,
    STATUS_TEMPORAL,
)
from repro.sim.memory import DEFAULT_LAYOUT
from repro.sim.program import Program
from repro.workloads import WORKLOADS

TEXT = DEFAULT_LAYOUT.text_base
#: First byte of the unmapped gap between heap and stack.
UNMAPPED = DEFAULT_LAYOUT.heap_top + 0x1000

#: RunResult fields that must match between engines, bit for bit.
OBSERVABLES = ("status", "exit_code", "detail", "instret", "cycles",
               "output", "trap_class", "trap_pc")


def make_program(instrs, segments=None):
    return Program(instrs=list(instrs), entry=TEXT,
                   segments=segments or [])


def exit_seq():
    return [Instr("addi", rd=17, rs1=0, imm=93), Instr("ecall")]


def assert_results_equal(ref, fast, context=""):
    for key in OBSERVABLES:
        assert getattr(ref, key) == getattr(fast, key), (
            f"{context}: {key} diverged: "
            f"ref={getattr(ref, key)!r} fast={getattr(fast, key)!r}")
    ref_stats = dict(ref.stats or {})
    fast_stats = dict(fast.stats or {})
    # The fast engine adds its own sim.fast.* gauges; everything the
    # reference engine reports must match exactly.
    diffs = {key: (ref_stats[key], fast_stats.get(key))
             for key in ref_stats if fast_stats.get(key) != ref_stats[key]}
    assert not diffs, f"{context}: counter census diverged: {diffs}"


def run_both(instrs, **kwargs):
    """Run an instruction sequence on both engines; return machines
    and results after asserting observational equivalence."""
    ref = Machine(**kwargs)
    fast = FastMachine(**kwargs)
    a = ref.run(make_program(instrs))
    b = fast.run(make_program(instrs))
    assert_results_equal(a, b)
    assert ref.regs == fast.regs
    return ref, fast, a, b


class TestEngineRegistry:
    def test_registry_contents(self):
        assert ENGINES["ref"] is Machine
        assert ENGINES["fast"] is FastMachine

    def test_make_machine(self):
        assert type(make_machine("ref")) is Machine
        assert type(make_machine("fast")) is FastMachine

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_machine("qemu")

    def test_fast_is_drop_in(self):
        # Same constructor surface: FastMachine must accept everything
        # Machine does (make_machine forwards kwargs blindly).
        machine = make_machine("fast", config=HwstConfig(), timing=None)
        assert isinstance(machine, Machine)


class TestWorkloadLockstep:
    """Ref-vs-fast over real workload kernels, timed and untimed."""

    @pytest.mark.parametrize("workload", ("sha", "treeadd", "dijkstra"))
    @pytest.mark.parametrize("scheme", ("baseline", "hwst128_tchk"))
    @pytest.mark.parametrize("timed", (False, True),
                             ids=("untimed", "timed"))
    def test_lockstep(self, workload, scheme, timed):
        source = WORKLOADS[workload].source("small")
        ref = run_program(source, scheme, timing=timed, engine="ref")
        fast = run_program(source, scheme, timing=timed, engine="fast")
        assert ref.status == STATUS_EXIT and ref.exit_code == 0
        assert_results_equal(ref, fast, f"{workload}/{scheme}")


class TestFuzzLockstep:
    """Ref-vs-fast over generated programs, planted bugs included.

    Planted programs end in spatial/temporal traps, so this sweep
    exercises the fast engine's trap-boundary instret accounting on
    every violation class the generator can plant. CI runs the same
    loop at 200 programs (REPRO_LOCKSTEP_FUZZ_N=200).
    """

    N = int(os.environ.get("REPRO_LOCKSTEP_FUZZ_N", "20"))

    def test_lockstep_over_generated_corpus(self):
        from repro.fuzz.gen import generate_program, plan_programs
        from repro.harness.compile_cache import CompileCache

        cache = CompileCache()
        divergences = []
        trapping = 0
        for index, kind in plan_programs(seed=29, count=self.N):
            program = generate_program(29, index, kind)
            for scheme in ("hwst128", "sbcets"):
                ref = run_program(program.source, scheme, timing=False,
                                  engine="ref", cache=cache,
                                  max_instructions=2_000_000)
                fast = run_program(program.source, scheme, timing=False,
                                   engine="fast", cache=cache,
                                   max_instructions=2_000_000)
                if ref.status in (STATUS_SPATIAL, STATUS_TEMPORAL):
                    trapping += 1
                for key in OBSERVABLES:
                    if getattr(ref, key) != getattr(fast, key):
                        divergences.append(
                            (program.name, scheme, key,
                             getattr(ref, key), getattr(fast, key)))
        assert not divergences, f"engine lockstep broke: {divergences}"
        assert trapping > 0, (
            "corpus never trapped — the sweep is not exercising "
            "trap-boundary accounting; regenerate with planted bugs")


class TestSelfModifyingStore:
    def test_store_into_text_invalidates_overlapping_block(self):
        # The executing block stores over its own entry instruction:
        # the translation cache must drop it (QEMU-style tb_invalidate)
        # even though this run's closures keep executing.
        seq = li_sequence(5, TEXT)
        seq.append(Instr("sd", rs1=5, rs2=0, imm=0))
        seq += exit_seq()
        ref, fast, a, b = run_both(seq)
        stats = fast.fast_stats()
        assert stats["invalidated_blocks"] == 1
        assert stats["blocks"] == 0          # the only block was dropped
        assert a.status == STATUS_EXIT

    def test_store_outside_text_invalidates_nothing(self):
        heap = DEFAULT_LAYOUT.heap_base
        seq = li_sequence(5, heap)
        seq.append(Instr("sd", rs1=5, rs2=0, imm=0))
        seq += exit_seq()
        _, fast, _, _ = run_both(seq)
        assert fast.fast_stats()["invalidated_blocks"] == 0

    def test_invalidated_block_retranslates_on_reentry(self):
        # A two-iteration loop whose body stores into its own text:
        # iteration 2 must re-enter through a fresh translation.
        patch = li_sequence(5, TEXT)
        head = (len(patch) + 1) * 4          # loop head offset
        body = [
            Instr("addi", rd=5, rs1=5, imm=head),  # x5 = &loop head
            Instr("sd", rs1=5, rs2=0, imm=0),      # clobber own text
            Instr("addi", rd=6, rs1=6, imm=1),
            Instr("addi", rd=7, rs1=0, imm=2),
            Instr("blt", rs1=6, rs2=7, imm=-12),   # back to the sd
        ]
        seq = patch + body + exit_seq()
        _, fast, _, _ = run_both(seq)
        stats = fast.fast_stats()
        assert stats["invalidated_blocks"] >= 2
        assert stats["translations"] >= 2


class TestSuperblockBoundaries:
    def test_branch_into_block_middle(self):
        # The backward branch lands in the *middle* of the entry block:
        # the cache is keyed by entry pc, so a second block must be
        # translated at the branch target and both must retire the
        # same architectural state as the reference loop.
        mid = TEXT + 8                        # the addi x5 += 1
        seq = [
            Instr("addi", rd=6, rs1=0, imm=3),            # counter
            Instr("addi", rd=5, rs1=0, imm=0),
            Instr("addi", rd=5, rs1=5, imm=1),            # mid: x5 += 1
            Instr("addi", rd=6, rs1=6, imm=-1),
            Instr("bne", rs1=6, rs2=0, imm=mid - (TEXT + 16)),
        ] + exit_seq()
        ref, fast, _, _ = run_both(seq)
        assert ref.regs[5] == 3
        assert fast.fast_stats()["translations"] >= 2

    def test_superblock_extends_across_jal(self):
        # jal over a gap: the trace continues at the target, so the
        # whole program is ONE block even though it is discontiguous.
        seq = [
            Instr("addi", rd=5, rs1=0, imm=7),
            Instr("jal", rd=0, imm=12),               # skip 2 instrs
            Instr("addi", rd=5, rs1=0, imm=0),        # dead
            Instr("addi", rd=5, rs1=0, imm=0),        # dead
            Instr("addi", rd=5, rs1=5, imm=1),        # jal target
        ] + exit_seq()
        ref, fast, _, _ = run_both(seq)
        assert ref.regs[5] == 8
        stats = fast.fast_stats()
        assert stats["translations"] == 1
        # Dead instructions are never decoded into the superblock.
        assert stats["translated_instrs"] == 5

    def test_block_cache_reused_across_iterations(self):
        seq = [
            Instr("addi", rd=6, rs1=0, imm=50),
            Instr("addi", rd=5, rs1=0, imm=0),
            Instr("addi", rd=5, rs1=5, imm=2),
            Instr("addi", rd=6, rs1=6, imm=-1),
            Instr("bne", rs1=6, rs2=0, imm=-8),
        ] + exit_seq()
        ref, fast, _, _ = run_both(seq)
        assert ref.regs[5] == 100
        stats = fast.fast_stats()
        # 50 iterations, but each distinct entry pc translates once.
        assert stats["block_runs"] > stats["translations"]


class TestTrapAccounting:
    """Satellite: instret/cycle audit at trap boundaries."""

    def test_instret_pinned_on_trapping_program(self):
        # The trapping instruction itself is NOT retired: instret is
        # pinned to exactly the count of completed instructions, and
        # the trap pc to the faulting load.
        setup = li_sequence(5, UNMAPPED)
        setup.append(Instr("addi", rd=6, rs1=0, imm=1))
        seq = setup + [Instr("ld", rd=7, rs1=5, imm=0)]
        pinned = len(setup)
        trap_pc = TEXT + 4 * len(setup)
        for engine in ("ref", "fast"):
            machine = make_machine(engine)
            result = machine.run(make_program(seq + exit_seq()))
            assert result.status == STATUS_FAULT, engine
            assert result.instret == pinned, engine
            assert result.trap_pc == trap_pc, engine

    def test_instret_pinned_mid_block(self):
        # Same, but the trap fires deep inside one straight-line block
        # (the bulk instret add must be unwound to the trap position).
        seq = li_sequence(5, UNMAPPED)
        seq += [Instr("addi", rd=6, rs1=0, imm=i) for i in range(10)]
        pinned = len(seq)
        seq += [Instr("ld", rd=7, rs1=5, imm=0)] + exit_seq()
        _, _, a, b = run_both(seq)
        assert a.status == STATUS_FAULT
        assert a.instret == pinned
        assert b.instret == pinned

    @pytest.mark.parametrize("source,status", (
        ("""
         int main(void) {
             long *p = (long*)malloc(8);
             free(p);
             return (int)(p[0] & 0);
         }
         """, STATUS_TEMPORAL),
        ("""
         int main(void) {
             long *p = (long*)malloc(8);
             long v = p[20];
             free(p);
             return (int)(v & 0);
         }
         """, STATUS_SPATIAL),
    ), ids=("temporal", "spatial"))
    def test_trap_inside_fused_pair(self, source, status):
        # hwst128_tchk emits tchk immediately before every checked
        # access, which the translator fuses into one closure. A UAF
        # traps in the first half (tchk), an OOB in the second (the
        # checked access) — both must report the reference instret.
        config = HwstConfig()
        program = compile_source(source, "hwst128_tchk", config)
        results = {}
        for engine in ("ref", "fast"):
            machine = make_machine(engine, config=HwstConfig())
            results[engine] = machine.run(program)
            if engine == "fast":
                assert machine.fast_stats()["fused_pairs"] > 0
        assert results["ref"].status == status
        assert_results_equal(results["ref"], results["fast"], status)

    def test_csr_instret_read_is_exact(self):
        # A csrrs of instret in the middle of hot code must observe
        # the exact architectural count despite the fast engine's
        # bulk per-block crediting.
        seq = [
            Instr("addi", rd=6, rs1=0, imm=1),
            Instr("addi", rd=6, rs1=6, imm=1),
            Instr("csrrs", rd=5, rs1=0, imm=csrdef.INSTRET),
            Instr("addi", rd=6, rs1=6, imm=1),
        ] + exit_seq()
        ref, fast, _, _ = run_both(seq)
        assert ref.regs[5] == 2
        assert fast.regs[5] == 2

    def test_limit_trap_matches(self):
        # Budget exhaustion mid-loop: the fast engine's budget tail
        # runs on the reference loop and must report the same limit.
        seq = [
            Instr("addi", rd=5, rs1=5, imm=1),
            Instr("jal", rd=0, imm=-4),
        ]
        ref = Machine().run(make_program(seq), max_instructions=1001)
        fast = FastMachine().run(make_program(seq),
                                 max_instructions=1001)
        assert ref.status == STATUS_LIMIT
        assert_results_equal(ref, fast, "limit")


class TestObservedModes:
    """Per-instruction observers route to the reference loop."""

    SOURCE = """
    int main(void) {
        long *p = (long*)malloc(64);
        long i; long s = 0;
        for (i = 0; i < 8; i = i + 1) { p[i] = i * 3; }
        for (i = 0; i < 8; i = i + 1) { s = s + p[i]; }
        free(p);
        print_int(s);
        return 0;
    }
    """

    def test_profiler_lockstep(self):
        from repro.obs.profiler import CycleProfiler

        reports = {}
        for engine in ("ref", "fast"):
            from repro.pipeline.timing import InOrderPipeline

            profiler = CycleProfiler()
            config = HwstConfig()
            program = compile_source(self.SOURCE, "hwst128_tchk", config)
            machine = make_machine(engine, config=config,
                                   timing=InOrderPipeline(),
                                   profiler=profiler)
            result = machine.run(program)
            assert result.status == STATUS_EXIT
            reports[engine] = (result, profiler.report(program))
        a, ra = reports["ref"]
        b, rb = reports["fast"]
        assert_results_equal(a, b, "profiled")
        # The per-pc cycle attribution itself must agree: a profiled
        # run executes on the reference loop, every retire observed.
        assert ra.to_collapsed() == rb.to_collapsed()

    def test_fault_hook_falls_back_to_reference_loop(self):
        fired = []
        machine = FastMachine()
        machine.fault_hook = lambda m: fired.append(m.pc)
        seq = [Instr("addi", rd=5, rs1=0, imm=1)] + exit_seq()
        result = machine.run(make_program(seq))
        assert result.status == STATUS_EXIT
        # Hook saw every instruction; nothing was block-executed.
        assert len(fired) == result.instret + 1  # +1: trapping ecall
        assert machine.fast_stats()["block_runs"] == 0
