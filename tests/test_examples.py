"""Smoke tests: every shipped example runs to completion."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


def _load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    module = _load(path)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "memory_safety_demo", "overhead_analysis",
            "metadata_compression", "juliet_explorer",
            "isa_tour"} <= names
