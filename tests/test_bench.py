"""Tests for the performance-trajectory bench (repro.obs.bench) and
its comparison/gating engine (repro.obs.compare).

The contracts under test:

* the ``repro.bench/v1`` envelope round-trips through save/load and
  its :func:`strip_measured` skeleton is byte-identical across reruns
  at the same seed (host timing lives only under ``"measured"`` and
  the top-level ``"host"`` section);
* the gate is noise-aware — self-comparison is always clean, a median
  shift inside the IQR band never fails, and a real slowdown past
  tolerance exits with the documented code 11 and a differential
  profile naming the guest functions/counters that moved.
"""

import copy
import json

import pytest

from repro import errors
from repro.cli import main
from repro.obs.bench import (
    ENVELOPE_SCHEMA, QUICK_SCENARIOS, SCENARIOS, _band, _quantile,
    envelope_to_json, load_envelope, run_bench, save_envelope,
    scenario_names, strip_measured,
)
from repro.obs.compare import (
    BenchComparison, ScenarioDelta, compare_envelopes, diff_counters,
    diff_profiles,
)

#: The cheapest real scenario — every end-to-end test runs just this.
FAST = "treeadd/baseline"


@pytest.fixture(scope="module")
def envelope():
    """One real envelope, shared across the module (runs once)."""
    return run_bench(scenarios=[FAST], reps=2, seed=7)


# ---------------------------------------------------------------------------
# Registry + aggregation math
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_suite_composition(self):
        names = scenario_names()
        assert len(names) == 14
        kinds = {SCENARIOS[n].kind for n in names}
        assert kinds == {"workload", "campaign"}
        assert "sha/baseline" in names
        assert "sha/hwst128_tchk" in names
        assert "fuzz_smoke" in names and "faultinject_smoke" in names

    def test_quick_subset(self):
        assert set(QUICK_SCENARIOS) < set(SCENARIOS)
        # campaign smokes ride in the quick subset too
        assert "fuzz_smoke" in QUICK_SCENARIOS
        assert scenario_names(quick=True) == list(QUICK_SCENARIOS)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown bench scenarios"):
            run_bench(scenarios=["nope"], reps=1)

    def test_reps_validated(self):
        from repro.obs.bench import run_scenario

        with pytest.raises(ValueError, match="reps"):
            run_scenario(SCENARIOS[FAST], reps=0)


class TestAggregation:
    def test_quantile_interpolates(self):
        ordered = [1.0, 2.0, 3.0, 4.0]
        assert _quantile(ordered, 0.0) == 1.0
        assert _quantile(ordered, 1.0) == 4.0
        assert _quantile(ordered, 0.5) == 2.5

    def test_quantile_degenerate(self):
        assert _quantile([], 0.5) == 0.0
        assert _quantile([7.0], 0.99) == 7.0

    def test_band_median_iqr(self):
        band = _band([10.0, 30.0, 20.0, 40.0])
        assert band["median"] == 25.0
        assert band["min"] == 10.0 and band["max"] == 40.0
        assert band["reps"] == 4
        assert band["iqr"] == pytest.approx(15.0)


# ---------------------------------------------------------------------------
# Envelope: shape, round-trip, determinism
# ---------------------------------------------------------------------------

class TestEnvelope:
    def test_shape(self, envelope):
        assert envelope["schema"] == ENVELOPE_SCHEMA
        assert envelope["seed"] == 7 and envelope["reps"] == 2
        entry = envelope["scenarios"][FAST]
        assert entry["kind"] == "workload"
        assert entry["guest_instructions"] > 0
        assert entry["guest_cycles"] > 0
        assert {"loads", "stores", "cyc_base"} <= set(entry["counters"])
        assert entry["profile"][0]["cycles"] > 0
        measured = entry["measured"]
        assert measured["wall_ms"]["reps"] == 2
        assert measured["guest_mips"]["median"] > 0
        assert measured["compile_ms"]["median"] > 0
        assert measured["compile_phases_ms"]["lex"] >= 0
        assert measured["peak_rss_kb"] > 0
        assert "python" in envelope["host"]

    def test_round_trip(self, envelope, tmp_path):
        path = tmp_path / "b.json"
        save_envelope(envelope, path)
        loaded = load_envelope(path)
        assert loaded == json.loads(envelope_to_json(envelope))
        assert envelope_to_json(loaded) == envelope_to_json(envelope)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "repro.fuzz/v1"}\n')
        with pytest.raises(ValueError, match="expected schema"):
            load_envelope(path)

    def test_strip_measured_removes_host_timing(self, envelope):
        skeleton = strip_measured(envelope)
        assert "host" not in skeleton
        assert "measured" not in skeleton["scenarios"][FAST]
        # the deterministic guts survive
        assert skeleton["scenarios"][FAST]["guest_instructions"] == \
            envelope["scenarios"][FAST]["guest_instructions"]
        # and the original envelope was not mutated
        assert "measured" in envelope["scenarios"][FAST]

    def test_byte_determinism_at_fixed_seed(self, envelope):
        """The acceptance contract: rerunning at the same seed gives a
        byte-identical envelope modulo the measured timing fields."""
        again = run_bench(scenarios=[FAST], reps=2, seed=7)
        assert envelope_to_json(strip_measured(envelope)) == \
            envelope_to_json(strip_measured(again))

    def test_campaign_scenario_digest(self):
        entry = run_bench(scenarios=["faultinject_smoke"], reps=1,
                          seed=7)["scenarios"]["faultinject_smoke"]
        assert entry["kind"] == "campaign"
        assert entry["cells"] == SCENARIOS["faultinject_smoke"].n
        assert sum(entry["scoreboard"].values()) == entry["cells"]
        assert entry["measured"]["cells_per_sec"]["median"] > 0


# ---------------------------------------------------------------------------
# Differential profiling primitives
# ---------------------------------------------------------------------------

class TestDiffs:
    BASE = [{"name": "main", "cycles": 100, "retired": 80},
            {"name": "work", "cycles": 50, "retired": 40}]

    def test_profile_movers_sorted_by_magnitude(self):
        new = [{"name": "main", "cycles": 160, "retired": 80},
               {"name": "work", "cycles": 45, "retired": 40},
               {"name": "memcpy", "cycles": 10, "retired": 10}]
        movers = diff_profiles(self.BASE, new)
        assert [m["function"] for m in movers] == \
            ["main", "memcpy", "work"]
        assert movers[0]["delta_cycles"] == 60
        assert movers[0]["delta_pct"] == pytest.approx(60.0)
        assert movers[1]["base_cycles"] == 0     # new function
        assert movers[1]["delta_pct"] is None

    def test_identical_profiles_no_movers(self):
        assert diff_profiles(self.BASE, copy.deepcopy(self.BASE)) == []

    def test_top_n_truncation(self):
        new = [{"name": f"f{i}", "cycles": i + 1, "retired": 1}
               for i in range(10)]
        assert len(diff_profiles([], new, top=3)) == 3

    def test_counter_movers(self):
        movers = diff_counters({"loads": 10, "stores": 5, "kb_hits": 2},
                               {"loads": 30, "stores": 5, "kb_hits": 1})
        assert [m["counter"] for m in movers] == ["loads", "kb_hits"]
        assert movers[0]["delta"] == 20
        assert movers[1]["delta"] == -1


# ---------------------------------------------------------------------------
# Regression gate
# ---------------------------------------------------------------------------

def _fake_envelope(wall_ms=100.0, iqr=1.0, instret=1000, mips=10.0,
                   cycles=2000, profile=None, counters=None,
                   name="w/s"):
    return {
        "schema": ENVELOPE_SCHEMA, "seed": 7, "reps": 3, "quick": False,
        "scenarios": {
            name: {
                "kind": "workload", "workload": "w", "scheme": "s",
                "scale": "small",
                "guest_instructions": instret,
                "guest_cycles": cycles,
                "counters": counters or {"retired": instret},
                "profile": profile or
                [{"name": "main", "cycles": cycles, "retired": instret}],
                "measured": {
                    "wall_ms": {"median": wall_ms, "iqr": iqr,
                                "min": wall_ms - iqr,
                                "max": wall_ms + iqr, "reps": 3},
                    "guest_mips": {"median": mips, "iqr": 0.1,
                                   "min": mips, "max": mips, "reps": 3},
                },
            },
        },
        "host": {"python": "3.x"},
    }


class TestGate:
    def test_self_comparison_clean(self, envelope):
        comparison = compare_envelopes(envelope, envelope)
        assert comparison.ok
        assert [d.verdict for d in comparison.deltas] == ["ok"]
        assert "bench gate: OK" in comparison.table()

    def test_regression_past_tolerance_and_noise(self):
        base = _fake_envelope(wall_ms=100.0, iqr=2.0)
        slow = _fake_envelope(wall_ms=150.0, iqr=2.0, mips=6.6)
        comparison = compare_envelopes(base, slow)
        assert not comparison.ok
        (delta,) = comparison.regressions
        assert delta.slowdown_pct == pytest.approx(50.0)
        assert "REGRESSED" in comparison.table()

    def test_iqr_noise_guard(self):
        """A big relative slowdown hidden inside wide noise bands must
        not gate: the median shift has to clear base_iqr + new_iqr."""
        base = _fake_envelope(wall_ms=10.0, iqr=30.0)
        slow = _fake_envelope(wall_ms=15.0, iqr=30.0)
        comparison = compare_envelopes(base, slow)
        assert comparison.ok                 # +50% but noise_ms=60

    def test_min_wall_floor(self):
        base = _fake_envelope(wall_ms=0.5, iqr=0.0)
        slow = _fake_envelope(wall_ms=1.5, iqr=0.0)
        assert compare_envelopes(base, slow).ok
        assert not compare_envelopes(base, slow, min_wall_ms=0.1).ok

    def test_improved_verdict(self):
        base = _fake_envelope(wall_ms=150.0, iqr=1.0)
        fast = _fake_envelope(wall_ms=100.0, iqr=1.0, mips=15.0)
        comparison = compare_envelopes(base, fast)
        assert comparison.ok
        assert comparison.deltas[0].verdict == "improved"

    def test_new_and_missing_scenarios(self):
        base = _fake_envelope(name="old/s")
        new = _fake_envelope(name="new/s")
        comparison = compare_envelopes(base, new)
        verdicts = {d.name: d.verdict for d in comparison.deltas}
        assert verdicts == {"old/s": "missing", "new/s": "new"}
        assert comparison.ok                 # neither blocks the gate

    def test_differential_profile_on_regression(self):
        base = _fake_envelope(
            wall_ms=100.0, iqr=1.0,
            profile=[{"name": "main", "cycles": 900, "retired": 800},
                     {"name": "check", "cycles": 100, "retired": 90}],
            counters={"retired": 1000, "kb_hits": 50})
        slow = _fake_envelope(
            wall_ms=200.0, iqr=1.0,
            profile=[{"name": "main", "cycles": 900, "retired": 800},
                     {"name": "check", "cycles": 800, "retired": 700}],
            counters={"retired": 1000, "kb_hits": 950})
        comparison = compare_envelopes(base, slow)
        (delta,) = comparison.regressions
        assert delta.profile_movers[0]["function"] == "check"
        assert delta.counter_movers[0]["counter"] == "kb_hits"
        table = comparison.table()
        assert "fn check" in table and "ct kb_hits" in table

    def test_identical_profile_flags_interpreter_slowdown(self):
        base = _fake_envelope(wall_ms=100.0, iqr=1.0)
        slow = _fake_envelope(wall_ms=200.0, iqr=1.0)
        comparison = compare_envelopes(base, slow)
        assert not comparison.ok
        assert "interpreter/host-side slowdown" in comparison.table()

    def test_guest_instruction_drift_noted(self):
        base = _fake_envelope(instret=1000)
        new = _fake_envelope(instret=1100)
        comparison = compare_envelopes(base, new)
        assert any("guest instructions changed" in note
                   for note in comparison.deltas[0].notes)

    def test_comparison_document(self):
        base = _fake_envelope()
        doc = compare_envelopes(base, base).to_dict()
        assert doc["schema"] == "repro.bench.compare/v1"
        assert doc["ok"] is True
        assert doc["deltas"][0]["verdict"] == "ok"
        json.dumps(doc)                      # serialisable


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCli:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "sha/baseline" in out and "fuzz_smoke" in out
        assert "quick" in out

    def test_run_out_and_self_gate(self, tmp_path, capsys):
        """End-to-end: run one scenario, save the envelope, then gate
        the saved envelope against itself (exit 0)."""
        out = tmp_path / "BENCH_SIM.json"
        rc = main(["bench", "--scenarios", FAST, "--reps", "1",
                   "--seed", "7", "--out", str(out)])
        assert rc == 0
        doc = load_envelope(out)
        assert FAST in doc["scenarios"]
        rc = main(["bench", "--replay", str(out),
                   "--against", str(out)])
        assert rc == 0
        assert "bench gate: OK" in capsys.readouterr().out

    def test_perturbed_copy_exits_regression_code(self, tmp_path,
                                                  capsys):
        out = tmp_path / "base.json"
        rc = main(["bench", "--scenarios", FAST, "--reps", "1",
                   "--out", str(out)])
        assert rc == 0
        doc = json.load(open(out))
        band = doc["scenarios"][FAST]["measured"]["wall_ms"]
        band["median"] *= 3.0
        band["iqr"] = 0.01
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(doc) + "\n")
        rc = main(["bench", "--replay", str(slow),
                   "--against", str(out)])
        assert rc == errors.EXIT_BENCH_REGRESSION == 11
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "BenchRegression" in captured.err

    def test_unknown_scenario_is_usage_error(self, capsys):
        rc = main(["bench", "--scenarios", "bogus", "--reps", "1"])
        assert rc == errors.EXIT_USAGE
        assert "unknown bench scenarios" in capsys.readouterr().err
